"""Command-line front end: ``python -m repro.analysis``.

Exit-code contract (CI depends on it):

====  =========================================================
``0``  scan ran, no diagnostics
``1``  scan ran, at least one diagnostic (including parse errors)
``2``  usage error — unknown rule code, missing path
====  =========================================================
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.diagnostics import render_human, render_json
from repro.analysis.engine import run_analysis
from repro.analysis.registry import get_rule, rule_codes

#: Exit codes of the contract above.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _split_codes(raw: list[str] | None) -> list[str] | None:
    """Flatten repeated/comma-separated code options into one list."""
    if raw is None:
        return None
    codes: list[str] = []
    for chunk in raw:
        codes.extend(code.strip() for code in chunk.split(",") if code.strip())
    return codes


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for --help tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Project-invariant AST lint for the deterministic pipeline "
            "(rules RPR001-RPR005; see docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="diagnostic output format (default: human)",
    )
    parser.add_argument(
        "--select", action="append", metavar="CODES",
        help="run only these rule codes (comma-separated, repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="CODES",
        help="skip these rule codes (comma-separated, repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the CLI; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in rule_codes():
            print(f"{code}  {get_rule(code).summary}")
        return EXIT_CLEAN

    try:
        result = run_analysis(
            args.paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.format == "json":
        sys.stdout.write(render_json(result.diagnostics, result.stats()))
    else:
        print(render_human(result.diagnostics))
    return EXIT_FINDINGS if result.diagnostics else EXIT_CLEAN
