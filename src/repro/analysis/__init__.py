"""Project-invariant static analysis for the deterministic pipeline.

The architecture's hard guarantees — byte-identical output at any shard
count, WAL replay parity, no silent drops — are behavioral invariants
that one stray ``time.time()`` or unordered-``dict`` merge silently
breaks.  This package encodes those repo-specific rules as code and
gates CI on them (see docs/STATIC_ANALYSIS.md for the rule catalog):

==========  ============================================================
``RPR001``  no wall-clock / unseeded randomness in deterministic
            packages (tracking, rtec, runtime, maritime, pipeline)
``RPR002``  no blocking calls (``time.sleep``, ``open``, sqlite,
            sockets, subprocesses) inside ``async def`` in the service
``RPR003``  every ``fault_point("…")`` literal is declared in the
            :data:`repro.resilience.faults.SITES` registry, and vice
            versa — no orphaned or undocumented chaos sites
``RPR004``  load-shedding branches (``get_nowait`` / evict / shed /
            drop) must increment an observability counter in the same
            function — nothing is ever lost silently
``RPR005``  shard-merge code must not iterate a bare ``set``/``dict``
            without an explicit ``sorted(...)``
==========  ============================================================

The engine is pure stdlib-``ast``: no third-party dependency, so the
gate runs anywhere the code does.  Diagnostics can be suppressed per
line with ``# repro: allow[RPR001]`` (comma-separate several codes).

Run it as a CLI::

    python -m repro.analysis src tests
    python -m repro.analysis --format json --select RPR003 src

or drive it programmatically::

    from repro.analysis import run_analysis
    result = run_analysis(["src"])
    for diagnostic in result.diagnostics:
        print(diagnostic.format())
"""

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import (
    AnalysisResult,
    ModuleContext,
    module_name_for,
    run_analysis,
)
from repro.analysis.registry import Rule, all_rules, get_rule, rule_codes

__all__ = [
    "AnalysisResult",
    "Diagnostic",
    "ModuleContext",
    "Rule",
    "all_rules",
    "get_rule",
    "module_name_for",
    "rule_codes",
    "run_analysis",
]
