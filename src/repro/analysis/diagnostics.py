"""Diagnostic records and their two output formats.

A :class:`Diagnostic` is one finding: rule code, location, message.  The
human format is the conventional ``path:line:col: CODE message`` (one
per line, clickable in editors and CI logs); the JSON format is a stable
schema (``repro.analysis/diagnostics-v1``) for machine consumers — the
golden tests pin it, so extend it additively only.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any

#: Schema tag of the JSON output, bumped only on breaking layout changes.
JSON_SCHEMA = "repro.analysis/diagnostics-v1"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding, ordered by location so reports are deterministic."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """The human one-liner: ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form used by the JSON output."""
        return asdict(self)


def render_human(diagnostics: list[Diagnostic]) -> str:
    """All diagnostics, one per line, plus a trailing summary line."""
    lines = [diagnostic.format() for diagnostic in diagnostics]
    count = len(diagnostics)
    lines.append(
        "no issues found" if count == 0
        else f"{count} issue{'s' if count != 1 else ''} found"
    )
    return "\n".join(lines)


def render_json(
    diagnostics: list[Diagnostic], stats: dict[str, Any]
) -> str:
    """The machine-readable report (indented, trailing newline)."""
    payload = {
        "schema": JSON_SCHEMA,
        "diagnostics": [diagnostic.to_dict() for diagnostic in diagnostics],
        "stats": stats,
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"
