"""Per-line rule suppression: ``# repro: allow[RPR001]``.

A diagnostic is suppressed when the *line it is reported on* carries an
allow comment naming its rule code (several codes comma-separate:
``# repro: allow[RPR001,RPR005]``).  Comments are found with
:mod:`tokenize`, so suppressions on continuation lines and after code
both work; strings that merely *contain* the marker do not suppress.

Suppression is deliberately line-scoped and code-explicit — there is no
file-level or blanket ``allow``.  An invariant exemption should be
visible exactly where it is taken, and reviewable there.
"""

from __future__ import annotations

import io
import re
import tokenize

_ALLOW = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9_,\s]+)\]")


def suppressed_lines(source: str) -> dict[int, set[str]]:
    """Map line number -> set of rule codes allowed on that line."""
    allowed: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW.search(token.string)
            if match is None:
                continue
            codes = {
                code.strip()
                for code in match.group(1).split(",")
                if code.strip()
            }
            allowed.setdefault(token.start[0], set()).update(codes)
    except tokenize.TokenizeError:
        # A file the tokenizer rejects is reported as a parse error by
        # the engine; suppressions are moot there.
        pass
    return allowed


def is_suppressed(
    allowed: dict[int, set[str]], line: int, code: str
) -> bool:
    """Whether ``code`` is allowed on ``line``."""
    return code in allowed.get(line, ())
