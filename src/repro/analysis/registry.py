"""The rule registry: every check self-registers under its RPR code.

A rule is a class with a ``code`` (``RPR001``…), a one-line ``summary``
and two hooks:

* :meth:`Rule.check_module` — called once per parsed module, yields
  :class:`~repro.analysis.diagnostics.Diagnostic` objects for findings
  local to that module;
* :meth:`Rule.finalize` — called once after every module was visited,
  for project-wide invariants (e.g. RPR003's fault-site registry match,
  which needs both the registry module and every call site).

Rules are instantiated fresh per engine run, so they may accumulate
state across ``check_module`` calls and consume it in ``finalize``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from typing import TYPE_CHECKING, ClassVar

from repro.analysis.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.engine import ModuleContext


class Rule:
    """Base class for one registered check."""

    #: Unique diagnostic code, e.g. ``"RPR001"``.
    code: ClassVar[str] = ""
    #: One-line description shown by ``--list-rules``.
    summary: ClassVar[str] = ""

    def check_module(self, module: ModuleContext) -> Iterator[Diagnostic]:
        """Findings local to one module (default: none)."""
        return iter(())

    def finalize(self) -> Iterator[Diagnostic]:
        """Project-wide findings after all modules were seen (default: none)."""
        return iter(())


#: code -> rule class, in registration order.
_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (codes are unique)."""
    code = rule_class.code
    if not code:
        raise ValueError(f"rule {rule_class.__name__} has no code")
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code}")
    _REGISTRY[code] = rule_class
    return rule_class


def _ensure_loaded() -> None:
    """Import the bundled rule modules so they self-register."""
    if not _REGISTRY:
        import repro.analysis.rules  # noqa: F401  (registration side effect)


def rule_codes() -> list[str]:
    """All registered codes, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_rule(code: str) -> type[Rule]:
    """The rule class registered under ``code`` (KeyError if unknown)."""
    _ensure_loaded()
    return _REGISTRY[code]


def all_rules() -> list[type[Rule]]:
    """Every registered rule class, in code order."""
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def select_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[type[Rule]]:
    """Resolve ``--select`` / ``--ignore`` into rule classes.

    ``select`` keeps only the listed codes (default: all); ``ignore``
    then removes codes.  Unknown codes raise ``ValueError`` so typos
    fail loudly instead of silently checking nothing.
    """
    _ensure_loaded()
    known = set(_REGISTRY)
    chosen = list(select) if select is not None else sorted(known)
    dropped = set(ignore) if ignore is not None else set()
    for code in [*chosen, *dropped]:
        if code not in known:
            raise ValueError(
                f"unknown rule code {code!r}; known: {', '.join(sorted(known))}"
            )
    return [
        _REGISTRY[code] for code in sorted(set(chosen) - dropped)
    ]


#: Signature of the per-rule timing callback the engine passes around.
RuleTimer = Callable[[str, float], None]
