"""Small AST helpers shared by the rules.

The central service is *call resolution*: given ``t.time()`` in a module
that did ``import time as t``, :func:`resolve_call` answers the canonical
dotted origin ``"time.time"``.  Resolution is deliberately conservative —
only names traceable to a module-level ``import`` / ``from … import``
resolve; attribute chains rooted in local objects return ``None`` and are
never flagged, so the rules err toward false negatives, not noise.
"""

from __future__ import annotations

import ast


def dotted_parts(node: ast.expr) -> list[str] | None:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]`` (None if not a pure chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map every imported local name to its canonical dotted origin.

    ``import time`` → ``{"time": "time"}``;
    ``import time as t`` → ``{"t": "time"}``;
    ``from datetime import datetime`` → ``{"datetime": "datetime.datetime"}``;
    ``from random import randint as ri`` → ``{"ri": "random.randint"}``.

    Imports are collected from the whole module (including those nested in
    functions), since a function-local ``import time`` taints the same
    local name the rules look for.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.partition(".")[0]
                target = name.name if name.asname else name.name.partition(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def resolve_call(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """Canonical dotted origin of a call's callee, if statically known.

    Builtins resolve to their bare name (``open`` → ``"open"``) unless the
    module rebound the name via an import.
    """
    parts = dotted_parts(node.func)
    if parts is None:
        return None
    root, rest = parts[0], parts[1:]
    origin = aliases.get(root)
    if origin is None:
        # Unimported bare names are builtins or locals; only a bare Name
        # (no attribute access) is meaningful to report.
        return root if not rest else None
    return ".".join([origin, *rest]) if rest else origin


def call_arg_literal(node: ast.Call, index: int = 0) -> str | None:
    """The ``index``-th positional argument, if it is a string literal."""
    if index < len(node.args):
        arg = node.args[index]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def walk_function_body(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.AST]:
    """Every node in a function body, *excluding* nested function bodies.

    Nested ``def``/``async def`` are visited on their own by rules that
    iterate all functions, so excluding them here prevents double reports
    and keeps "inside this function" checks honest.
    """
    collected: list[ast.AST] = []
    stack: list[ast.AST] = list(function.body)
    while stack:
        node = stack.pop()
        collected.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Decorators and defaults execute in the enclosing scope.
            stack.extend(node.decorator_list)
            stack.extend(node.args.defaults)
            stack.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        stack.extend(ast.iter_child_nodes(node))
    return collected


def iter_functions(
    tree: ast.Module,
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """All function definitions in a module, at any nesting depth."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
