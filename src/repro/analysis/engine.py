"""File discovery, parsing, rule dispatch and result assembly.

One :func:`run_analysis` call walks the given paths, parses every Python
file once, hands each parsed module to every selected rule, then runs
the rules' project-wide ``finalize`` hooks.  Diagnostics come back
sorted by location, suppression comments already applied.

The engine measures itself through the ambient observability registry
(:mod:`repro.obs`): ``analysis.files`` / ``analysis.diagnostics``
counters and an ``analysis.rule_seconds.<CODE>`` histogram per rule —
the numbers behind ``benchmarks/harness.py --lint`` and the
``static_analysis`` section of ``BENCH_pipeline.json``.

Discovery prunes ``__pycache__``, hidden directories, and directories
named ``fixtures`` (the known-bad sample trees under
``tests/analysis/fixtures`` must not fail the CI sweep) — unless the
*root* you pass is itself inside one, which is how the golden tests
scan the fixtures on purpose.  Explicit file paths are always scanned.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Iterator
from typing import Any

from repro import obs
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, select_rules
from repro.analysis.suppressions import is_suppressed, suppressed_lines

#: Diagnostic code attached to files the parser rejects.
PARSE_ERROR_CODE = "RPR000"

#: Directory names never descended into during discovery.
_PRUNED_DIRS = {"__pycache__", "fixtures"}


@dataclass(frozen=True)
class ModuleContext:
    """One parsed module as the rules see it."""

    path: str
    module: str
    tree: ast.Module
    source: str


@dataclass
class AnalysisResult:
    """Everything one engine run produced."""

    diagnostics: list[Diagnostic]
    files: int
    suppressed: int
    elapsed_seconds: float
    rule_seconds: dict[str, float] = field(default_factory=dict)
    parse_errors: int = 0

    @property
    def files_per_sec(self) -> float:
        """Analyzer throughput (0.0 when nothing was timed)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.files / self.elapsed_seconds

    def stats(self) -> dict[str, Any]:
        """The ``stats`` object of the JSON output."""
        return {
            "files": self.files,
            "diagnostics": len(self.diagnostics),
            "suppressed": self.suppressed,
            "parse_errors": self.parse_errors,
            "elapsed_seconds": self.elapsed_seconds,
            "files_per_sec": self.files_per_sec,
            "rule_seconds": {
                code: seconds
                for code, seconds in sorted(self.rule_seconds.items())
            },
        }


def module_name_for(path: Path) -> str:
    """Dotted module name inferred from a file path.

    The name is anchored at the *last* ``repro`` or ``tests`` path
    component, so ``src/repro/geo/units.py`` → ``repro.geo.units`` and
    ``tests/analysis/fixtures/repro/tracking/bad.py`` →
    ``repro.tracking.bad`` — fixture trees deliberately masquerade as
    in-tree modules so the rules scope onto them.  Paths under neither
    anchor fall back to the bare stem.
    """
    parts = list(path.parts)
    parts[-1] = path.stem
    anchor = -1
    for index, part in enumerate(parts):
        if part in ("repro", "tests"):
            anchor = index
    if anchor >= 0:
        parts = parts[anchor:]
    else:
        parts = [path.stem]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Python files under the given paths, sorted, pruned, deduplicated.

    Missing paths raise ``FileNotFoundError`` — a CI gate that silently
    scans nothing would be worse than useless.
    """
    found: dict[Path, None] = {}
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(f"no such path: {root}")
        if root.is_file():
            found.setdefault(root, None)
            continue
        for candidate in sorted(root.rglob("*.py")):
            relative = candidate.relative_to(root).parts[:-1]
            if any(
                part in _PRUNED_DIRS or part.startswith(".")
                for part in relative
            ):
                continue
            found.setdefault(candidate, None)
    return sorted(found)


def _parse(path: Path) -> tuple[ModuleContext | None, Diagnostic | None]:
    """Parse one file into a context, or a parse-error diagnostic."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Diagnostic(
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule=PARSE_ERROR_CODE,
            message=f"syntax error: {exc.msg}",
        )
    return (
        ModuleContext(
            path=str(path),
            module=module_name_for(path),
            tree=tree,
            source=source,
        ),
        None,
    )


def run_analysis(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> AnalysisResult:
    """Run the selected rules over every Python file under ``paths``."""
    started = time.perf_counter()
    rules: list[Rule] = [cls() for cls in select_rules(select, ignore)]
    rule_seconds: dict[str, float] = {rule.code: 0.0 for rule in rules}

    files = discover_files(paths)
    raw: list[Diagnostic] = []
    allowed_by_path: dict[str, dict[int, set[str]]] = {}
    parse_errors = 0
    for path in files:
        context, parse_error = _parse(path)
        if parse_error is not None:
            raw.append(parse_error)
            parse_errors += 1
            continue
        assert context is not None
        allowed_by_path[context.path] = suppressed_lines(context.source)
        for rule in rules:
            rule_started = time.perf_counter()
            raw.extend(rule.check_module(context))
            rule_seconds[rule.code] += time.perf_counter() - rule_started
        obs.count("analysis.files")
    for rule in rules:
        rule_started = time.perf_counter()
        raw.extend(rule.finalize())
        rule_seconds[rule.code] += time.perf_counter() - rule_started

    diagnostics: list[Diagnostic] = []
    suppressed = 0
    for diagnostic in raw:
        allowed = allowed_by_path.get(diagnostic.path, {})
        if is_suppressed(allowed, diagnostic.line, diagnostic.rule):
            suppressed += 1
        else:
            diagnostics.append(diagnostic)
    diagnostics.sort()

    elapsed = time.perf_counter() - started
    for code, seconds in rule_seconds.items():
        obs.observe(f"analysis.rule_seconds.{code}", seconds)
    obs.count("analysis.diagnostics", len(diagnostics))
    obs.observe("analysis.run_seconds", elapsed)
    return AnalysisResult(
        diagnostics=diagnostics,
        files=len(files),
        suppressed=suppressed,
        elapsed_seconds=elapsed,
        rule_seconds=rule_seconds,
        parse_errors=parse_errors,
    )
