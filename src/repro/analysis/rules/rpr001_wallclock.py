"""RPR001 — no wall-clock or unseeded randomness in deterministic paths.

The Mobility Tracker and RTEC must produce the same critical points and
CE intervals for the same input (the byte-identity guarantee of
``tests/runtime/test_determinism.py`` and the WAL replay parity of
``tests/service/test_recovery.py``).  Any read of the real clock or of
the process-global random generator inside the deterministic packages
makes output depend on *when* and *where* the code ran:

* ``time.time()`` / ``datetime.now()`` & friends are banned.
  ``time.perf_counter()`` and ``time.monotonic()`` stay legal — they
  measure durations for metrics and deadlines and never enter the data
  path;
* module-level :mod:`random` functions (``random.random()``,
  ``random.choice()``, …) are banned.  Constructing an explicitly
  seeded ``random.Random(seed)`` instance is fine — that is how the
  simulator and the chaos planner stay replayable.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutils import import_aliases, resolve_call
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ModuleContext
from repro.analysis.registry import Rule, register

#: Packages whose output must be a pure function of their input.
DETERMINISTIC_PACKAGES = (
    "repro.tracking",
    "repro.rtec",
    "repro.runtime",
    "repro.maritime",
    "repro.pipeline",
)

#: Canonical dotted origins that read the wall clock.
WALLCLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: The one :mod:`random` attribute that is *not* the global generator.
_SEEDED_CONSTRUCTORS = frozenset({"random.Random", "random.SystemRandom"})


def in_scope(module: str) -> bool:
    """Whether RPR001 applies to a module."""
    return any(
        module == package or module.startswith(package + ".")
        for package in DETERMINISTIC_PACKAGES
    )


@register
class WallclockRule(Rule):
    """Deterministic packages must not read wall clock or global RNG."""

    code = "RPR001"
    summary = (
        "no time.time()/datetime.now()/module-level random in "
        "deterministic packages (tracking, rtec, runtime, maritime, "
        "pipeline)"
    )

    def check_module(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if not in_scope(module.module):
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call(node, aliases)
            if origin is None:
                continue
            if origin in WALLCLOCK_CALLS:
                yield Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.code,
                    message=(
                        f"wall-clock read `{origin}()` in deterministic "
                        f"package; outputs must be a pure function of the "
                        f"input stream (use the batch query time, or "
                        f"perf_counter/monotonic for metrics-only timing)"
                    ),
                )
            elif (
                origin.startswith("random.")
                and origin not in _SEEDED_CONSTRUCTORS
            ):
                yield Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.code,
                    message=(
                        f"module-level `{origin}()` uses the process-global "
                        f"RNG; pass an explicitly seeded random.Random "
                        f"instance instead"
                    ),
                )
