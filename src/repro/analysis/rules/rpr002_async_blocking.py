"""RPR002 — no blocking calls inside ``async def`` in the service layer.

The live service keeps one event loop reading sockets while pipeline
slides run on a dedicated executor thread (see
:mod:`repro.service.batcher`).  A synchronous sleep, file open, sqlite
call or socket operation *on the loop* stalls every connection at once
— ingest backs up, the feed hub stops draining, the watchdog starves.
Blocking work belongs on the executor (``run_in_executor``) or behind
the async APIs.

Flagged inside ``async def`` bodies in ``repro.service``,
``repro.transport`` and ``repro.gateway``:
``time.sleep``, builtin ``open``, anything in :mod:`sqlite3`,
:mod:`subprocess` or :mod:`requests`, ``socket.socket`` /
``socket.create_connection``, ``os.fsync`` / ``os.system``, and
``urllib.request.urlopen``.  Calls on local objects are not resolvable
statically and are not flagged — the rule is a tripwire, not a proof.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutils import (
    import_aliases,
    resolve_call,
    walk_function_body,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ModuleContext
from repro.analysis.registry import Rule, register

#: Packages whose async functions are checked (the service layer plus
#: the transport adapters and the gateway tier, which share its loop).
ASYNC_PACKAGES = ("repro.service", "repro.transport", "repro.gateway")

#: Exact canonical origins that block the event loop.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "open",
    "socket.socket",
    "socket.create_connection",
    "os.fsync",
    "os.system",
    "urllib.request.urlopen",
})

#: Origin prefixes that are blocking wholesale.
BLOCKING_PREFIXES = ("sqlite3.", "subprocess.", "requests.")


def in_scope(module: str) -> bool:
    """Whether RPR002 applies to a module."""
    return any(
        module == package or module.startswith(package + ".")
        for package in ASYNC_PACKAGES
    )


def _is_blocking(origin: str) -> bool:
    return origin in BLOCKING_CALLS or origin.startswith(BLOCKING_PREFIXES)


@register
class AsyncBlockingRule(Rule):
    """`async def` bodies in repro.service must not block the loop."""

    code = "RPR002"
    summary = (
        "no blocking calls (time.sleep, open, sqlite3, sockets, "
        "subprocess) inside async def in repro.service"
    )

    def check_module(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if not in_scope(module.module):
            return
        aliases = import_aliases(module.tree)
        for function in ast.walk(module.tree):
            if not isinstance(function, ast.AsyncFunctionDef):
                continue
            for node in walk_function_body(function):
                if not isinstance(node, ast.Call):
                    continue
                origin = resolve_call(node, aliases)
                if origin is None or not _is_blocking(origin):
                    continue
                yield Diagnostic(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.code,
                    message=(
                        f"blocking call `{origin}(...)` inside async "
                        f"function `{function.name}` stalls the event loop; "
                        f"move it to the pipeline executor thread "
                        f"(run_in_executor) or use the async equivalent"
                    ),
                )
