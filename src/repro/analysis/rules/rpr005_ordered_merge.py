"""RPR005 — shard-merge code iterates sets/dicts only through sorted().

The process-parallel runtime's whole correctness story
(docs/RUNTIME.md) is that every merge of per-shard output is defined by
an *explicit total order*, never by arrival or hash order.  Python dicts
preserve insertion order — which, in merge code, is exactly the
non-deterministic arrival order being merged — and set iteration order
depends on hashes.  One bare ``for … in mapping.items()`` in a merge
path can ship different byte streams at different shard counts while
every test with one ordering still passes.

Inside ``repro.runtime`` modules, any ``for`` loop or comprehension
whose iterable is

* ``<expr>.keys()`` / ``.values()`` / ``.items()``, or
* a ``set(...)`` / ``frozenset(...)`` call, a set literal or a set
  comprehension

must wrap it in ``sorted(...)`` (which the rule recognizes because the
iterable is then the ``sorted`` call, not the bare view).  Iteration
that is genuinely order-insensitive (pure sums, membership counting)
can take a line-scoped ``# repro: allow[RPR005]`` with a comment saying
why.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutils import dotted_parts
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ModuleContext
from repro.analysis.registry import Rule, register

#: Package containing the shard-merge discipline domain.
MERGE_PACKAGE = "repro.runtime"

_VIEW_METHODS = frozenset({"keys", "values", "items"})
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})


def in_scope(module: str) -> bool:
    """Whether RPR005 applies to a module."""
    return module == MERGE_PACKAGE or module.startswith(MERGE_PACKAGE + ".")


def _unordered_reason(iterable: ast.expr) -> str | None:
    """Why iterating this expression is order-unstable, or None."""
    if isinstance(iterable, ast.Call):
        if (
            isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr in _VIEW_METHODS
        ):
            return f"dict view `.{iterable.func.attr}()`"
        parts = dotted_parts(iterable.func)
        if parts is not None and parts[-1] in _SET_CONSTRUCTORS and (
            len(parts) == 1
        ):
            return f"`{parts[0]}(...)` constructor"
    if isinstance(iterable, (ast.Set, ast.SetComp)):
        return "set literal"
    return None


def _iterables(tree: ast.Module) -> Iterator[ast.expr]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter


@register
class OrderedMergeRule(Rule):
    """repro.runtime must not iterate bare sets/dict views."""

    code = "RPR005"
    summary = (
        "shard-merge code must not iterate bare set/dict without an "
        "explicit sorted(...)"
    )

    def check_module(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if not in_scope(module.module):
            return
        for iterable in _iterables(module.tree):
            reason = _unordered_reason(iterable)
            if reason is None:
                continue
            yield Diagnostic(
                path=module.path,
                line=iterable.lineno,
                col=iterable.col_offset,
                rule=self.code,
                message=(
                    f"unordered iteration over {reason} in merge code; "
                    f"wrap it in sorted(...) so the merge is defined by an "
                    f"explicit total order, or allow it with a justifying "
                    f"comment if provably order-insensitive"
                ),
            )
