"""The bundled project rules; importing this package registers them all.

Each module holds one rule.  To add a rule: create a module here with a
:class:`~repro.analysis.registry.Rule` subclass decorated with
``@register``, import it below, and document it in
docs/STATIC_ANALYSIS.md (the rule catalog is part of the contract).
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    rpr001_wallclock,
    rpr002_async_blocking,
    rpr003_fault_sites,
    rpr004_silent_drop,
    rpr005_ordered_merge,
)

__all__ = [
    "rpr001_wallclock",
    "rpr002_async_blocking",
    "rpr003_fault_sites",
    "rpr004_silent_drop",
    "rpr005_ordered_merge",
]
