"""RPR004 — load-shedding code must count what it throws away.

"Nothing is ever lost silently" is a stated contract of the ingest
queue, the feed hub and the fragment assembler: every shed sentence,
evicted subscriber and dropped fragment group shows up in the
observability registry, so operators can tell load shedding from data
loss.  The contract decays one forgotten counter at a time — this rule
pins it structurally.

A function in the queueing layers (``repro.service``, ``repro.runtime``,
``repro.resilience``, ``repro.ais``, ``repro.transport``,
``repro.gateway``) is a *drop site* when it

* calls ``<something>.get_nowait()`` (draining/discarding queued items
  outside the normal awaited path), or
* is itself named like a shedding operation (``evict``/``shed``/
  ``drop`` as a name component, e.g. ``_evict``, ``shed_oldest``).

Every drop site must, in the *same function*, call an instrument
increment — ``obs.count(...)``, ``registry.inc(...)`` or
``Counter.inc(...)`` (any call spelled ``.count``/``.inc`` counts).
Windowing semantics are deliberately out of scope: expired critical
points in ``repro.tracking`` are *returned* downstream, not dropped,
so the tracking package is not checked.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.astutils import (
    dotted_parts,
    iter_functions,
    walk_function_body,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ModuleContext
from repro.analysis.registry import Rule, register

#: Packages whose drop paths must be counted.
QUEUEING_PACKAGES = (
    "repro.service",
    "repro.runtime",
    "repro.resilience",
    "repro.ais",
    "repro.transport",
    "repro.gateway",
)

#: Function-name components that mark a shedding operation.
_DROP_NAME = re.compile(r"(^|_)(evict|shed|drop)")

#: Callee attribute names that count as incrementing an instrument.
_COUNTER_ATTRS = frozenset({"count", "inc"})


def in_scope(module: str) -> bool:
    """Whether RPR004 applies to a module."""
    return any(
        module == package or module.startswith(package + ".")
        for package in QUEUEING_PACKAGES
    )


def _is_counter_call(node: ast.Call) -> bool:
    parts = dotted_parts(node.func)
    return parts is not None and len(parts) >= 2 and parts[-1] in _COUNTER_ATTRS


def _drop_reason(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
    body: list[ast.AST],
) -> str | None:
    """Why this function is a drop site, or None."""
    if _DROP_NAME.search(function.name):
        return f"function name `{function.name}` marks a shedding operation"
    for node in body:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get_nowait"
        ):
            return "calls `.get_nowait()` (discards queued items)"
    return None


@register
class SilentDropRule(Rule):
    """Drop/shed/evict paths must increment an obs counter."""

    code = "RPR004"
    summary = (
        "get_nowait/evict/shed/drop branches must increment an "
        "observability counter in the same function"
    )

    def check_module(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if not in_scope(module.module):
            return
        for function in iter_functions(module.tree):
            body = walk_function_body(function)
            reason = _drop_reason(function, body)
            if reason is None:
                continue
            counted = any(
                isinstance(node, ast.Call) and _is_counter_call(node)
                for node in body
            )
            if counted:
                continue
            yield Diagnostic(
                path=module.path,
                line=function.lineno,
                col=function.col_offset,
                rule=self.code,
                message=(
                    f"silent drop: {reason} but no obs counter is "
                    f"incremented in `{function.name}`; count what you "
                    f"throw away (obs.count / registry.inc)"
                ),
            )
