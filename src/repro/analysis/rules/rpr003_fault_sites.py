"""RPR003 — every chaos fault site is declared, and every declaration live.

Deterministic fault injection (:mod:`repro.resilience.faults`) only
means something if the set of named sites is a *curated contract*: the
chaos CLI, the seeded plan generator, docs/RESILIENCE.md and the drills
all enumerate sites from the central :data:`~repro.resilience.faults.SITES`
registry.  A ``fault_point("…")`` sprinkled into the tree without a
registry entry is an undocumented chaos surface nobody can target or
reason about; a registry entry whose site string no longer appears in
the code is dead configuration that drills will arm in vain.

This is a project-wide invariant, so the work happens in ``finalize``:

* every string-literal ``fault_point("site")`` call in ``repro.*``
  modules must name a key of ``SITES``;
* every ``SITES`` key must be referenced by at least one such call;
* every member of ``UNSEEDED_SITES`` (sites excluded from blind seeded
  plans, e.g. permanent partitions that would stall a smoke run) must
  itself be a declared ``SITES`` key — an unseeded entry for a site
  that does not exist filters nothing.

Both directions need the registry module *and* the call sites in the
same sweep; when the scan did not include ``repro.resilience.faults``
(or saw no call sites at all) the respective direction is skipped
rather than guessed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from collections.abc import Iterator

from repro.analysis.astutils import call_arg_literal, import_aliases, resolve_call
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ModuleContext
from repro.analysis.registry import Rule, register

#: Module that must define the ``SITES`` registry.
REGISTRY_MODULE = "repro.resilience.faults"

#: Name of the registry mapping inside :data:`REGISTRY_MODULE`.
REGISTRY_NAME = "SITES"

#: Name of the seeded-plan exclusion set inside :data:`REGISTRY_MODULE`.
UNSEEDED_NAME = "UNSEEDED_SITES"


@dataclass(frozen=True)
class _Site:
    """One observed fault-site string with its location."""

    site: str
    path: str
    line: int
    col: int


@register
class FaultSiteRule(Rule):
    """fault_point literals and the SITES registry must match exactly."""

    code = "RPR003"
    summary = (
        "every fault_point(\"…\") literal appears in "
        "repro.resilience.faults.SITES and vice versa"
    )

    def __init__(self) -> None:
        self._call_sites: list[_Site] = []
        self._registry: dict[str, _Site] = {}
        self._unseeded: dict[str, _Site] = {}
        self._registry_seen = False

    def check_module(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if not module.module.startswith("repro."):
            return iter(())
        if module.module == REGISTRY_MODULE:
            self._collect_registry(module)
        self._collect_call_sites(module)
        return iter(())

    def _collect_registry(self, module: ModuleContext) -> None:
        self._registry_seen = True
        for node in module.tree.body:
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            names = {
                target.id
                for target in targets
                if isinstance(target, ast.Name)
            }
            if REGISTRY_NAME in names and isinstance(value, ast.Dict):
                for key in value.keys:
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    ):
                        self._registry[key.value] = _Site(
                            site=key.value,
                            path=module.path,
                            line=key.lineno,
                            col=key.col_offset,
                        )
            if UNSEEDED_NAME in names:
                for element in self._set_literal_elements(value):
                    self._unseeded[element.value] = _Site(
                        site=element.value,
                        path=module.path,
                        line=element.lineno,
                        col=element.col_offset,
                    )

    @staticmethod
    def _set_literal_elements(value: ast.expr) -> list[ast.Constant]:
        """String constants inside ``{…}``, ``frozenset({…})`` or
        ``frozenset([…])`` — the shapes UNSEEDED_SITES may take."""
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("frozenset", "set")
            and len(value.args) == 1
        ):
            value = value.args[0]
        if not isinstance(value, (ast.Set, ast.List, ast.Tuple)):
            return []
        return [
            element
            for element in value.elts
            if isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ]

    def _collect_call_sites(self, module: ModuleContext) -> None:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call(node, aliases)
            if origin is None:
                continue
            if origin != "fault_point" and not origin.endswith(".fault_point"):
                continue
            site = call_arg_literal(node)
            if site is None:
                continue
            self._call_sites.append(_Site(
                site=site,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
            ))

    def finalize(self) -> Iterator[Diagnostic]:
        if self._registry_seen:
            for site, declared in sorted(self._unseeded.items()):
                if site not in self._registry:
                    yield Diagnostic(
                        path=declared.path,
                        line=declared.line,
                        col=declared.col,
                        rule=self.code,
                        message=(
                            f"{UNSEEDED_NAME} entry \"{site}\" is not a "
                            f"{REGISTRY_NAME} key; an exclusion for an "
                            f"undeclared site filters nothing"
                        ),
                    )
            for call in self._call_sites:
                if call.site not in self._registry:
                    yield Diagnostic(
                        path=call.path,
                        line=call.line,
                        col=call.col,
                        rule=self.code,
                        message=(
                            f"fault site \"{call.site}\" is not declared in "
                            f"{REGISTRY_MODULE}.{REGISTRY_NAME}; chaos plans "
                            f"and docs enumerate sites from that registry"
                        ),
                    )
        if self._call_sites:
            referenced = {call.site for call in self._call_sites}
            for site, declared in sorted(self._registry.items()):
                if site not in referenced:
                    yield Diagnostic(
                        path=declared.path,
                        line=declared.line,
                        col=declared.col,
                        rule=self.code,
                        message=(
                            f"registry entry \"{site}\" has no "
                            f"fault_point(\"{site}\") call site left in the "
                            f"tree; remove the dead declaration or restore "
                            f"the hook"
                        ),
                    )
