"""Documentation lint: the docs tier must track the source tree.

Two checks, run as ``python -m repro.analysis.doclint`` (and by the
``static-analysis`` CI job; see docs/STATIC_ANALYSIS.md):

**DOC001 — module coverage.**  Every module under ``src/repro/`` must
be *mentioned* in at least one ``docs/*.md``, either by dotted name
(``repro.tracking.columnar``) or by path (``tracking/columnar.py``).
The module index in docs/ARCHITECTURE.md satisfies this wholesale; the
point of the rule is that adding a module forces a documentation
decision instead of silent drift.  ``__init__``/``__main__`` files are
exempt (they are package plumbing, documented through their package).

**DOC002 — link integrity.**  Every relative markdown link in
``docs/*.md`` and ``README.md`` must resolve to an existing file,
relative to the linking document.  External links (with a URL scheme)
and pure in-page anchors are out of scope — the rule keeps *intra-repo*
navigation unbroken, offline.

Both checks reuse the analyzer's :class:`~repro.analysis.diagnostics.
Diagnostic` record and exit-code contract (0 clean, 1 findings), so CI
and editors read the output the same way as ``python -m repro.analysis``.
"""

from __future__ import annotations

import re
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic, render_human

#: Markdown inline link: ``[text](target)``.  Good enough for the docs
#: this repo writes — no reference-style links, no angle-bracket URLs.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Targets that are not files to resolve: external URLs and anchors.
_EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:|^#")


def repo_modules(root: Path) -> list[Path]:
    """Lintable module files under ``src/repro/``, sorted for determinism."""
    return sorted(
        path
        for path in (root / "src" / "repro").rglob("*.py")
        if path.name not in ("__init__.py", "__main__.py")
    )


def module_mentions(module: Path, root: Path) -> tuple[str, str]:
    """The two accepted mention forms of a module: dotted and path."""
    relative = module.relative_to(root / "src").with_suffix("")
    dotted = ".".join(relative.parts)
    as_path = "/".join(relative.parts[1:]) + ".py"
    return dotted, as_path


def check_module_coverage(root: Path) -> list[Diagnostic]:
    """DOC001: every ``src/repro`` module is mentioned in some doc."""
    docs = sorted((root / "docs").glob("*.md"))
    corpus = "\n".join(doc.read_text(encoding="utf-8") for doc in docs)
    diagnostics = []
    for module in repo_modules(root):
        dotted, as_path = module_mentions(module, root)
        if dotted not in corpus and as_path not in corpus:
            diagnostics.append(Diagnostic(
                path=str(module.relative_to(root)),
                line=1,
                col=1,
                rule="DOC001",
                message=(
                    f"module `{dotted}` is not mentioned in any docs/*.md "
                    "(add it to the module index in docs/ARCHITECTURE.md "
                    "or document it where it belongs)"
                ),
            ))
    return diagnostics


def check_links(root: Path) -> list[Diagnostic]:
    """DOC002: relative links in docs/*.md and README.md resolve."""
    documents = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    if readme.exists():
        documents.append(readme)
    diagnostics = []
    for document in documents:
        for line_number, line in enumerate(
            document.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if _EXTERNAL.match(target):
                    continue
                # A link may carry an in-page anchor; resolve the file part.
                file_part = target.split("#", 1)[0]
                if not file_part:
                    continue
                if not (document.parent / file_part).exists():
                    diagnostics.append(Diagnostic(
                        path=str(document.relative_to(root)),
                        line=line_number,
                        col=match.start(1) + 1,
                        rule="DOC002",
                        message=f"broken relative link `{target}`",
                    ))
    return diagnostics


def run_doclint(root: Path | str = ".") -> list[Diagnostic]:
    """Both checks over a repo root; findings sorted by location."""
    root = Path(root).resolve()
    docs = root / "docs"
    if not docs.is_dir():
        raise FileNotFoundError(f"no docs/ directory under {root}")
    if not (root / "src" / "repro").is_dir():
        raise FileNotFoundError(f"no src/repro/ tree under {root}")
    return sorted(check_module_coverage(root) + check_links(root))


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; same exit-code contract as ``repro.analysis``."""
    args = list(sys.argv[1:] if argv is None else argv)
    root = args[0] if args else "."
    try:
        diagnostics = run_doclint(root)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_human(diagnostics))
    return 1 if diagnostics else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
