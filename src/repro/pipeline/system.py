"""The assembled maritime surveillance system (Figure 1).

Per window slide, :meth:`SurveillanceSystem.process_slide`:

1. runs the Mobility Tracker over the fresh positional batch (detecting
   trajectory events in O(1)/O(m) per tuple),
2. runs the Compressor, emitting fresh critical points into the window
   synopsis and collecting expired "delta" points,
3. ships the delta points to the staging table and (optionally)
   reconstructs/loads trips in the Moving Objects Database,
4. feeds the critical movement events to the Complex Event Recognition
   module and runs recognition at the slide's query time,

timing each phase.  Call :meth:`finalize` at end-of-stream to flush open
stops and drain the synopsis into the archive.

Phases are timed with :mod:`repro.obs` spans.  The measured seconds always
feed :class:`~repro.pipeline.metrics.PhaseTimings` and the
:class:`~repro.pipeline.metrics.SlideReport` (as before); when the global
metrics registry is enabled each phase additionally lands in a
``pipeline.phase.<name>`` histogram (per-slide p50/p95/p99) plus stream
counters, which is what ``--metrics-json`` and the bench harness report.
"""

from repro import obs
from repro.ais.stream import PositionalTuple
from repro.maritime.pairwise.monitor import PairwiseMonitor
from repro.maritime.recognizer import Alert, MaritimeRecognizer
from repro.mod.database import MovingObjectDatabase
from repro.pipeline.config import SystemConfig
from repro.pipeline.metrics import PhaseTimings, SlideReport
from repro.simulator.vessel import VesselSpec
from repro.simulator.world import WorldModel
from repro.tracking.backends import backend_name, create_tracker
from repro.tracking.compressor import Compressor
from repro.tracking.exporter import TrajectoryExporter
from repro.tracking.types import CriticalPoint


class SurveillanceSystem:
    """Streaming pipeline from positional tuples to alerts and archives."""

    def __init__(
        self,
        world: WorldModel,
        specs: dict[int, VesselSpec],
        config: SystemConfig | None = None,
    ):
        self.world = world
        self.config = config or SystemConfig()
        self.tracker = create_tracker(
            self.config.tracking, self.config.tracking_backend
        )
        self.compressor = Compressor(self.config.window)
        self.recognizer = MaritimeRecognizer(
            world,
            specs,
            window_seconds=self.config.effective_recognition_window,
            config=self.config.maritime,
            spatial_facts=self.config.spatial_facts,
            pairwise=self.config.pairwise,
            pairwise_config=self.config.pairwise_config,
            ce_scope=self.config.ce_scope,
        )
        self.monitor = (
            PairwiseMonitor(world, self.config.pairwise_config)
            if self.config.pairwise
            else None
        )
        self.database = MovingObjectDatabase(
            world.ports, path=self.config.database_path
        )
        self.database.load_vessels(specs.values())
        self.exporter = TrajectoryExporter()
        self.timings = PhaseTimings()
        self._last_query_time: int | None = None

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------

    def process_slide(
        self, batch: list[PositionalTuple], query_time: int
    ) -> SlideReport:
        """Process one slide's worth of arrivals; returns the slide report."""
        slide_timings: dict[str, float] = {}

        with obs.timed_span("pipeline.slide"):
            with obs.timed_span("tracking") as phase:
                events = self.tracker.process_batch(batch)
                fresh, expired = self.compressor.slide(
                    events, query_time, raw_position_count=len(batch)
                )
            slide_timings["tracking"] = phase.seconds

            with obs.timed_span("staging") as phase:
                if expired:
                    self.database.stage_points(expired)
            slide_timings["staging"] = phase.seconds

            slide_timings["reconstruction"] = 0.0
            slide_timings["loading"] = 0.0
            if self.config.reconstruct_each_slide and expired:
                self.database.reconstruct(slide_timings)

            recognized = 0
            alerts: tuple = ()
            if self.config.enable_recognition:
                with obs.timed_span("recognition") as phase:
                    if self.monitor is not None:
                        facts = self.monitor.observe(events, query_time)
                        self.recognizer.ingest_facts(
                            facts, arrival_time=query_time
                        )
                    self.recognizer.ingest(events, arrival_time=query_time)
                    result = self.recognizer.step(query_time)
                slide_timings["recognition"] = phase.seconds
                recognized = result.complex_event_count()
                alerts = tuple(self.recognizer.alerts(result))

        self.timings.record(slide_timings)
        self._record_slide_metrics(
            slide_timings, len(batch), len(events), len(fresh), len(expired),
            recognized,
        )
        self._last_query_time = query_time
        return SlideReport(
            query_time=query_time,
            raw_positions=len(batch),
            movement_events=len(events),
            fresh_critical_points=len(fresh),
            expired_critical_points=len(expired),
            recognized_complex_events=recognized,
            alerts=alerts,
            timings=slide_timings,
            fresh_points=tuple(fresh),
        )

    def _record_slide_metrics(
        self,
        slide_timings: dict[str, float],
        raw_positions: int,
        movement_events: int,
        fresh: int,
        expired: int,
        recognized: int,
    ) -> None:
        """Feed one slide's numbers into the global metrics registry."""
        registry = obs.get_registry()
        if not registry.enabled:
            return
        for phase, seconds in slide_timings.items():
            registry.observe(f"pipeline.phase.{phase}", seconds)
        registry.inc("pipeline.slides")
        registry.inc("pipeline.raw_positions", raw_positions)
        registry.inc("pipeline.movement_events", movement_events)
        registry.inc("pipeline.fresh_critical_points", fresh)
        registry.inc("pipeline.expired_critical_points", expired)
        registry.inc("pipeline.recognized_complex_events", recognized)
        registry.set_gauge(
            "pipeline.compression_ratio",
            self.compressor.statistics.compression_ratio,
        )
        registry.set_gauge("pipeline.vessels_tracked", self.tracker.vessel_count())
        tracking_seconds = slide_timings.get("tracking", 0.0)
        if tracking_seconds > 0:
            registry.set_gauge(
                "tracking.positions_per_second",
                raw_positions / tracking_seconds,
            )
        # Prometheus info pattern: the active kernel as a unit gauge.
        registry.set_gauge(
            f"tracking.backend_info.{backend_name(self.tracker)}", 1.0
        )

    def finalize(self) -> SlideReport | None:
        """Flush open long-lasting events and archive the whole synopsis.

        Run after the input stream is exhausted, as the paper does before
        computing Table 4 ("this computation took place after the input
        stream was exhausted and all critical points were detected").
        """
        if self._last_query_time is None:
            return None
        query_time = self._last_query_time + self.config.window.slide_seconds
        events = self.tracker.finalize()
        fresh, expired = self.compressor.slide(events, query_time)
        remaining = self.compressor.synopsis()
        # Evict everything still in the window into the archive.
        self.database.stage_points(expired + remaining)
        self.database.reconstruct()
        recognized = 0
        alerts: tuple = ()
        if self.config.enable_recognition:
            if self.monitor is not None:
                facts = self.monitor.observe(events, query_time)
                self.recognizer.ingest_facts(facts, arrival_time=query_time)
            self.recognizer.ingest(events, arrival_time=query_time)
            result = self.recognizer.step(query_time)
            recognized = result.complex_event_count()
            alerts = tuple(self.recognizer.alerts(result))
        slide_timings = {"tracking": 0.0, "staging": 0.0, "recognition": 0.0}
        return SlideReport(
            query_time=query_time,
            raw_positions=0,
            movement_events=len(events),
            fresh_critical_points=len(fresh),
            expired_critical_points=len(expired) + len(remaining),
            recognized_complex_events=recognized,
            alerts=alerts,
            timings=slide_timings,
            fresh_points=tuple(fresh),
        )

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------

    def current_synopsis(self, mmsi: int | None = None) -> list[CriticalPoint]:
        """Critical points currently in the sliding window."""
        return self.compressor.synopsis(mmsi)

    def export_kml(self) -> str:
        """KML rendering of the current window synopsis."""
        return self.exporter.to_kml(self.current_synopsis())

    def export_geojson(self) -> dict:
        """GeoJSON rendering of the current window synopsis."""
        return self.exporter.to_geojson(self.current_synopsis())

    def alerts(self) -> list[Alert]:
        """Alerts from the most recent recognition step."""
        return self.recognizer.alerts()
