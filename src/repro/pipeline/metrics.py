"""Per-slide instrumentation of the pipeline phases.

Figure 10 plots "the average processing cost per window slide for all four
phases" — tracking, staging, reconstruction, loading — and Figures 6/7/11
report the tracking and recognition costs separately.  These records carry
exactly those measurements.
"""

from dataclasses import dataclass, field

#: Phase keys in the order Figure 10 stacks them.
PHASES = ("tracking", "staging", "reconstruction", "loading", "recognition")


@dataclass
class PhaseTimings:
    """Seconds spent per phase, accumulated over slides."""

    seconds: dict[str, float] = field(default_factory=dict)
    slides: int = 0

    def record(self, slide_seconds: dict[str, float]) -> None:
        """Accumulate one slide's timings."""
        for phase, value in slide_seconds.items():
            self.seconds[phase] = self.seconds.get(phase, 0.0) + value
        self.slides += 1

    def average(self, phase: str) -> float:
        """Mean seconds per slide for a phase."""
        if self.slides == 0:
            return 0.0
        return self.seconds.get(phase, 0.0) / self.slides

    def averages(self) -> dict[str, float]:
        """Mean seconds per slide for every recorded phase."""
        return {phase: self.average(phase) for phase in self.seconds}


@dataclass(frozen=True)
class SlideReport:
    """Everything one window slide produced."""

    query_time: int
    raw_positions: int
    movement_events: int
    fresh_critical_points: int
    expired_critical_points: int
    recognized_complex_events: int
    alerts: tuple
    timings: dict[str, float]
    #: The fresh critical points themselves (not just the count), in the
    #: deterministic synopsis order — what the live service's subscription
    #: feed publishes alongside the alerts.
    fresh_points: tuple = ()

    @property
    def total_seconds(self) -> float:
        """Wall-clock spent across all phases of the slide."""
        return sum(self.timings.values())
