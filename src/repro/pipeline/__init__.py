"""End-to-end wiring of the surveillance system (Figure 1).

:class:`SurveillanceSystem` connects the components built by the other
packages into the paper's processing scheme: AIS stream (or pre-decoded
positional tuples) -> Data Scanner -> Mobility Tracker -> Compressor ->
{Trajectory Exporter, Complex Event Recognition, staging -> Moving Objects
Database}.  Every phase is timed per window slide, which is the
instrumentation behind Figures 6, 7, 10 and 11.
"""

from repro.pipeline.config import SystemConfig
from repro.pipeline.metrics import PhaseTimings, SlideReport
from repro.pipeline.system import SurveillanceSystem

__all__ = [
    "PhaseTimings",
    "SlideReport",
    "SurveillanceSystem",
    "SystemConfig",
]
