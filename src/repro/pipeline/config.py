"""System-level configuration combining all component settings."""

from dataclasses import dataclass, field

from repro.maritime.config import MaritimeConfig
from repro.maritime.pairwise.config import PairwiseConfig
from repro.tracking.config import TrackingParameters
from repro.tracking.window import WindowSpec


@dataclass(frozen=True)
class SystemConfig:
    """One place for every knob of the surveillance pipeline.

    ``window`` drives both the tracking synopsis window and the stream
    replayer slide; ``recognition_window_seconds`` defaults to the same
    range but can be set independently, since the CE experiments of
    Figure 11 sweep the RTEC window separately.
    """

    window: WindowSpec = field(
        default_factory=lambda: WindowSpec.of_hours(1, 1 / 6)
    )
    tracking: TrackingParameters = field(default_factory=TrackingParameters)
    #: Mobility Tracker kernel (``scalar``, ``array``, or ``numpy``); all
    #: emit byte-identical event streams, so this is purely a throughput
    #: knob.  See :mod:`repro.tracking.backends`.
    tracking_backend: str = "array"
    maritime: MaritimeConfig = field(default_factory=MaritimeConfig)
    recognition_window_seconds: int | None = None
    #: Run CE recognition with the spatial-facts stream of Figure 11(b).
    spatial_facts: bool = False
    #: Recognize pairwise (vessel-vs-vessel) complex events — encounter,
    #: rendezvous, CPA risk, dark ship.  See :mod:`repro.maritime.pairwise`.
    pairwise: bool = False
    pairwise_config: PairwiseConfig = field(default_factory=PairwiseConfig)
    #: Complex-event scope.  ``full`` (the paper's rule set) includes the
    #: per-area aggregate CEs (``suspicious``, ``illegalFishing``) whose
    #: vessel counters span every vessel in an area; ``vessel`` keeps only
    #: the vessel-local CEs (``illegalShipping``, ``dangerousShipping``),
    #: making recognition decomposable by MMSI — the contract a gateway
    #: cluster of independent runtimes requires (docs/GATEWAY.md).
    ce_scope: str = "full"
    #: Disable the CE recognition phase entirely (the Figure 10 experiment
    #: measures only the trajectory-maintenance phases).
    enable_recognition: bool = True
    #: Reconstruct staged trips into the MOD at every slide.
    reconstruct_each_slide: bool = True
    #: Path of the MOD database file (":memory:" keeps everything in RAM).
    database_path: str = ":memory:"

    @property
    def effective_recognition_window(self) -> int:
        """The RTEC window range in seconds."""
        if self.recognition_window_seconds is not None:
            return self.recognition_window_seconds
        return self.window.range_seconds
