"""Relational schema of the Moving Objects Database.

Four tables mirror the paper's data flow:

* ``vessels`` — static vessel records (type, draft, fishing designation);
* ``staging`` — the on-disk staging table of delta critical points evicted
  from the sliding window, awaiting trip assignment;
* ``trips`` — reconstructed voyage segments with semantic port enrichment;
* ``trip_points`` — the critical points composing each trip's geometry.

Indexes support the online insert path (per-vessel staging lookups) and the
offline query path (per-vessel and per-port trip scans, time-ordered point
retrieval).
"""

SCHEMA_STATEMENTS = [
    """
    CREATE TABLE IF NOT EXISTS vessels (
        mmsi         INTEGER PRIMARY KEY,
        vessel_type  TEXT NOT NULL,
        draft_meters REAL NOT NULL,
        is_fishing   INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS staging (
        id               INTEGER PRIMARY KEY AUTOINCREMENT,
        mmsi             INTEGER NOT NULL,
        lon              REAL NOT NULL,
        lat              REAL NOT NULL,
        timestamp        INTEGER NOT NULL,
        annotations      TEXT NOT NULL,
        speed_mps        REAL NOT NULL DEFAULT 0,
        heading_degrees  REAL NOT NULL DEFAULT 0,
        duration_seconds INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_staging_vessel_time
        ON staging (mmsi, timestamp)
    """,
    """
    CREATE TABLE IF NOT EXISTS trips (
        trip_id          INTEGER PRIMARY KEY AUTOINCREMENT,
        mmsi             INTEGER NOT NULL,
        origin_port      TEXT,
        destination_port TEXT NOT NULL,
        start_time       INTEGER NOT NULL,
        end_time         INTEGER NOT NULL,
        distance_meters  REAL NOT NULL,
        point_count      INTEGER NOT NULL
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_trips_vessel ON trips (mmsi, start_time)
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_trips_ports
        ON trips (origin_port, destination_port)
    """,
    """
    CREATE TABLE IF NOT EXISTS trip_points (
        trip_id          INTEGER NOT NULL REFERENCES trips (trip_id),
        seq              INTEGER NOT NULL,
        lon              REAL NOT NULL,
        lat              REAL NOT NULL,
        timestamp        INTEGER NOT NULL,
        annotations      TEXT NOT NULL,
        speed_mps        REAL NOT NULL DEFAULT 0,
        duration_seconds INTEGER NOT NULL DEFAULT 0,
        PRIMARY KEY (trip_id, seq)
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_trip_points_time
        ON trip_points (timestamp)
    """,
]
