"""Offline trajectory analytics (Section 3.3, Table 4).

"A series of derived tables can offer historical information about traveled
distances and travel times per ship, idle periods at dock, visited ports,
etc.  By maintaining Origin-Destination matrices, we may identify
connections between ports and compute aggregated statistics (duration,
speed, frequency, etc.) for such itineraries."
"""

from dataclasses import dataclass, field

from repro.mod.database import MovingObjectDatabase


@dataclass(frozen=True)
class TripStatistics:
    """The aggregate rows of Table 4, computed over the archive."""

    critical_points_in_trips: int
    critical_points_in_staging: int
    trip_count: int
    vessels_with_trips: int
    average_trips_per_vessel: float
    average_points_per_trip: float
    average_travel_time_seconds: float
    average_distance_meters: float

    def format_table(self) -> str:
        """Human-readable rendering in the layout of Table 4."""
        hours, remainder = divmod(int(self.average_travel_time_seconds), 3600)
        days, hours = divmod(hours, 24)
        minutes, seconds = divmod(remainder, 60)
        rows = [
            ("Critical points in reconstructed trajectories",
             f"{self.critical_points_in_trips:,}"),
            ("Critical points remaining in staging area",
             f"{self.critical_points_in_staging:,}"),
            ("Number of trips between ports", f"{self.trip_count:,}"),
            ("Average trips per vessel", f"{self.average_trips_per_vessel:.1f}"),
            ("Average number of critical points per trip",
             f"{self.average_points_per_trip:.0f}"),
            ("Average travel time per trip",
             f"{days} day(s) {hours:02d}:{minutes:02d}:{seconds:02d}"),
            ("Average traveled distance per trip",
             f"{self.average_distance_meters / 1000.0:.3f}km"),
        ]
        width = max(len(label) for label, _ in rows) + 2
        return "\n".join(f"{label:<{width}}{value}" for label, value in rows)


def compute_trip_statistics(mod: MovingObjectDatabase) -> TripStatistics:
    """Aggregate the archive into the Table 4 statistics."""
    connection = mod.connection
    (points_in_trips,) = connection.execute(
        "SELECT COUNT(*) FROM trip_points"
    ).fetchone()
    (points_staged,) = connection.execute(
        "SELECT COUNT(*) FROM staging"
    ).fetchone()
    (trip_count,) = connection.execute("SELECT COUNT(*) FROM trips").fetchone()
    (vessel_count,) = connection.execute(
        "SELECT COUNT(DISTINCT mmsi) FROM trips"
    ).fetchone()
    row = connection.execute(
        "SELECT AVG(point_count), AVG(end_time - start_time), "
        "AVG(distance_meters) FROM trips"
    ).fetchone()
    average_points, average_time, average_distance = (
        (row[0] or 0.0, row[1] or 0.0, row[2] or 0.0) if row else (0.0, 0.0, 0.0)
    )
    return TripStatistics(
        critical_points_in_trips=points_in_trips,
        critical_points_in_staging=points_staged,
        trip_count=trip_count,
        vessels_with_trips=vessel_count,
        average_trips_per_vessel=(
            trip_count / vessel_count if vessel_count else 0.0
        ),
        average_points_per_trip=average_points,
        average_travel_time_seconds=average_time,
        average_distance_meters=average_distance,
    )


@dataclass
class OriginDestinationMatrix:
    """Aggregated itinerary statistics between port pairs."""

    #: (origin, destination) -> dict of aggregates.
    cells: dict[tuple[str | None, str], dict] = field(default_factory=dict)

    def trip_count(self, origin: str | None, destination: str) -> int:
        """Trips observed on one itinerary."""
        cell = self.cells.get((origin, destination))
        return cell["trips"] if cell else 0

    def busiest(self, top: int = 5) -> list[tuple[tuple[str | None, str], int]]:
        """The most traveled itineraries."""
        ranked = sorted(
            ((pair, cell["trips"]) for pair, cell in self.cells.items()),
            key=lambda item: -item[1],
        )
        return ranked[:top]


def compute_od_matrix(mod: MovingObjectDatabase) -> OriginDestinationMatrix:
    """Build the origin-destination matrix from the trips table."""
    cursor = mod.connection.execute(
        "SELECT origin_port, destination_port, COUNT(*), "
        "AVG(end_time - start_time), AVG(distance_meters) "
        "FROM trips GROUP BY origin_port, destination_port"
    )
    matrix = OriginDestinationMatrix()
    for origin, destination, trips, avg_time, avg_distance in cursor.fetchall():
        matrix.cells[(origin, destination)] = {
            "trips": trips,
            "average_travel_time_seconds": avg_time,
            "average_distance_meters": avg_distance,
        }
    return matrix


def vessel_travel_summary(mod: MovingObjectDatabase, mmsi: int) -> dict:
    """Per-vessel historical aggregates (distances, times, ports visited)."""
    row = mod.connection.execute(
        "SELECT COUNT(*), COALESCE(SUM(distance_meters), 0), "
        "COALESCE(SUM(end_time - start_time), 0) FROM trips WHERE mmsi = ?",
        (mmsi,),
    ).fetchone()
    ports = mod.connection.execute(
        "SELECT DISTINCT destination_port FROM trips WHERE mmsi = ? "
        "UNION SELECT DISTINCT origin_port FROM trips "
        "WHERE mmsi = ? AND origin_port IS NOT NULL",
        (mmsi, mmsi),
    ).fetchall()
    return {
        "mmsi": mmsi,
        "trips": row[0],
        "total_distance_meters": row[1],
        "total_travel_time_seconds": row[2],
        "ports_visited": sorted(port for (port,) in ports),
    }
