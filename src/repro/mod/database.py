"""The Moving Objects Database: staging, reconstruction, retrieval.

Mirrors the offline half of Figure 1: batches of delta critical points are
inserted into the staging table; :meth:`MovingObjectDatabase.reconstruct`
periodically converts each vessel's staged sequence into disjoint trip
segments ("a long journey breaks up into smaller trips between ports"),
leaving open-ended residues staged until a destination port is identified.
Only the last segment per vessel ever receives updates, which is the
property Hermes exploits to keep update costs low.
"""

import sqlite3
from collections.abc import Iterable

from repro import obs
from repro.mod.schema import SCHEMA_STATEMENTS
from repro.resilience.faults import fault_point
from repro.reconstruct.trips import Trip, TripSegmenter
from repro.simulator.vessel import VesselSpec
from repro.simulator.world import Port
from repro.tracking.types import CriticalPoint, MovementEventType


def _encode_annotations(annotations: Iterable[MovementEventType]) -> str:
    return ",".join(sorted(a.value for a in annotations))


def _decode_annotations(encoded: str) -> frozenset[MovementEventType]:
    if not encoded:
        return frozenset()
    return frozenset(MovementEventType(value) for value in encoded.split(","))


class MovingObjectDatabase:
    """SQLite-backed archive of trajectories and trips.

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` (default) for tests and
        benchmarks.
    ports:
        Known port polygons used by trip segmentation.
    """

    def __init__(self, ports: list[Port], path: str = ":memory:"):
        # The database has a single logical owner (the pipeline system) and
        # every access is serialized, but that owner may run on a worker
        # thread other than the constructing one — the live service drives
        # slides through run_in_executor — so sqlite's per-thread affinity
        # check must be relaxed.
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._connection.execute("PRAGMA journal_mode = MEMORY")
        self._connection.execute("PRAGMA synchronous = OFF")
        for statement in SCHEMA_STATEMENTS:
            self._connection.execute(statement)
        self._connection.commit()
        self._segmenter = TripSegmenter(ports)

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "MovingObjectDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # static data
    # ------------------------------------------------------------------

    def load_vessels(self, specs: Iterable[VesselSpec]) -> int:
        """Insert or replace static vessel records."""
        rows = [
            (spec.mmsi, spec.vessel_type.value, spec.draft_meters, int(spec.is_fishing))
            for spec in specs
        ]
        self._connection.executemany(
            "INSERT OR REPLACE INTO vessels (mmsi, vessel_type, draft_meters, "
            "is_fishing) VALUES (?, ?, ?, ?)",
            rows,
        )
        self._connection.commit()
        return len(rows)

    def vessel(self, mmsi: int) -> tuple | None:
        """One static vessel row, or ``None``."""
        cursor = self._connection.execute(
            "SELECT mmsi, vessel_type, draft_meters, is_fishing FROM vessels "
            "WHERE mmsi = ?",
            (mmsi,),
        )
        return cursor.fetchone()

    # ------------------------------------------------------------------
    # staging (the online insert path)
    # ------------------------------------------------------------------

    def stage_points(self, points: list[CriticalPoint]) -> int:
        """Append a batch of delta critical points to the staging table."""
        with obs.span("mod.stage_points"):
            return self._stage_points(points)

    def _stage_points(self, points: list[CriticalPoint]) -> int:
        fault_point("mod.write")
        rows = [
            (
                point.mmsi,
                point.lon,
                point.lat,
                point.timestamp,
                _encode_annotations(point.annotations),
                point.speed_mps,
                point.heading_degrees,
                point.duration_seconds,
            )
            for point in points
        ]
        self._connection.executemany(
            "INSERT INTO staging (mmsi, lon, lat, timestamp, annotations, "
            "speed_mps, heading_degrees, duration_seconds) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
        self._connection.commit()
        obs.count("mod.staged_points", len(rows))
        return len(rows)

    def staged_count(self) -> int:
        """Rows currently in the staging table."""
        cursor = self._connection.execute("SELECT COUNT(*) FROM staging")
        return cursor.fetchone()[0]

    def staged_points(self, mmsi: int) -> list[CriticalPoint]:
        """Staged points of one vessel, in timestamp order."""
        cursor = self._connection.execute(
            "SELECT mmsi, lon, lat, timestamp, annotations, speed_mps, "
            "heading_degrees, duration_seconds FROM staging "
            "WHERE mmsi = ? ORDER BY timestamp",
            (mmsi,),
        )
        return [self._row_to_point(row) for row in cursor.fetchall()]

    # ------------------------------------------------------------------
    # reconstruction (the offline path)
    # ------------------------------------------------------------------

    def reconstruct(self, timings: dict | None = None) -> int:
        """Segment every vessel's staged points into trips; returns the
        number of new trips loaded.

        Points belonging to completed trips are removed from staging;
        open-ended residues stay staged, awaiting a destination port
        ("these points will be piling up in the staging table").

        When ``timings`` is given, the seconds spent in segmentation and in
        loading trips are accumulated under ``"reconstruction"`` and
        ``"loading"`` — the phase split of Figure 10.
        """
        with obs.span("mod.reconstruct"):
            return self._reconstruct(timings)

    def _reconstruct(self, timings: dict | None = None) -> int:
        fault_point("mod.reconstruct")
        import time as _time

        cursor = self._connection.execute("SELECT DISTINCT mmsi FROM staging")
        vessels = [row[0] for row in cursor.fetchall()]
        new_trips = 0
        reconstruction_seconds = 0.0
        loading_seconds = 0.0
        for mmsi in vessels:
            points = self.staged_points(mmsi)
            started = _time.perf_counter()
            trips, residue = self._segmenter.segment(points)
            reconstruction_seconds += _time.perf_counter() - started
            if not trips:
                continue
            started = _time.perf_counter()
            for trip in trips:
                self._insert_trip(trip)
                new_trips += 1
            # Everything before the residue has been assigned to a trip.
            cutoff = min(
                (p.timestamp for p in residue),
                default=points[-1].timestamp + 1,
            )
            self._connection.execute(
                "DELETE FROM staging WHERE mmsi = ? AND timestamp < ?",
                (mmsi, cutoff),
            )
            loading_seconds += _time.perf_counter() - started
        started = _time.perf_counter()
        self._connection.commit()
        loading_seconds += _time.perf_counter() - started
        if timings is not None:
            timings["reconstruction"] = (
                timings.get("reconstruction", 0.0) + reconstruction_seconds
            )
            timings["loading"] = timings.get("loading", 0.0) + loading_seconds
        obs.observe("mod.reconstruct.segmentation_seconds", reconstruction_seconds)
        obs.observe("mod.reconstruct.loading_seconds", loading_seconds)
        obs.count("mod.trips_loaded", new_trips)
        return new_trips

    def _insert_trip(self, trip: Trip) -> None:
        cursor = self._connection.execute(
            "INSERT INTO trips (mmsi, origin_port, destination_port, "
            "start_time, end_time, distance_meters, point_count) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                trip.mmsi,
                trip.origin_port,
                trip.destination_port,
                trip.start_time,
                trip.end_time,
                trip.distance_meters,
                trip.point_count,
            ),
        )
        trip_id = cursor.lastrowid
        self._connection.executemany(
            "INSERT INTO trip_points (trip_id, seq, lon, lat, timestamp, "
            "annotations, speed_mps, duration_seconds) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    trip_id,
                    seq,
                    point.lon,
                    point.lat,
                    point.timestamp,
                    _encode_annotations(point.annotations),
                    point.speed_mps,
                    point.duration_seconds,
                )
                for seq, point in enumerate(trip.points)
            ],
        )

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------

    def trip_count(self) -> int:
        """Number of archived trips."""
        cursor = self._connection.execute("SELECT COUNT(*) FROM trips")
        return cursor.fetchone()[0]

    def trips_of_vessel(self, mmsi: int) -> list[dict]:
        """Archived trips of one vessel, as plain dicts."""
        cursor = self._connection.execute(
            "SELECT trip_id, mmsi, origin_port, destination_port, start_time, "
            "end_time, distance_meters, point_count FROM trips "
            "WHERE mmsi = ? ORDER BY start_time",
            (mmsi,),
        )
        return [self._trip_row_to_dict(row) for row in cursor.fetchall()]

    def all_trips(self) -> list[dict]:
        """Every archived trip."""
        cursor = self._connection.execute(
            "SELECT trip_id, mmsi, origin_port, destination_port, start_time, "
            "end_time, distance_meters, point_count FROM trips ORDER BY trip_id"
        )
        return [self._trip_row_to_dict(row) for row in cursor.fetchall()]

    def trip_points(self, trip_id: int) -> list[CriticalPoint]:
        """Geometry of one trip, as critical points in sequence order."""
        cursor = self._connection.execute(
            "SELECT t.mmsi, p.lon, p.lat, p.timestamp, p.annotations, "
            "p.speed_mps, 0.0, p.duration_seconds "
            "FROM trip_points p JOIN trips t ON t.trip_id = p.trip_id "
            "WHERE p.trip_id = ? ORDER BY p.seq",
            (trip_id,),
        )
        return [self._row_to_point(row) for row in cursor.fetchall()]

    @property
    def connection(self) -> sqlite3.Connection:
        """The raw connection, for the query and analytics helpers."""
        return self._connection

    # ------------------------------------------------------------------
    # row mapping
    # ------------------------------------------------------------------

    @staticmethod
    def _row_to_point(row: tuple) -> CriticalPoint:
        mmsi, lon, lat, timestamp, annotations, speed, heading, duration = row
        return CriticalPoint(
            mmsi=mmsi,
            lon=lon,
            lat=lat,
            timestamp=timestamp,
            annotations=_decode_annotations(annotations),
            speed_mps=speed,
            heading_degrees=heading,
            duration_seconds=duration,
        )

    @staticmethod
    def _trip_row_to_dict(row: tuple) -> dict:
        keys = (
            "trip_id",
            "mmsi",
            "origin_port",
            "destination_port",
            "start_time",
            "end_time",
            "distance_meters",
            "point_count",
        )
        return dict(zip(keys, row))
