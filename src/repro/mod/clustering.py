"""Spatiotemporal clustering of trips (Section 3.3).

"Hermes MOD incorporates an algorithm for spatiotemporal clustering, which
can help exploring periodicity of trips.  Two (or more) trajectory clusters
may be almost identical spatially, but they are distinct because the
temporal dimension is taken into consideration."

The implementation builds an epsilon-neighbourhood graph over trips using a
combined spatial + temporal distance and returns its connected components
(single-linkage clustering), via networkx.
"""

import networkx as nx

from repro.mod.database import MovingObjectDatabase
from repro.mod.queries import trajectory_similarity


def spatiotemporal_distance(
    mod: MovingObjectDatabase,
    trip_a: dict,
    trip_b: dict,
    time_scale_seconds: float = 3600.0,
    samples: int = 12,
) -> float:
    """Combined distance between two trips.

    The spatial part is the synchronized-Euclidean similarity in meters; the
    temporal part is the start-time difference converted to meters through
    ``time_scale_seconds`` (one hour of offset weighs like one kilometer by
    default), so that spatially identical but temporally distinct runs land
    in different clusters.
    """
    spatial = trajectory_similarity(
        mod, trip_a["trip_id"], trip_b["trip_id"], samples=samples
    )
    temporal = abs(trip_a["start_time"] - trip_b["start_time"]) / time_scale_seconds
    return spatial + temporal * 1000.0


def cluster_trips(
    mod: MovingObjectDatabase,
    epsilon_meters: float = 5000.0,
    time_scale_seconds: float = 3600.0,
    min_points: int = 2,
) -> list[list[int]]:
    """Cluster archived trips; returns lists of trip ids per cluster.

    Trips with fewer than two points are skipped (no geometry).  Clusters
    smaller than ``min_points`` are treated as noise and dropped.
    """
    trips = [trip for trip in mod.all_trips() if trip["point_count"] >= 2]
    graph = nx.Graph()
    graph.add_nodes_from(trip["trip_id"] for trip in trips)
    for i, trip_a in enumerate(trips):
        for trip_b in trips[i + 1 :]:
            distance = spatiotemporal_distance(
                mod, trip_a, trip_b, time_scale_seconds
            )
            if distance <= epsilon_meters:
                graph.add_edge(trip_a["trip_id"], trip_b["trip_id"])
    clusters = [
        sorted(component)
        for component in nx.connected_components(graph)
        if len(component) >= min_points
    ]
    clusters.sort()
    return clusters
