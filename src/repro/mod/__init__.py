"""A Moving Objects Database in the spirit of Hermes MOD (Sections 3.2-3.3).

The paper archives reconstructed trajectories in Hermes, a MOD prototype on
PostgreSQL.  This package provides the equivalent substrate on stdlib
``sqlite3``: a staging table fed with delta critical points, periodic
reconstruction into port-to-port trip segments, spatiotemporal queries
(range, nearest neighbour, trajectory similarity), offline analytics
(origin-destination matrices, travel statistics — Table 4), and a simple
spatiotemporal clustering of trips.
"""

from repro.mod.analytics import (
    OriginDestinationMatrix,
    TripStatistics,
    compute_od_matrix,
    compute_trip_statistics,
)
from repro.mod.clustering import cluster_trips
from repro.mod.database import MovingObjectDatabase
from repro.mod.queries import (
    nearest_neighbors,
    range_query,
    trajectory_similarity,
)

__all__ = [
    "MovingObjectDatabase",
    "OriginDestinationMatrix",
    "TripStatistics",
    "cluster_trips",
    "compute_od_matrix",
    "compute_trip_statistics",
    "nearest_neighbors",
    "range_query",
    "trajectory_similarity",
]
