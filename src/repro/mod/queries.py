"""Spatiotemporal queries over archived trips.

Hermes MOD "defines a trajectory data type as well as a collection of
spatiotemporal operations (range, nearest neighbor, similarity, etc.)"
(Section 6).  The equivalents here operate on the trip tables: a range query
over a space-time box, k-nearest-neighbour search against a query point at a
time instant, and a synchronized-Euclidean trajectory similarity — the
distance notion also used by the approximation-error study.
"""

from dataclasses import dataclass

from repro.geo.haversine import haversine_meters
from repro.geo.interpolate import synchronize_track
from repro.geo.polygon import BoundingBox
from repro.mod.database import MovingObjectDatabase


@dataclass(frozen=True)
class RangeHit:
    """One point-in-range result."""

    trip_id: int
    mmsi: int
    lon: float
    lat: float
    timestamp: int


def range_query(
    mod: MovingObjectDatabase,
    box: BoundingBox,
    time_from: int,
    time_to: int,
) -> list[RangeHit]:
    """Trip points inside a spatial box during a time interval."""
    cursor = mod.connection.execute(
        "SELECT p.trip_id, t.mmsi, p.lon, p.lat, p.timestamp "
        "FROM trip_points p JOIN trips t ON t.trip_id = p.trip_id "
        "WHERE p.lon BETWEEN ? AND ? AND p.lat BETWEEN ? AND ? "
        "AND p.timestamp BETWEEN ? AND ? ORDER BY p.timestamp",
        (box.min_lon, box.max_lon, box.min_lat, box.max_lat, time_from, time_to),
    )
    return [RangeHit(*row) for row in cursor.fetchall()]


def nearest_neighbors(
    mod: MovingObjectDatabase,
    lon: float,
    lat: float,
    timestamp: int,
    k: int = 1,
    time_tolerance: int = 1800,
) -> list[tuple[int, float]]:
    """The k vessels nearest to a location around a time instant.

    Considers each vessel's trip point closest in time within the tolerance;
    returns ``(mmsi, distance_meters)`` pairs sorted by distance.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    cursor = mod.connection.execute(
        "SELECT t.mmsi, p.lon, p.lat, p.timestamp "
        "FROM trip_points p JOIN trips t ON t.trip_id = p.trip_id "
        "WHERE p.timestamp BETWEEN ? AND ?",
        (timestamp - time_tolerance, timestamp + time_tolerance),
    )
    best_per_vessel: dict[int, tuple[int, float]] = {}
    for mmsi, p_lon, p_lat, p_time in cursor.fetchall():
        time_gap = abs(p_time - timestamp)
        current = best_per_vessel.get(mmsi)
        if current is None or time_gap < current[0]:
            distance = haversine_meters(lon, lat, p_lon, p_lat)
            best_per_vessel[mmsi] = (time_gap, distance)
    ranked = sorted(
        ((mmsi, distance) for mmsi, (_, distance) in best_per_vessel.items()),
        key=lambda item: item[1],
    )
    return ranked[:k]


def trajectory_similarity(
    mod: MovingObjectDatabase, trip_id_a: int, trip_id_b: int, samples: int = 20
) -> float:
    """Synchronized-Euclidean distance between two trips, in meters.

    Both trips are resampled at ``samples`` instants spread over their
    *relative* durations (so a morning and an evening run of the same route
    compare spatially), and the mean Haversine deviation over the sample
    pairs is returned.  Lower is more similar.
    """
    if samples < 2:
        raise ValueError(f"samples must be >= 2, got {samples}")
    track_a = _dedupe_times([p.as_timed_point() for p in mod.trip_points(trip_id_a)])
    track_b = _dedupe_times([p.as_timed_point() for p in mod.trip_points(trip_id_b)])
    if len(track_a) < 2 or len(track_b) < 2:
        raise ValueError("both trips need at least two points")

    def resample(track: list[tuple[float, float, int]]) -> list[tuple[float, float]]:
        t0, t1 = track[0][2], track[-1][2]
        timestamps = [
            int(t0 + (t1 - t0) * index / (samples - 1)) for index in range(samples)
        ]
        return synchronize_track(timestamps, track)

    points_a = resample(track_a)
    points_b = resample(track_b)
    total = sum(
        haversine_meters(a[0], a[1], b[0], b[1])
        for a, b in zip(points_a, points_b)
    )
    return total / samples


def _dedupe_times(
    track: list[tuple[float, float, int]]
) -> list[tuple[float, float, int]]:
    """Keep the last point per timestamp.

    A trip's geometry may carry two critical points at the same instant —
    e.g. a gap start emitted at a location that an earlier slide already
    reported as a turn — and interpolation needs strictly increasing times.
    """
    track = sorted(track, key=lambda point: point[2])
    deduplicated: list[tuple[float, float, int]] = []
    for point in track:
        if deduplicated and deduplicated[-1][2] == point[2]:
            deduplicated[-1] = point
        else:
            deduplicated.append(point)
    return deduplicated
