"""Fleet assembly and AIS stream generation.

:class:`FleetSimulator` builds a mixed fleet over a world model, samples each
vessel's motion plan at activity-dependent report intervals (averaging about
one report per two minutes, as the paper measured for the IMIS dataset),
applies measurement noise, honours transponder silence windows, and merges
everything into a single timestamp-ordered positional stream.
"""

import random
from dataclasses import dataclass

from repro.ais.stream import PositionalTuple, merge_streams
from repro.geo.units import knots_to_mps
from repro.simulator.noise import NoiseModel
from repro.simulator.vessel import (
    Behaviour,
    VesselSpec,
    make_cargo,
    make_deviant_tanker,
    make_ferry,
    make_fishing,
    make_loiterer,
    make_rendezvous_pair,
    make_shallow_runner,
)
from repro.simulator.world import WorldModel, build_aegean_world

_BASE_MMSI = 237_000_000  # Greek MMSI prefix, as in the source dataset.


@dataclass
class SimulatedVessel:
    """A vessel with its behaviour and the sampled (noisy) reports."""

    behaviour: Behaviour
    positions: list[PositionalTuple]

    @property
    def spec(self) -> VesselSpec:
        """Static vessel record."""
        return self.behaviour.spec

    @property
    def mmsi(self) -> int:
        """Vessel identifier."""
        return self.behaviour.spec.mmsi

    def ground_truth_at(self, timestamp: int) -> tuple[float, float]:
        """Noise-free position from the motion plan."""
        return self.behaviour.plan.position_at(timestamp)


class FleetSimulator:
    """Deterministic generator of synthetic AIS traffic.

    Parameters
    ----------
    world:
        The world model; defaults to :func:`build_aegean_world`.
    seed:
        Master RNG seed; every vessel derives its own child RNG from it, so
        fleets are reproducible position-for-position.
    start_time / duration_seconds:
        Simulated period covered by every vessel's plan.
    noise:
        Measurement noise model applied to each fix.
    """

    def __init__(
        self,
        world: WorldModel | None = None,
        seed: int = 42,
        start_time: int = 0,
        duration_seconds: int = 6 * 3600,
        noise: NoiseModel | None = None,
    ):
        self.world = world or build_aegean_world()
        self.seed = seed
        self.start_time = start_time
        self.duration_seconds = duration_seconds
        self.noise = noise if noise is not None else NoiseModel()
        self._next_mmsi = _BASE_MMSI

    # ------------------------------------------------------------------
    # fleet construction
    # ------------------------------------------------------------------

    def build_mixed_fleet(
        self,
        n_vessels: int,
        deviant_fraction: float = 0.08,
    ) -> list[SimulatedVessel]:
        """A fleet with the paper's traffic mix plus deviant behaviours.

        Roughly: 40 % ferries, 30 % cargo pass-throughs, 20 % fishing
        (a quarter of them fishing illegally), 10 % tankers; additionally a
        ``deviant_fraction`` of the fleet is replaced by protected-area
        runners, shallow-water creepers and one loitering rendezvous group.
        """
        rng = random.Random(self.seed)
        vessels: list[SimulatedVessel] = []
        n_deviant = max(0, round(n_vessels * deviant_fraction))
        n_regular = n_vessels - n_deviant

        for index in range(n_regular):
            vessel_rng = random.Random(rng.randrange(2**63))
            draw = index / max(1, n_regular)
            if draw < 0.40:
                behaviour = make_ferry(
                    self._allocate_mmsi(), self.world, vessel_rng,
                    self.start_time, self.duration_seconds,
                )
            elif draw < 0.70:
                behaviour = make_cargo(
                    self._allocate_mmsi(), self.world, vessel_rng,
                    self.start_time, self.duration_seconds,
                )
            elif draw < 0.90:
                behaviour = make_fishing(
                    self._allocate_mmsi(), self.world, vessel_rng,
                    self.start_time, self.duration_seconds,
                    illegal=vessel_rng.random() < 0.25,
                )
            else:
                behaviour = make_cargo(
                    self._allocate_mmsi(), self.world, vessel_rng,
                    self.start_time, self.duration_seconds,
                )
            vessels.append(self._sample(behaviour, vessel_rng))

        vessels.extend(self._build_deviants(n_deviant, rng))
        return vessels

    def build_scenario_suspicious(
        self, n_vessels: int = 5, rendezvous: tuple[float, float] | None = None
    ) -> list[SimulatedVessel]:
        """Several vessels stopping together: triggers ``suspicious(Area)``."""
        rng = random.Random(self.seed)
        if rendezvous is None:
            area = self.world.areas[0]
            rendezvous = area.polygon.centroid
        arrive_by = self.start_time + self.duration_seconds // 3
        stay = self.duration_seconds // 3
        vessels = []
        for _ in range(n_vessels):
            vessel_rng = random.Random(rng.randrange(2**63))
            behaviour = make_loiterer(
                self._allocate_mmsi(), self.world, vessel_rng,
                self.start_time, self.duration_seconds,
                rendezvous=rendezvous, arrive_by=arrive_by, stay_seconds=stay,
            )
            vessels.append(self._sample(behaviour, vessel_rng))
        return vessels

    def build_scenario_illegal_shipping(self, n_vessels: int = 1) -> list[SimulatedVessel]:
        """Tankers silencing transponders inside protected areas."""
        rng = random.Random(self.seed)
        vessels = []
        for _ in range(n_vessels):
            vessel_rng = random.Random(rng.randrange(2**63))
            behaviour = make_deviant_tanker(
                self._allocate_mmsi(), self.world, vessel_rng,
                self.start_time, self.duration_seconds,
            )
            vessels.append(self._sample(behaviour, vessel_rng))
        return vessels

    def build_scenario_illegal_fishing(self, n_vessels: int = 1) -> list[SimulatedVessel]:
        """Fishing vessels trawling in forbidden areas."""
        rng = random.Random(self.seed)
        vessels = []
        for _ in range(n_vessels):
            vessel_rng = random.Random(rng.randrange(2**63))
            behaviour = make_fishing(
                self._allocate_mmsi(), self.world, vessel_rng,
                self.start_time, self.duration_seconds, illegal=True,
            )
            vessels.append(self._sample(behaviour, vessel_rng))
        return vessels

    def build_scenario_dangerous_shipping(self, n_vessels: int = 1) -> list[SimulatedVessel]:
        """Deep-draft vessels creeping through shallow waters."""
        rng = random.Random(self.seed)
        vessels = []
        for _ in range(n_vessels):
            vessel_rng = random.Random(rng.randrange(2**63))
            behaviour = make_shallow_runner(
                self._allocate_mmsi(), self.world, vessel_rng,
                self.start_time, self.duration_seconds,
            )
            vessels.append(self._sample(behaviour, vessel_rng))
        return vessels

    def build_scenario_rendezvous(
        self, silence_second: bool = True
    ) -> list[SimulatedVessel]:
        """Two vessels meeting offshore: the pairwise ground truth.

        Produces ``encounter`` and ``rendezvous`` intervals for the pair
        and (with ``silence_second``) a ``darkShip`` event for the second
        vessel — see :mod:`repro.maritime.pairwise`.
        """
        rng = random.Random(self.seed)
        pair_rng = random.Random(rng.randrange(2**63))
        first, second = make_rendezvous_pair(
            self._allocate_mmsi(), self._allocate_mmsi(),
            self.world, pair_rng,
            self.start_time, self.duration_seconds,
            silence_second=silence_second,
        )
        return [
            self._sample(first, random.Random(rng.randrange(2**63))),
            self._sample(second, random.Random(rng.randrange(2**63))),
        ]

    # ------------------------------------------------------------------
    # stream assembly
    # ------------------------------------------------------------------

    def positions(self, vessels: list[SimulatedVessel]) -> list[PositionalTuple]:
        """One merged, timestamp-ordered positional stream for a fleet."""
        return merge_streams([v.positions for v in vessels])

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _allocate_mmsi(self) -> int:
        mmsi = self._next_mmsi
        self._next_mmsi += 1
        return mmsi

    def _build_deviants(
        self, count: int, rng: random.Random
    ) -> list[SimulatedVessel]:
        vessels: list[SimulatedVessel] = []
        loiter_group = min(5, count) if count >= 4 else 0
        if loiter_group:
            area = rng.choice(self.world.areas)
            rendezvous = area.polygon.centroid
            arrive_by = self.start_time + self.duration_seconds // 3
            for _ in range(loiter_group):
                vessel_rng = random.Random(rng.randrange(2**63))
                behaviour = make_loiterer(
                    self._allocate_mmsi(), self.world, vessel_rng,
                    self.start_time, self.duration_seconds,
                    rendezvous=rendezvous, arrive_by=arrive_by,
                    stay_seconds=self.duration_seconds // 3,
                )
                vessels.append(self._sample(behaviour, vessel_rng))
        makers = [make_deviant_tanker, make_shallow_runner]
        for index in range(count - loiter_group):
            vessel_rng = random.Random(rng.randrange(2**63))
            maker = makers[index % len(makers)]
            behaviour = maker(
                self._allocate_mmsi(), self.world, vessel_rng,
                self.start_time, self.duration_seconds,
            )
            vessels.append(self._sample(behaviour, vessel_rng))
        return vessels

    def _sample(
        self, behaviour: Behaviour, rng: random.Random
    ) -> SimulatedVessel:
        """Sample a behaviour into noisy positional reports.

        Report intervals depend on activity, as with real transponders:
        vessels "anchored or slowly moving transmit less frequently than
        those cruising fast in the open sea" (Section 1).
        """
        plan = behaviour.plan
        horizon = min(plan.end_time, self.start_time + self.duration_seconds)
        positions: list[PositionalTuple] = []
        timestamp = plan.start_time
        while timestamp <= horizon:
            if not _silenced(behaviour.silence_windows, timestamp):
                lon, lat = plan.position_at(timestamp)
                lon, lat, _ = self.noise.perturb(rng, lon, lat)
                positions.append(
                    PositionalTuple(behaviour.spec.mmsi, lon, lat, timestamp)
                )
            speed = plan.speed_at(timestamp)
            if speed > knots_to_mps(6.0):
                interval = rng.randint(30, 90)
            elif speed > knots_to_mps(1.0):
                interval = rng.randint(60, 180)
            else:
                interval = rng.randint(120, 300)
            timestamp += interval
        return SimulatedVessel(behaviour, positions)


def _silenced(windows: tuple[tuple[int, int], ...], timestamp: int) -> bool:
    return any(start <= timestamp < end for start, end in windows)


def replicate_positions(
    positions: list[PositionalTuple], copies: int, lat_shift: float = 0.01
) -> list[PositionalTuple]:
    """Multiply a stream's arrival rate by replaying it as extra fleets.

    Used by the Figure 7 stress test: the paper admits "bigger chunks of data
    at considerably increased arrival rates".  Each copy gets fresh MMSIs and
    a slight latitude offset so the copies are distinct vessels with
    identical dynamics; per-vessel report ordering is preserved.
    """
    if copies < 1:
        raise ValueError(f"copies must be >= 1, got {copies}")
    if copies == 1:
        return list(positions)
    replicated: list[list[PositionalTuple]] = []
    mmsis = sorted({p.mmsi for p in positions})
    span = (max(mmsis) - min(mmsis) + 1) if mmsis else 1
    for copy_index in range(copies):
        offset = copy_index * span
        shift = copy_index * lat_shift
        replicated.append(
            [
                PositionalTuple(p.mmsi + offset, p.lon, p.lat + shift, p.timestamp)
                for p in positions
            ]
        )
    return merge_streams(replicated)
