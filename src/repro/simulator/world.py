"""The synthetic world: ports and regulated areas in an Aegean-like region.

The paper's CE recognition experiments use 35 generated polygons
"representing protected areas, forbidden fishing areas, and areas with
shallow waters" (Section 5.2) plus known port polygons for trip segmentation
(Section 3.2).  This module builds a deterministic world of that shape.
"""

import enum
import random
from dataclasses import dataclass, field

from repro.geo.polygon import BoundingBox, GeoPolygon

#: Rough extent of the Aegean and surrounding seas used by the paper's data.
AEGEAN_BBOX = BoundingBox(22.5, 35.5, 27.5, 39.5)


class AreaKind(enum.Enum):
    """Regulated-area categories referenced by the CE definitions."""

    PROTECTED = "protected"
    FORBIDDEN_FISHING = "forbidden_fishing"
    SHALLOW = "shallow"


@dataclass(frozen=True)
class Port:
    """A known port: an anchor point plus its polygon for stop matching."""

    name: str
    lon: float
    lat: float
    polygon: GeoPolygon


@dataclass(frozen=True)
class Area:
    """A regulated area of one of the three kinds.

    ``depth_meters`` only matters for :attr:`AreaKind.SHALLOW` areas: a
    vessel whose draft exceeds it is in dangerously shallow waters there.
    """

    name: str
    kind: AreaKind
    polygon: GeoPolygon
    depth_meters: float = 0.0


@dataclass
class WorldModel:
    """Ports, areas and the bounding box of the monitored region."""

    bbox: BoundingBox
    ports: list[Port] = field(default_factory=list)
    areas: list[Area] = field(default_factory=list)

    def areas_of_kind(self, kind: AreaKind) -> list[Area]:
        """All areas of one category."""
        return [area for area in self.areas if area.kind is kind]

    def port_by_name(self, name: str) -> Port:
        """Look a port up by name; raises ``KeyError`` when absent."""
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"no port named {name!r}")

    def area_by_name(self, name: str) -> Area:
        """Look an area up by name; raises ``KeyError`` when absent."""
        for area in self.areas:
            if area.name == name:
                return area
        raise KeyError(f"no area named {name!r}")

    def split_by_longitude(self) -> tuple["WorldModel", "WorldModel"]:
        """Partition the world into west/east halves.

        Reproduces the paper's two-processor setup: "one processor performed
        CE recognition for the areas located in, and the vessels passing
        through the west part of the area under surveillance" (Section 5.2).
        Areas are assigned by centroid longitude; ports are shared since they
        only matter for offline trip segmentation.
        """
        mid_lon = (self.bbox.min_lon + self.bbox.max_lon) / 2.0
        west = WorldModel(
            BoundingBox(self.bbox.min_lon, self.bbox.min_lat, mid_lon, self.bbox.max_lat),
            ports=list(self.ports),
            areas=[a for a in self.areas if a.polygon.centroid[0] < mid_lon],
        )
        east = WorldModel(
            BoundingBox(mid_lon, self.bbox.min_lat, self.bbox.max_lon, self.bbox.max_lat),
            ports=list(self.ports),
            areas=[a for a in self.areas if a.polygon.centroid[0] >= mid_lon],
        )
        return west, east


#: Anchor ports loosely modeled on real Aegean harbors, (name, lon, lat).
_PORT_SITES = [
    ("piraeus", 23.62, 37.94),
    ("thessaloniki", 22.93, 40.60),
    ("heraklion", 25.14, 35.34),
    ("rhodes", 28.22, 36.44),
    ("mytilene", 26.56, 39.10),
    ("chios", 26.14, 38.37),
    ("syros", 24.94, 37.44),
    ("naxos", 25.37, 37.10),
    ("milos", 24.44, 36.72),
    ("kos", 27.29, 36.89),
    ("volos", 22.95, 39.36),
    ("kavala", 24.41, 40.93),
]


def build_aegean_world(
    num_ports: int = 10, num_areas: int = 35, seed: int = 7
) -> WorldModel:
    """Deterministic Aegean-like world.

    Ports come from a fixed site list (clamped into the working bbox);
    regulated areas are pseudo-randomly scattered rectangles of 2-8 km,
    placed away from ports so that routine docking does not trip alerts.
    The default ``num_areas=35`` matches the paper's experiments.
    """
    rng = random.Random(seed)
    bbox = AEGEAN_BBOX
    ports = []
    for name, lon, lat in _PORT_SITES[:num_ports]:
        lon = min(max(lon, bbox.min_lon + 0.1), bbox.max_lon - 0.1)
        lat = min(max(lat, bbox.min_lat + 0.1), bbox.max_lat - 0.1)
        polygon = GeoPolygon.rectangle(f"port_{name}", lon, lat, 3000.0, 3000.0)
        ports.append(Port(name, lon, lat, polygon))

    kinds = [AreaKind.PROTECTED, AreaKind.FORBIDDEN_FISHING, AreaKind.SHALLOW]
    areas: list[Area] = []
    attempts = 0
    while len(areas) < num_areas and attempts < num_areas * 50:
        attempts += 1
        lon = rng.uniform(bbox.min_lon + 0.2, bbox.max_lon - 0.2)
        lat = rng.uniform(bbox.min_lat + 0.2, bbox.max_lat - 0.2)
        if any(_near(port.lon, port.lat, lon, lat, 0.12) for port in ports):
            continue
        if any(_near(a.polygon.centroid[0], a.polygon.centroid[1], lon, lat, 0.15)
               for a in areas):
            continue
        kind = kinds[len(areas) % len(kinds)]
        size = rng.uniform(2000.0, 8000.0)
        name = f"{kind.value}_{len(areas):02d}"
        polygon = GeoPolygon.rectangle(name, lon, lat, size, size)
        depth = rng.uniform(4.0, 9.0) if kind is AreaKind.SHALLOW else 0.0
        areas.append(Area(name, kind, polygon, depth_meters=depth))
    if len(areas) < num_areas:
        raise RuntimeError(
            f"could only place {len(areas)} of {num_areas} areas; "
            "loosen the separation constraints or enlarge the bbox"
        )
    return WorldModel(bbox=bbox, ports=ports, areas=areas)


def _near(lon1: float, lat1: float, lon2: float, lat2: float, tol: float) -> bool:
    return abs(lon1 - lon2) < tol and abs(lat1 - lat2) < tol
