"""Synthetic AIS world and fleet: the dataset substitution.

The paper evaluates against a proprietary 23 GB AIS dataset (6,425 vessels in
the Aegean over three months).  That dataset is not redistributable, so this
package generates the closest synthetic equivalent: an Aegean-like world of
ports and regulated areas, a fleet of vessels with realistic behaviour
programs (ferries, cargo ships, tankers, fishing boats, loiterers), variable
report rates matched to vessel activity (~2 min mean, as in the paper), GPS
noise, positional outliers, and deliberate transponder-silence windows.

The generated stream exercises exactly the code paths the real data would:
straight predictable sailing punctuated by turns, stops, gaps and slow
motion — the features the mobility tracker compresses and RTEC reasons over.
"""

from repro.simulator.fleet import FleetSimulator, SimulatedVessel, replicate_positions
from repro.simulator.motion import Leg, MotionPlan, PlanBuilder
from repro.simulator.noise import NoiseModel
from repro.simulator.vessel import VesselSpec, VesselType
from repro.simulator.world import Area, AreaKind, Port, WorldModel, build_aegean_world

__all__ = [
    "Area",
    "AreaKind",
    "FleetSimulator",
    "Leg",
    "MotionPlan",
    "NoiseModel",
    "PlanBuilder",
    "Port",
    "SimulatedVessel",
    "VesselSpec",
    "VesselType",
    "WorldModel",
    "build_aegean_world",
    "replicate_positions",
]
