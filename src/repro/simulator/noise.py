"""Measurement noise: GPS jitter and positional outliers.

The paper stresses that AIS data "is not noise-free; AIS messages may be
delayed, intermittent, or conflicting" and that the tracker must tolerate
"the noise inherent in vessel positions due to sea drift, delayed arrival of
messages, or discrepancies in GPS signals" (Sections 1, 6).  This module
perturbs ground-truth samples accordingly: Gaussian jitter on every fix plus
rare large displacements (the off-course outliers of Figure 2(d)).
Transmission delays live in :class:`repro.ais.stream.DelayModel`; deliberate
transponder silence lives on the vessel behaviour.
"""

import random
from dataclasses import dataclass

from repro.geo.haversine import destination_point


@dataclass(frozen=True)
class NoiseModel:
    """Parameters of the measurement noise applied to ground truth."""

    #: Standard deviation of per-fix GPS jitter, meters.
    gps_sigma_meters: float = 8.0
    #: Probability that a fix is replaced by a far-off outlier.
    outlier_probability: float = 0.002
    #: Displacement range of an outlier fix, meters.
    outlier_min_meters: float = 500.0
    outlier_max_meters: float = 3000.0

    def perturb(
        self, rng: random.Random, lon: float, lat: float
    ) -> tuple[float, float, bool]:
        """Noisy version of a fix; the flag marks injected outliers."""
        if self.outlier_probability > 0 and rng.random() < self.outlier_probability:
            distance = rng.uniform(self.outlier_min_meters, self.outlier_max_meters)
            noisy = destination_point(lon, lat, rng.uniform(0.0, 360.0), distance)
            return noisy[0], noisy[1], True
        if self.gps_sigma_meters > 0:
            distance = abs(rng.gauss(0.0, self.gps_sigma_meters))
            noisy = destination_point(lon, lat, rng.uniform(0.0, 360.0), distance)
            return noisy[0], noisy[1], False
        return lon, lat, False


#: Noise-free model for experiments isolating algorithmic behaviour.
NO_NOISE = NoiseModel(gps_sigma_meters=0.0, outlier_probability=0.0)
