"""Vessel specifications and behaviour programs.

Each simulated vessel has a static :class:`VesselSpec` (the kind of data the
paper correlates as "static vessel information": type, draft, fishing
designation) and a behaviour program that compiles to a
:class:`~repro.simulator.motion.MotionPlan`.

Behaviour mix mirrors the traffic the paper describes: "a considerable part
(chiefly cargo ships) were just passing by... most vessels were frequently
sailing, e.g., passenger ships or ferries to the islands" (Section 5) — plus
the deviant behaviours the CE definitions target.
"""

import enum
import random
from dataclasses import dataclass

from repro.geo.haversine import (
    destination_point,
    haversine_meters,
    initial_bearing_degrees,
)
from repro.simulator.motion import MotionPlan, PlanBuilder
from repro.simulator.world import Area, AreaKind, Port, WorldModel


class VesselType(enum.Enum):
    """Fleet composition categories."""

    FERRY = "ferry"
    CARGO = "cargo"
    TANKER = "tanker"
    FISHING = "fishing"


@dataclass(frozen=True)
class VesselSpec:
    """Static vessel record: the per-vessel facts RTEC reasons over."""

    mmsi: int
    vessel_type: VesselType
    draft_meters: float
    is_fishing: bool

    @property
    def name(self) -> str:
        """Human-readable label."""
        return f"{self.vessel_type.value}_{self.mmsi}"


@dataclass(frozen=True)
class Behaviour:
    """A compiled vessel behaviour: plan plus transponder silence windows."""

    spec: VesselSpec
    plan: MotionPlan
    silence_windows: tuple[tuple[int, int], ...] = ()


def make_ferry(
    mmsi: int,
    world: WorldModel,
    rng: random.Random,
    start_time: int,
    duration: int,
) -> Behaviour:
    """A ferry shuttling between two ports with dogleg waypoints.

    Produces the bulk of turn / speed-change / docking-stop events.
    """
    spec = VesselSpec(mmsi, VesselType.FERRY, rng.uniform(4.0, 6.5), False)
    origin, destination = rng.sample(world.ports, 2)
    builder = PlanBuilder(start_time, origin.lon, origin.lat)
    here, there = origin, destination
    while builder.time < start_time + duration:
        builder.hold(rng.randint(1200, 2700))
        _sail_between_ports(builder, here, there, rng, speed=rng.uniform(14.0, 18.0))
        here, there = there, here
    return Behaviour(spec, builder.build())


def make_cargo(
    mmsi: int,
    world: WorldModel,
    rng: random.Random,
    start_time: int,
    duration: int,
) -> Behaviour:
    """A cargo ship crossing the region on an almost straight path."""
    spec = VesselSpec(mmsi, VesselType.CARGO, rng.uniform(7.0, 12.0), False)
    entry, exit_point = _crossing_endpoints(world, rng)
    builder = PlanBuilder(start_time, *entry)
    speed = rng.uniform(10.0, 14.0)
    # A couple of mild doglegs, as real shipping lanes are not perfect lines.
    waypoints = _doglegs(entry, exit_point, rng, count=rng.randint(1, 2))
    for lon, lat in waypoints:
        builder.sail_to(lon, lat, speed)
    builder.sail_to(exit_point[0], exit_point[1], speed)
    if builder.time < start_time + duration:
        builder.hold(start_time + duration - builder.time)
    return Behaviour(spec, builder.build())


def make_deviant_tanker(
    mmsi: int,
    world: WorldModel,
    rng: random.Random,
    start_time: int,
    duration: int,
    protected: Area | None = None,
) -> Behaviour:
    """A tanker cutting through a protected area with its transponder off.

    This is Scenario 3 of the paper: vessels "switch off their transmitters
    and stop sending position signals" while inside protected areas, so that
    the gap ME fires close to the area and ``illegalShipping`` is recognized.
    """
    spec = VesselSpec(mmsi, VesselType.TANKER, rng.uniform(9.0, 14.0), False)
    if protected is None:
        candidates = world.areas_of_kind(AreaKind.PROTECTED)
        if not candidates:
            raise ValueError("world has no protected areas for a deviant tanker")
        protected = rng.choice(candidates)
    center_lon, center_lat = protected.polygon.centroid
    approach_heading = rng.uniform(0.0, 360.0)
    entry_lon, entry_lat = destination_point(
        center_lon, center_lat, approach_heading, 25_000.0
    )
    exit_lon, exit_lat = destination_point(
        center_lon, center_lat, (approach_heading + 180.0) % 360.0, 25_000.0
    )
    speed = rng.uniform(11.0, 14.0)
    builder = PlanBuilder(start_time, entry_lon, entry_lat)
    builder.sail_to(center_lon, center_lat, speed)
    silence_start = builder.time - rng.randint(300, 600)
    builder.sail_to(exit_lon, exit_lat, speed)
    silence_end = silence_start + rng.randint(1500, 2400)
    if builder.time < start_time + duration:
        builder.hold(start_time + duration - builder.time)
    return Behaviour(
        spec, builder.build(), silence_windows=((silence_start, silence_end),)
    )


def make_fishing(
    mmsi: int,
    world: WorldModel,
    rng: random.Random,
    start_time: int,
    duration: int,
    illegal: bool = False,
    ground: Area | None = None,
) -> Behaviour:
    """A fishing vessel: out of port, loiter at trawling speed, return.

    With ``illegal=True`` the fishing ground is (near) a forbidden-fishing
    area, producing the slow-motion MEs that trigger ``illegalFishing``.
    """
    spec = VesselSpec(mmsi, VesselType.FISHING, rng.uniform(2.5, 4.5), True)
    if ground is None:
        if illegal:
            candidates = world.areas_of_kind(AreaKind.FORBIDDEN_FISHING)
            if not candidates:
                raise ValueError("world has no forbidden fishing areas")
            ground = rng.choice(candidates)
    if ground is not None:
        ground_lon, ground_lat = ground.polygon.centroid
    else:
        ground_lon, ground_lat = _random_open_sea_point(world, rng)
    # Depart from the port nearest the ground, as a real boat would; a
    # random port could put the ground several hours of sailing away.
    port = min(
        world.ports,
        key=lambda p: haversine_meters(p.lon, p.lat, ground_lon, ground_lat),
    )
    builder = PlanBuilder(start_time, port.lon, port.lat)
    while builder.time < start_time + duration:
        builder.hold(rng.randint(600, 1800))
        builder.sail_to(ground_lon, ground_lat, rng.uniform(8.0, 11.0))
        builder.loiter(
            duration_seconds=rng.randint(7200, 14400),
            speed_knots=rng.uniform(2.5, 4.0),
            wander_radius_meters=2500.0,
            rng=rng,
        )
        builder.sail_to(port.lon, port.lat, rng.uniform(8.0, 11.0))
    return Behaviour(spec, builder.build())


def make_loiterer(
    mmsi: int,
    world: WorldModel,
    rng: random.Random,
    start_time: int,
    duration: int,
    rendezvous: tuple[float, float],
    arrive_by: int,
    stay_seconds: int,
) -> Behaviour:
    """A vessel that stops at a rendezvous point with others (Scenario 1).

    Several of these stopped close to the same area make it ``suspicious``.
    """
    spec = VesselSpec(mmsi, VesselType.CARGO, rng.uniform(5.0, 9.0), False)
    heading = rng.uniform(0.0, 360.0)
    start_lon, start_lat = destination_point(
        rendezvous[0], rendezvous[1], heading, rng.uniform(15_000.0, 30_000.0)
    )
    builder = PlanBuilder(start_time, start_lon, start_lat)
    speed = rng.uniform(10.0, 14.0)
    travel_start = max(
        start_time, arrive_by - _travel_seconds(start_lon, start_lat, rendezvous, speed)
    )
    if travel_start > start_time:
        builder.hold(travel_start - start_time)
    # Stop a small random offset from the rendezvous, not exactly on it.
    offset_lon, offset_lat = destination_point(
        rendezvous[0], rendezvous[1], rng.uniform(0, 360), rng.uniform(50.0, 400.0)
    )
    builder.sail_to(offset_lon, offset_lat, speed)
    builder.hold(stay_seconds)
    away_lon, away_lat = destination_point(
        offset_lon, offset_lat, rng.uniform(0.0, 360.0), 20_000.0
    )
    builder.sail_to(away_lon, away_lat, speed)
    if builder.time < start_time + duration:
        builder.hold(start_time + duration - builder.time)
    return Behaviour(spec, builder.build())


def make_rendezvous_pair(
    mmsi1: int,
    mmsi2: int,
    world: WorldModel,
    rng: random.Random,
    start_time: int,
    duration: int,
    meeting: tuple[float, float] | None = None,
    silence_second: bool = True,
) -> tuple[Behaviour, Behaviour]:
    """Two vessels converging offshore, loitering within range, separating.

    The ground-truth fixture for the pairwise CEs: both vessels arrive at
    an offshore meeting point from opposite bearings, loiter side by side
    at trawling speed (slow enough for ``rendezvous``, active enough to
    keep movement events flowing), then part ways at cruise speed.  With
    ``silence_second`` the second vessel additionally goes dark mid-stay —
    a communication gap starting and ending offshore, the ``darkShip``
    pattern.
    """
    if meeting is None:
        meeting = _offshore_meeting_point(world, rng)
    arrive_by = start_time + max(1800, duration // 4)
    stay_seconds = max(3600, duration // 3)
    behaviours = []
    base_heading = rng.uniform(0.0, 360.0)
    for index, mmsi in enumerate((mmsi1, mmsi2)):
        vessel_type = VesselType.CARGO if index == 0 else VesselType.TANKER
        spec = VesselSpec(mmsi, vessel_type, rng.uniform(5.0, 9.0), False)
        # Opposite-ish approach bearings so the pair genuinely converges.
        heading = (base_heading + index * rng.uniform(140.0, 220.0)) % 360.0
        start_lon, start_lat = destination_point(
            meeting[0], meeting[1], heading, rng.uniform(15_000.0, 25_000.0)
        )
        builder = PlanBuilder(start_time, start_lon, start_lat)
        speed = rng.uniform(10.0, 14.0)
        travel_start = max(
            start_time,
            arrive_by - _travel_seconds(start_lon, start_lat, meeting, speed),
        )
        if travel_start > start_time:
            builder.hold(travel_start - start_time)
        # Side-by-side offsets, well within the proximity radius.
        offset_lon, offset_lat = destination_point(
            meeting[0], meeting[1],
            rng.uniform(0.0, 360.0), rng.uniform(80.0, 250.0),
        )
        builder.sail_to(offset_lon, offset_lat, speed)
        loiter_start = builder.time
        builder.loiter(
            duration_seconds=stay_seconds,
            speed_knots=rng.uniform(2.5, 3.5),
            wander_radius_meters=400.0,
            rng=rng,
        )
        away_lon, away_lat = destination_point(
            offset_lon, offset_lat, heading, 25_000.0
        )
        builder.sail_to(away_lon, away_lat, speed)
        if builder.time < start_time + duration:
            builder.hold(start_time + duration - builder.time)
        silence_windows: tuple[tuple[int, int], ...] = ()
        if silence_second and index == 1:
            # Go dark in the middle of the stay: the gap starts and ends
            # at the offshore meeting point.
            silence_start = loiter_start + stay_seconds // 4
            silence_windows = (
                (silence_start, silence_start + rng.randint(1200, 1800)),
            )
        behaviours.append(
            Behaviour(spec, builder.build(), silence_windows)
        )
    return behaviours[0], behaviours[1]


def _offshore_meeting_point(
    world: WorldModel, rng: random.Random, port_clearance_meters: float = 13_000.0
) -> tuple[float, float]:
    """An open-sea point far enough from every port to count as offshore.

    Like :func:`_random_open_sea_point` but with a much larger port
    clearance, so the pairwise monitor's offshore test (default 10 km
    from any port) holds at the meeting point.
    """
    bbox = world.bbox
    for _ in range(200):
        lon = rng.uniform(bbox.min_lon + 0.3, bbox.max_lon - 0.3)
        lat = rng.uniform(bbox.min_lat + 0.3, bbox.max_lat - 0.3)
        clear = all(
            not area.polygon.is_close(lon, lat, 5000.0) for area in world.areas
        ) and all(
            haversine_meters(port.lon, port.lat, lon, lat)
            > port_clearance_meters
            for port in world.ports
        )
        if clear:
            return lon, lat
    raise ValueError("no offshore meeting point clear of ports and areas")


def make_shallow_runner(
    mmsi: int,
    world: WorldModel,
    rng: random.Random,
    start_time: int,
    duration: int,
    shallow: Area | None = None,
) -> Behaviour:
    """A deep-draft vessel creeping through shallow waters (Scenario 4).

    Sails slowly (below the slow-motion threshold) across a shallow area so
    the ``slowMotion`` ME fires there and ``dangerousShipping`` is
    recognized for a vessel whose draft exceeds the area depth.
    """
    if shallow is None:
        candidates = world.areas_of_kind(AreaKind.SHALLOW)
        if not candidates:
            raise ValueError("world has no shallow areas")
        shallow = rng.choice(candidates)
    # Draft deliberately deeper than the area: 'too shallow' for this vessel.
    spec = VesselSpec(
        mmsi, VesselType.TANKER, shallow.depth_meters + rng.uniform(1.0, 4.0), False
    )
    center_lon, center_lat = shallow.polygon.centroid
    heading = rng.uniform(0.0, 360.0)
    entry = destination_point(center_lon, center_lat, heading, 15_000.0)
    exit_point = destination_point(
        center_lon, center_lat, (heading + 180.0) % 360.0, 15_000.0
    )
    builder = PlanBuilder(start_time, entry[0], entry[1])
    builder.sail_to(center_lon, center_lat, rng.uniform(9.0, 12.0))
    # Creep across the shallows well below the slow-motion threshold.
    builder.sail_to(exit_point[0], exit_point[1], rng.uniform(2.5, 3.5))
    if builder.time < start_time + duration:
        builder.hold(start_time + duration - builder.time)
    return Behaviour(spec, builder.build())


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _sail_between_ports(
    builder: PlanBuilder,
    origin: Port,
    destination: Port,
    rng: random.Random,
    speed: float,
) -> None:
    """Port-to-port leg with slight doglegs and a slow approach phase."""
    for lon, lat in _doglegs(
        (origin.lon, origin.lat),
        (destination.lon, destination.lat),
        rng,
        count=rng.randint(1, 3),
    ):
        builder.sail_to(lon, lat, speed)
    # Decelerated approach into the port: triggers speed-change events.
    approach_lon, approach_lat = destination_point(
        destination.lon,
        destination.lat,
        initial_bearing_degrees(
            destination.lon, destination.lat, builder.lon, builder.lat
        ),
        2500.0,
    )
    builder.sail_to(approach_lon, approach_lat, speed)
    builder.sail_to(destination.lon, destination.lat, max(3.0, speed * 0.3))


def _doglegs(
    start: tuple[float, float],
    end: tuple[float, float],
    rng: random.Random,
    count: int,
) -> list[tuple[float, float]]:
    """Intermediate waypoints slightly off the straight line."""
    waypoints = []
    for i in range(1, count + 1):
        fraction = i / (count + 1)
        base_lon = start[0] + fraction * (end[0] - start[0])
        base_lat = start[1] + fraction * (end[1] - start[1])
        waypoints.append(
            destination_point(
                base_lon,
                base_lat,
                rng.uniform(0.0, 360.0),
                rng.uniform(1000.0, 5000.0),
            )
        )
    return waypoints


def _crossing_endpoints(
    world: WorldModel, rng: random.Random
) -> tuple[tuple[float, float], tuple[float, float]]:
    """Entry/exit points on opposite sides of the world bbox."""
    bbox = world.bbox
    if rng.random() < 0.5:
        entry = (bbox.min_lon, rng.uniform(bbox.min_lat + 0.3, bbox.max_lat - 0.3))
        exit_point = (bbox.max_lon, rng.uniform(bbox.min_lat + 0.3, bbox.max_lat - 0.3))
    else:
        entry = (rng.uniform(bbox.min_lon + 0.3, bbox.max_lon - 0.3), bbox.min_lat)
        exit_point = (rng.uniform(bbox.min_lon + 0.3, bbox.max_lon - 0.3), bbox.max_lat)
    if rng.random() < 0.5:
        entry, exit_point = exit_point, entry
    return entry, exit_point


def _random_open_sea_point(
    world: WorldModel, rng: random.Random
) -> tuple[float, float]:
    """A point away from every regulated area and port."""
    bbox = world.bbox
    for _ in range(100):
        lon = rng.uniform(bbox.min_lon + 0.3, bbox.max_lon - 0.3)
        lat = rng.uniform(bbox.min_lat + 0.3, bbox.max_lat - 0.3)
        clear = all(
            not area.polygon.is_close(lon, lat, 5000.0) for area in world.areas
        ) and all(
            not port.polygon.is_close(lon, lat, 5000.0) for port in world.ports
        )
        if clear:
            return lon, lat
    return (bbox.min_lon + bbox.max_lon) / 2.0, (bbox.min_lat + bbox.max_lat) / 2.0


def _travel_seconds(
    lon: float, lat: float, target: tuple[float, float], speed_knots: float
) -> int:
    from repro.geo.haversine import haversine_meters
    from repro.geo.units import knots_to_mps

    distance = haversine_meters(lon, lat, target[0], target[1])
    return round(distance / knots_to_mps(speed_knots))
