"""Continuous-time motion plans for simulated vessels.

A vessel's ground truth is a :class:`MotionPlan`: a sequence of legs, each
either a constant-velocity move between two points or a hold at a fixed
location.  Positions at arbitrary timestamps are obtained by linear
interpolation inside the active leg — the same motion model the tracker
assumes (Section 3, footnote 2), so approximation-error measurements compare
like with like.
"""

import random
from bisect import bisect_right
from dataclasses import dataclass

from repro.geo.haversine import (
    destination_point,
    haversine_meters,
    initial_bearing_degrees,
)
from repro.geo.units import knots_to_mps


@dataclass(frozen=True)
class Leg:
    """One piece of a motion plan: a move or a hold over a time interval."""

    start_time: int
    end_time: int
    start_lon: float
    start_lat: float
    end_lon: float
    end_lat: float

    @property
    def duration(self) -> int:
        """Leg duration in seconds."""
        return self.end_time - self.start_time

    @property
    def is_hold(self) -> bool:
        """Whether the leg keeps the vessel at one location."""
        return self.start_lon == self.end_lon and self.start_lat == self.end_lat

    def position_at(self, timestamp: int) -> tuple[float, float]:
        """Interpolated position inside (or clamped to) the leg."""
        if timestamp <= self.start_time or self.duration == 0:
            return self.start_lon, self.start_lat
        if timestamp >= self.end_time:
            return self.end_lon, self.end_lat
        fraction = (timestamp - self.start_time) / self.duration
        return (
            self.start_lon + fraction * (self.end_lon - self.start_lon),
            self.start_lat + fraction * (self.end_lat - self.start_lat),
        )


class MotionPlan:
    """An ordered, gap-free sequence of legs."""

    def __init__(self, legs: list[Leg]):
        if not legs:
            raise ValueError("a motion plan needs at least one leg")
        for before, after in zip(legs, legs[1:]):
            if after.start_time != before.end_time:
                raise ValueError(
                    "legs must be contiguous: "
                    f"{before.end_time} followed by {after.start_time}"
                )
        self.legs = legs
        self._starts = [leg.start_time for leg in legs]

    @property
    def start_time(self) -> int:
        """First instant covered by the plan."""
        return self.legs[0].start_time

    @property
    def end_time(self) -> int:
        """Last instant covered by the plan."""
        return self.legs[-1].end_time

    def position_at(self, timestamp: int) -> tuple[float, float]:
        """Ground-truth position at a timestamp (clamped to the plan span)."""
        index = bisect_right(self._starts, timestamp) - 1
        index = max(0, index)
        return self.legs[index].position_at(timestamp)

    def leg_at(self, timestamp: int) -> Leg:
        """The leg active at a timestamp."""
        index = max(0, bisect_right(self._starts, timestamp) - 1)
        return self.legs[index]

    def speed_at(self, timestamp: int) -> float:
        """Ground-truth speed (m/s) at a timestamp."""
        leg = self.leg_at(timestamp)
        if leg.duration == 0 or leg.is_hold:
            return 0.0
        distance = haversine_meters(
            leg.start_lon, leg.start_lat, leg.end_lon, leg.end_lat
        )
        return distance / leg.duration


class PlanBuilder:
    """Incremental construction of a motion plan from a moving cursor."""

    def __init__(self, start_time: int, lon: float, lat: float):
        self.time = start_time
        self.lon = lon
        self.lat = lat
        self._legs: list[Leg] = []

    def hold(self, duration_seconds: int) -> "PlanBuilder":
        """Stay in place for a duration (docking, anchorage, loiter stop)."""
        if duration_seconds <= 0:
            raise ValueError("hold duration must be positive")
        self._legs.append(
            Leg(
                self.time,
                self.time + duration_seconds,
                self.lon,
                self.lat,
                self.lon,
                self.lat,
            )
        )
        self.time += duration_seconds
        return self

    def sail_to(self, lon: float, lat: float, speed_knots: float) -> "PlanBuilder":
        """Straight constant-speed leg to a destination point."""
        if speed_knots <= 0:
            raise ValueError("sailing speed must be positive")
        distance = haversine_meters(self.lon, self.lat, lon, lat)
        duration = max(1, round(distance / knots_to_mps(speed_knots)))
        self._legs.append(Leg(self.time, self.time + duration, self.lon, self.lat, lon, lat))
        self.time += duration
        self.lon = lon
        self.lat = lat
        return self

    def sail_heading(
        self, heading_degrees: float, distance_meters: float, speed_knots: float
    ) -> "PlanBuilder":
        """Straight leg along a heading for a given distance."""
        lon, lat = destination_point(self.lon, self.lat, heading_degrees, distance_meters)
        return self.sail_to(lon, lat, speed_knots)

    def loiter(
        self,
        duration_seconds: int,
        speed_knots: float,
        wander_radius_meters: float,
        rng: random.Random,
    ) -> "PlanBuilder":
        """Meander around the current point at low speed (fishing pattern).

        Produces short legs with random heading changes, bounded to stay
        within the wander radius of the entry point.
        """
        center_lon, center_lat = self.lon, self.lat
        deadline = self.time + duration_seconds
        heading = rng.uniform(0.0, 360.0)
        while self.time < deadline:
            leg_seconds = min(rng.randint(120, 360), deadline - self.time)
            if leg_seconds <= 0:
                break
            distance = knots_to_mps(speed_knots) * leg_seconds
            # Steer back toward the center when drifting out of the ground.
            offset = haversine_meters(center_lon, center_lat, self.lon, self.lat)
            if offset > wander_radius_meters:
                heading = initial_bearing_degrees(
                    self.lon, self.lat, center_lon, center_lat
                )
            else:
                heading = (heading + rng.uniform(-40.0, 40.0)) % 360.0
            self.sail_heading(heading, distance, speed_knots)
            # sail_heading recomputed duration from distance; keep time exact.
        return self

    def build(self) -> MotionPlan:
        """Finish and return the plan."""
        return MotionPlan(list(self._legs))
