"""Trajectory approximation error: the RMSE of Figure 8.

"Suppose that an original AIS point p_i did not qualify as critical and was
discarded at timestamp tau_i.  To estimate the resulting deviation ... we
interpolated between the pair of adjacent critical points retained
immediately before and after each such p_i.  Assuming a constant velocity
between these two critical points, we obtained its time-aligned point trace
p'_i along the approximate path at timestamp tau_i." — Section 5.1.

One RMSE value is computed per vessel trajectory over its entire motion
history; the benchmark reports the average and maximum across vessels.
"""

from dataclasses import dataclass

import numpy as np

from repro.ais.stream import PositionalTuple
from repro.geo.haversine import haversine_meters
from repro.geo.interpolate import synchronize_track
from repro.tracking.types import CriticalPoint


@dataclass(frozen=True)
class ApproximationError:
    """Per-fleet RMSE summary: one value per vessel, aggregated."""

    per_vessel_rmse: dict[int, float]

    @property
    def average(self) -> float:
        """Mean RMSE across vessels (the 'avg' series of Figure 8)."""
        if not self.per_vessel_rmse:
            return 0.0
        return float(np.mean(list(self.per_vessel_rmse.values())))

    @property
    def maximum(self) -> float:
        """Worst vessel RMSE (the 'max' series of Figure 8)."""
        if not self.per_vessel_rmse:
            return 0.0
        return float(np.max(list(self.per_vessel_rmse.values())))


def trajectory_rmse(
    original: list[PositionalTuple], critical: list[CriticalPoint]
) -> float:
    """RMSE between one vessel's original trace and its synopsis, meters.

    The synopsis is resampled ("synchronized") at every original timestamp
    by constant-velocity interpolation between adjacent critical points;
    timestamps outside the synopsis span clamp to its endpoints.  Returns
    the root of the mean squared Haversine deviation.
    """
    if not original:
        raise ValueError("original trajectory is empty")
    if not critical:
        raise ValueError("no critical points to reconstruct from")
    ordered = sorted(original, key=lambda p: p.timestamp)
    compressed = [
        point.as_timed_point()
        for point in sorted(critical, key=lambda p: p.timestamp)
    ]
    # Critical points may coincide in time (merged annotations are unique
    # per timestamp, but aggregated stop centroids can collide with the
    # previous point); keep the last per timestamp.
    deduplicated: list[tuple[float, float, int]] = []
    for point in compressed:
        if deduplicated and deduplicated[-1][2] == point[2]:
            deduplicated[-1] = point
        else:
            deduplicated.append(point)
    timestamps = [p.timestamp for p in ordered]
    synchronized = synchronize_track(timestamps, deduplicated)
    squared = [
        haversine_meters(p.lon, p.lat, lon, lat) ** 2
        for p, (lon, lat) in zip(ordered, synchronized)
    ]
    return float(np.sqrt(np.mean(squared)))


def fleet_rmse(
    originals: dict[int, list[PositionalTuple]],
    synopses: dict[int, list[CriticalPoint]],
) -> ApproximationError:
    """Per-vessel RMSE over a fleet.

    Vessels without any critical point are skipped (nothing to reconstruct
    from: typically vessels with a single report).
    """
    per_vessel: dict[int, float] = {}
    for mmsi, original in originals.items():
        critical = synopses.get(mmsi)
        if not critical or not original:
            continue
        per_vessel[mmsi] = trajectory_rmse(original, critical)
    return ApproximationError(per_vessel)
