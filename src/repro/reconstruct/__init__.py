"""Trajectory reconstruction and approximation quality (Sections 3.2-3.3).

Critical points expiring from the sliding window accumulate in a staging
area; an offline pass reconstructs each vessel's course from them, splits it
at port stops into origin-destination *trips* (semantic enrichment), and
measures how faithfully the compressed synopsis approximates the original
trace (the RMSE of Figure 8).
"""

from repro.reconstruct.error import ApproximationError, fleet_rmse, trajectory_rmse
from repro.reconstruct.staging import StagingArea
from repro.reconstruct.trips import Trip, TripSegmenter

__all__ = [
    "ApproximationError",
    "StagingArea",
    "Trip",
    "TripSegmenter",
    "fleet_rmse",
    "trajectory_rmse",
]
