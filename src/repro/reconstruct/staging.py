"""The staging area for "delta" critical points (Section 3.2).

"Once the window slides forward, expiring critical points are transferred in
an intermediate staging table on disk.  So, this table temporarily records
all recent 'delta' changes, i.e., critical points evicted from the window,
but not yet admitted in disk-based trajectories."

The in-memory representation here mirrors that staging table; the MOD layer
(:mod:`repro.mod`) persists and drains it into trips.  Information in the
database deliberately lags the live window by omega, avoiding duplication
between memory and disk.
"""

from collections import defaultdict

from repro import obs
from repro.tracking.types import CriticalPoint


class StagingArea:
    """Accumulates expired critical points per vessel until drained."""

    def __init__(self) -> None:
        self._pending: dict[int, list[CriticalPoint]] = defaultdict(list)
        self.total_staged = 0
        self.total_drained = 0

    def stage(self, points: list[CriticalPoint]) -> int:
        """Add a batch of expired points; returns the batch size."""
        for point in points:
            self._pending[point.mmsi].append(point)
        self.total_staged += len(points)
        obs.count("reconstruct.staged_points", len(points))
        return len(points)

    def pending_count(self) -> int:
        """Points currently awaiting reconstruction."""
        return sum(len(points) for points in self._pending.values())

    def vessels(self) -> list[int]:
        """Vessels with pending points."""
        return list(self._pending)

    def peek(self, mmsi: int) -> list[CriticalPoint]:
        """Pending points of one vessel, in timestamp order, not removed."""
        return sorted(self._pending.get(mmsi, ()), key=lambda p: p.timestamp)

    def drain(self, mmsi: int | None = None) -> dict[int, list[CriticalPoint]]:
        """Remove and return pending points (one vessel or all).

        Returned per-vessel lists are timestamp-ordered.
        """
        if mmsi is not None:
            keys = [mmsi] if mmsi in self._pending else []
        else:
            keys = list(self._pending)
        drained: dict[int, list[CriticalPoint]] = {}
        drained_total = 0
        for key in keys:
            points = sorted(self._pending.pop(key), key=lambda p: p.timestamp)
            drained[key] = points
            drained_total += len(points)
        self.total_drained += drained_total
        obs.count("reconstruct.drained_points", drained_total)
        return drained
