"""Trip segmentation and semantic enrichment (Section 3.2).

Voyage information in AIS messages "is often missing or error-prone, mainly
because it is updated manually by the crew", so the paper derives trips
automatically: a long-term stop located inside a known port polygon is
labeled with the port's name, and the critical points between two such
distinct stops O and D form a trip from origin port O to destination D.
The origin may be unknown when a vessel was already sailing when tracking
began; points of a vessel that has not yet reached a port pile up as an
open-ended tail awaiting assignment.
"""

from dataclasses import dataclass, field

from repro.geo.haversine import haversine_meters
from repro.simulator.world import Port
from repro.tracking.types import CriticalPoint, MovementEventType


@dataclass
class Trip:
    """One port-to-port (or open-origin) voyage of a vessel."""

    mmsi: int
    origin_port: str | None
    destination_port: str
    points: list[CriticalPoint] = field(default_factory=list)

    @property
    def start_time(self) -> int:
        """Departure timestamp (first covered critical point)."""
        return self.points[0].timestamp

    @property
    def end_time(self) -> int:
        """Arrival timestamp (last covered critical point)."""
        return self.points[-1].timestamp

    @property
    def travel_time_seconds(self) -> int:
        """Trip duration."""
        return self.end_time - self.start_time

    @property
    def distance_meters(self) -> float:
        """Length of the reconstructed polyline."""
        total = 0.0
        for before, after in zip(self.points, self.points[1:]):
            total += haversine_meters(before.lon, before.lat, after.lon, after.lat)
        return total

    @property
    def point_count(self) -> int:
        """Critical points covering the trip."""
        return len(self.points)


class TripSegmenter:
    """Split per-vessel critical-point sequences into trips at port stops.

    ``min_trip_distance_meters`` guards against spurious micro-trips: a
    vessel docked at a port emits repeated stop events as it drifts at the
    pier, and those must not each count as a voyage.  A segment ending at
    the *same* port it started from (or with unknown origin) only becomes a
    trip when its polyline is at least this long; segments between two
    *distinct* ports always do ("between two such distinct stops O and D,
    the ship sailed from origin port O and reached destination port D").
    """

    def __init__(self, ports: list[Port], min_trip_distance_meters: float = 5000.0):
        self.ports = ports
        self.min_trip_distance_meters = min_trip_distance_meters

    def port_of_stop(self, point: CriticalPoint) -> str | None:
        """Name of the port containing a stop's location, if any."""
        for port in self.ports:
            if port.polygon.contains(point.lon, point.lat):
                return port.name
        return None

    def segment(
        self, points: list[CriticalPoint]
    ) -> tuple[list[Trip], list[CriticalPoint]]:
        """Segment one vessel's ordered critical points into trips.

        Returns ``(trips, residue)`` where ``residue`` is the open-ended
        tail after the last identified port stop (the vessel is still
        sailing toward an unknown destination — about 25 % of critical
        points in the paper's Table 4 fell in that category).
        """
        if not points:
            return [], []
        ordered = sorted(points, key=lambda p: p.timestamp)
        mmsi = ordered[0].mmsi
        trips: list[Trip] = []
        current: list[CriticalPoint] = []
        origin: str | None = None
        for point in ordered:
            current.append(point)
            is_stop = point.has(MovementEventType.STOP_END)
            if not is_stop:
                continue
            port_name = self.port_of_stop(point)
            if port_name is None:
                continue
            candidate = Trip(
                mmsi=mmsi,
                origin_port=origin,
                destination_port=port_name,
                points=current,
            )
            distinct_ports = origin is not None and origin != port_name
            if distinct_ports or (
                candidate.distance_meters >= self.min_trip_distance_meters
            ):
                trips.append(candidate)
            # Whether a voyage or just pier drift, the vessel is now at this
            # port: restart accumulation from the stop.
            origin = port_name
            current = [point]
        # The residue is the open-ended tail after the last port call.  The
        # anchor stop itself doubles as the departure point of the next
        # (open) trip, so it stays in the residue — unless nothing followed.
        residue = current
        if trips and len(residue) == 1 and residue[0] is trips[-1].points[-1]:
            residue = []
        return trips, residue
