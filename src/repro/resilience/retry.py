"""Deterministic retry with exponential backoff and a bounded budget.

Randomized jitter is the usual advice for backoff, but this tree's whole
testing story is determinism — the same seed, the same fault plan, the
same transcript.  Backoff here is therefore a pure function of the
attempt number: ``initial * multiplier**(attempt-1)`` capped at
``max_seconds``.  The thundering-herd argument for jitter does not apply
to a single supervisor retrying its own sqlite handle.

The budget is attempts, not wall-clock: a caller can compute the exact
worst-case stall from the policy (``sum(policy.delays())``) and size its
watchdog accordingly.
"""

import time
from dataclasses import dataclass

from repro import obs


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff schedule: deterministic and budget-capped."""

    initial_seconds: float = 0.05
    multiplier: float = 2.0
    max_seconds: float = 2.0
    #: Total tries, including the first (1 = no retries).
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if self.initial_seconds < 0:
            raise ValueError(
                f"initial_seconds must be >= 0: {self.initial_seconds}"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1: {self.multiplier}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")

    def delay_for(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based: the delay
        between the ``attempt``-th failure and the next try)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        raw = self.initial_seconds * self.multiplier ** (attempt - 1)
        return min(raw, self.max_seconds)

    def delays(self) -> list:
        """Every inter-attempt delay the policy will ever sleep — its
        worst-case total stall is ``sum(policy.delays())``."""
        return [self.delay_for(n) for n in range(1, self.max_attempts)]


def retry_call(
    func,
    policy: BackoffPolicy,
    site: str = "call",
    retry_on: tuple = (Exception,),
    sleep=time.sleep,
):
    """Call ``func`` under ``policy``, retrying on ``retry_on``.

    Counts attempts/retries/exhaustion per site in the obs registry.
    Re-raises the final exception once the attempt budget is spent —
    degradation decisions (spill, breaker) belong to the caller.
    ``sleep`` is injectable so tests run at full speed.
    """
    last_exc = None
    for attempt in range(1, policy.max_attempts + 1):
        obs.count(f"resilience.retry.{site}.attempts")
        try:
            return func()
        except retry_on as exc:
            last_exc = exc
            if attempt == policy.max_attempts:
                break
            obs.count(f"resilience.retry.{site}.retries")
            sleep(policy.delay_for(attempt))
    obs.count(f"resilience.retry.{site}.exhausted")
    raise last_exc
