"""Durability and chaos engineering for the surveillance pipeline.

The paper's Mobility Tracker is a main-memory stream processor: a crash
loses every in-flight position report.  The follow-up system papers
(Patroumpas et al., Pitsikalis et al.) stress 24/7 operation over real
AIS feeds that are noisy, delayed and interrupted.  This package is the
durability and chaos layer that makes the live service (docs/SERVICE.md)
survive that reality — and *prove* it under injected failure:

* :mod:`repro.resilience.wal` — a crash-safe, segmented write-ahead
  ingest journal with per-record CRCs, configurable fsync policy and
  truncated-tail-tolerant recovery;
* :mod:`repro.resilience.faults` — deterministic, seeded, replayable
  fault injection at named sites (socket drop, MOD write failure,
  shard-worker kill, slow slide, corrupt WAL segment);
* :mod:`repro.resilience.retry` — deterministic exponential backoff with
  a bounded attempt budget;
* :mod:`repro.resilience.breaker` — a circuit breaker protecting the MOD
  sqlite write path;
* :mod:`repro.resilience.guard` — graceful degradation: when the MOD is
  down, critical points spill to a WAL-backed queue and recognition
  keeps running; the backlog drains on recovery;
* :mod:`repro.resilience.watchdog` — stalled-slide detection with
  backoff-limited supervised restart.

Guarantees, fault sites and trade-offs: docs/RESILIENCE.md.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import (
    SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    SimulatedCrash,
    fault_point,
    get_injector,
    inject,
    install,
    seedable_sites,
    uninstall,
)
from repro.resilience.guard import GuardedDatabase, SpillQueue
from repro.resilience.retry import BackoffPolicy, retry_call
from repro.resilience.wal import (
    IngestJournal,
    RecoveryStats,
    WalRecord,
    WriteAheadLog,
    read_wal,
)
from repro.resilience.watchdog import SlideWatchdog

__all__ = [
    "SITES",
    "BackoffPolicy",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "GuardedDatabase",
    "IngestJournal",
    "InjectedFault",
    "RecoveryStats",
    "SimulatedCrash",
    "SlideWatchdog",
    "SpillQueue",
    "WalRecord",
    "WriteAheadLog",
    "fault_point",
    "get_injector",
    "inject",
    "install",
    "read_wal",
    "retry_call",
    "seedable_sites",
    "uninstall",
]
