"""Deterministic fault injection at named sites.

Chaos testing is only worth anything when a failing run can be replayed
exactly: a :class:`FaultPlan` is an explicit, serializable list of
"fire fault *kind* at the *n*-th hit of *site*" rules, either written by
hand, parsed from a compact spec string (the ``--chaos`` CLI flag), or
generated deterministically from a seed.  The production code marks its
failure-prone spots with :func:`fault_point`, which is a single global
``None`` check when no injector is installed — the hooks cost nothing in
normal operation.

Named sites wired through the tree (see docs/RESILIENCE.md):

=========================  ====================================================
``gateway.link``           one sentence queued on a gateway→runtime link
                           (kinds: ``drop`` — the link sheds it, counted)
``service.ingest.socket``  one received ingest line (kinds: ``drop`` —
                           severs the connection mid-stream)
``service.slide``          one pipeline slide (kinds: ``delay``, ``error``,
                           ``crash`` — the in-process stand-in for ``kill -9``)
``mod.write``              one MOD staging write (kinds: ``error``)
``mod.reconstruct``        one trip reconstruction pass (kinds: ``error``)
``wal.append``             one WAL record append (kinds: ``corrupt``)
``runtime.worker``         one shard worker (kinds: ``kill``)
``chaosnet.connect``       one chaos-wrapped transport dial (kinds:
                           ``drop`` — the dial fails with TransportError)
``chaosnet.send``          one chaos-wrapped outbound message (kinds:
                           ``drop`` — the send fails, session intact)
``chaosnet.receive``       one chaos-wrapped inbound read (kinds:
                           ``drop`` — the read fails, session intact)
``chaosnet.partition``     one chaos-wrapped dial severs its *endpoint*
                           (kinds: ``drop``; ``arg`` = seconds until the
                           partition auto-heals, 0 = until healed by hand)
=========================  ====================================================

Spec string grammar (``--chaos``)::

    site:kind@hit[:arg][,site:kind@hit[:arg]...]

``hit`` is 1-based ("the 3rd time this site is reached"); ``arg`` is the
delay in seconds for ``delay`` faults and the shard id for ``kill``
faults.  Example: ``mod.write:error@3,service.slide:delay@2:0.5``.
"""

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro import obs

#: Fault kinds understood by the injector itself (``error`` raises,
#: ``delay`` sleeps); every other kind is returned to the fault point's
#: caller, which interprets it (``drop``, ``crash``, ``corrupt``,
#: ``kill``).
HANDLED_KINDS = ("error", "delay")
KNOWN_KINDS = ("error", "delay", "drop", "crash", "corrupt", "kill")

#: The central fault-site registry: every ``fault_point("…")`` literal in
#: the tree maps here to the kinds meaningful at that site, and static
#: analysis (rule RPR003, see docs/STATIC_ANALYSIS.md) enforces the match
#: in both directions — no undocumented chaos surfaces, no dead entries.
#: The table in this module's docstring and docs/RESILIENCE.md mirror it.
SITES: dict[str, tuple[str, ...]] = {
    "gateway.link": ("drop",),
    "service.ingest.socket": ("drop",),
    "service.slide": ("delay", "error", "crash"),
    "mod.write": ("error",),
    "mod.reconstruct": ("error",),
    "wal.append": ("corrupt",),
    "runtime.worker": ("kill",),
    "chaosnet.connect": ("drop",),
    "chaosnet.send": ("drop",),
    "chaosnet.receive": ("drop",),
    "chaosnet.partition": ("drop",),
}

#: Kinds safe to draw blindly into a seeded plan: they perturb timing or
#: sever connections but never require a kind-specific argument (``kill``
#: wants a shard id) and never violate the durability contract a smoke
#: run asserts afterwards (``corrupt``, ``crash`` are for targeted
#: drills, not blind sampling).
SEEDABLE_KINDS = ("drop", "delay", "error")

#: Sites excluded from blind seeded plans even though their kinds are
#: seedable.  ``chaosnet.partition`` without an auto-heal ``arg`` severs
#: an endpoint *permanently* — fine for a staged drill that heals it,
#: fatal for a smoke run drawing faults blindly.  RPR003 checks this set
#: stays a subset of :data:`SITES` so it can never hide dead names.
UNSEEDED_SITES = frozenset({"chaosnet.partition"})


def seedable_sites() -> dict[str, tuple[str, ...]]:
    """The :data:`SITES` subset usable by ``FaultPlan.seeded``.

    Sites keep only their :data:`SEEDABLE_KINDS`; sites with none left
    (``wal.append``, ``runtime.worker``) and the explicitly excluded
    :data:`UNSEEDED_SITES` are omitted entirely.
    """
    filtered = {
        site: tuple(kind for kind in kinds if kind in SEEDABLE_KINDS)
        for site, kinds in SITES.items()
        if site not in UNSEEDED_SITES
    }
    return {site: kinds for site, kinds in filtered.items() if kinds}


class InjectedFault(RuntimeError):
    """An error deliberately raised by the fault injector."""

    def __init__(self, site: str, hit: int):
        super().__init__(f"injected fault at {site} (hit {hit})")
        self.site = site
        self.hit = hit


class SimulatedCrash(RuntimeError):
    """An in-process stand-in for ``kill -9``: the component owning the
    fault point abandons everything mid-flight — no drain, no flush, no
    finalize — exactly like a process death, but testable in pytest."""

    def __init__(self, site: str, hit: int):
        super().__init__(f"simulated crash at {site} (hit {hit})")
        self.site = site
        self.hit = hit


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: at the ``at``-th hit of ``site``, fire ``kind``."""

    site: str
    kind: str
    at: int = 1
    #: Kind-specific argument: seconds for ``delay``, shard id for ``kill``.
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {KNOWN_KINDS}"
            )
        if self.at < 1:
            raise ValueError(f"fault hit index is 1-based, got {self.at}")

    def to_spec(self) -> str:
        """The compact ``site:kind@hit[:arg]`` form of this fault."""
        base = f"{self.site}:{self.kind}@{self.at}"
        return f"{base}:{self.arg:g}" if self.arg else base


@dataclass
class FaultPlan:
    """A replayable set of planned faults."""

    specs: list = field(default_factory=list)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the compact ``--chaos`` grammar (see module docstring)."""
        specs = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            try:
                site, _, rest = chunk.partition(":")
                kind_at, _, arg = rest.partition("@")
                if not _:
                    raise ValueError("missing '@hit'")
                hit, _, extra = arg.partition(":")
                specs.append(FaultSpec(
                    site=site,
                    kind=kind_at,
                    at=int(hit),
                    arg=float(extra) if extra else 0.0,
                ))
            except (ValueError, TypeError) as exc:
                raise ValueError(
                    f"bad fault spec {chunk!r} "
                    f"(want site:kind@hit[:arg]): {exc}"
                ) from exc
        return cls(specs)

    @classmethod
    def seeded(
        cls,
        seed: int,
        sites: dict,
        count: int = 3,
        max_hit: int = 8,
    ) -> "FaultPlan":
        """A deterministic plan drawn from ``seed``.

        ``sites`` maps a site name to the tuple of kinds allowed there;
        ``count`` faults are drawn with hit indices in ``[1, max_hit]``.
        The same seed always yields the same plan, so a chaos run is
        replayable by seed alone.
        """
        rng = random.Random(seed)
        names = sorted(sites)
        specs = []
        for _ in range(count):
            site = rng.choice(names)
            kind = rng.choice(tuple(sites[site]))
            specs.append(FaultSpec(site=site, kind=kind,
                                   at=rng.randint(1, max_hit)))
        return cls(specs)

    def to_spec(self) -> str:
        """The whole plan in the ``--chaos`` grammar, for replay logs."""
        return ",".join(spec.to_spec() for spec in self.specs)

    def __len__(self) -> int:
        return len(self.specs)


class FaultInjector:
    """Counts site hits and fires the plan's faults deterministically.

    Thread-safe: fault points are reached from the event loop, the
    pipeline executor thread, and (in principle) worker processes' parent
    threads concurrently.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._armed: dict[str, dict[int, FaultSpec]] = {}
        for spec in plan.specs:
            self._armed.setdefault(spec.site, {})[spec.at] = spec
        self.hits: dict[str, int] = {}
        #: Every fault actually fired, in order — the replay proof.
        self.fired: list[FaultSpec] = []
        self._lock = threading.Lock()

    def check(self, site: str) -> FaultSpec | None:
        """Advance ``site``'s hit counter; fire any fault armed for it.

        ``error`` faults raise :class:`InjectedFault`, ``delay`` faults
        sleep; every other kind is returned for the caller to interpret.
        """
        with self._lock:
            hit = self.hits.get(site, 0) + 1
            self.hits[site] = hit
            spec = self._armed.get(site, {}).get(hit)
            if spec is None:
                return None
            self.fired.append(spec)
        obs.count("resilience.faults.fired")
        obs.count(f"resilience.faults.{site}.fired")
        if spec.kind == "error":
            raise InjectedFault(site, hit)
        if spec.kind == "delay":
            time.sleep(spec.arg)
            return None
        return spec

    def snapshot(self) -> dict:
        """Hit counters and fired faults, for assertions and health."""
        with self._lock:
            return {
                "plan": self.plan.to_spec(),
                "hits": dict(self.hits),
                "fired": [spec.to_spec() for spec in self.fired],
            }


#: The process-global injector; ``None`` means fault points are no-ops.
_INJECTOR: FaultInjector | None = None


def install(plan: FaultPlan | FaultInjector) -> FaultInjector:
    """Install a plan (or prepared injector) as the global injector."""
    global _INJECTOR
    if isinstance(plan, FaultPlan):
        plan = FaultInjector(plan)
    _INJECTOR = plan
    return plan


def uninstall() -> None:
    """Remove the global injector; fault points become no-ops again."""
    global _INJECTOR
    _INJECTOR = None


def get_injector() -> FaultInjector | None:
    """The currently installed injector, if any."""
    return _INJECTOR


def fault_point(site: str) -> FaultSpec | None:
    """Production-side hook: one ``None`` check when chaos is off."""
    if _INJECTOR is None:
        return None
    return _INJECTOR.check(site)


@contextmanager
def inject(plan: FaultPlan):
    """Scope an injector to a ``with`` block (tests use this)."""
    injector = install(plan)
    try:
        yield injector
    finally:
        uninstall()
