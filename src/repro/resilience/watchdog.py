"""Stalled-slide detection for the live service.

A pipeline slide runs on a single-worker executor thread; if it wedges
(a hung sqlite call, an injected ``service.slide:delay``, a shard worker
that stopped answering), the batcher's await never returns and — without
a watchdog — the whole service silently stops producing slides while
still accepting ingest.  :class:`SlideWatchdog` tracks slide start/finish
beats from the event loop and, when a slide overruns its deadline, fires
``on_stall`` (the supervisor kills the shard workers, which converts the
wedge into an ordinary :class:`~repro.runtime.supervisor.WorkerCrash`
that the checkpoint machinery already recovers from).

Refiring is backoff-limited: a stall that persists is re-fired on an
exponential schedule rather than every check tick, and a bounded number
of interventions guards against a kill/stall livelock.
"""

import time

from repro import obs
from repro.resilience.retry import BackoffPolicy


class SlideWatchdog:
    """Deadline monitor for pipeline slides.

    Parameters
    ----------
    timeout_seconds:
        A slide running longer than this is considered stalled.
    on_stall:
        Callback fired on detection (given the stalled ``query_time``
        and the elapsed seconds).  Exceptions from it are counted, not
        propagated — the watchdog itself must not die.
    backoff:
        Schedule limiting how often a *persisting* stall re-fires, and
        (via ``max_attempts``) how many interventions are allowed per
        stall before the watchdog gives up and only counts.
    clock:
        Injectable monotonic clock for sleep-free tests.
    """

    def __init__(
        self,
        timeout_seconds: float,
        on_stall=None,
        backoff: BackoffPolicy | None = None,
        clock=time.monotonic,
    ):
        if timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive: {timeout_seconds}"
            )
        self.timeout_seconds = timeout_seconds
        self.on_stall = on_stall
        self.backoff = backoff if backoff is not None else BackoffPolicy(
            initial_seconds=1.0, multiplier=2.0, max_seconds=30.0,
            max_attempts=3,
        )
        self._clock = clock
        self._started_at: float | None = None
        self._query_time: int | None = None
        self._fired_for_current: int = 0
        self._next_fire_at: float = 0.0
        self.slides_seen = 0
        self.stalls_detected = 0
        self.interventions = 0

    # -- beats (called from the batcher) --------------------------------

    def slide_started(self, query_time: int) -> None:
        self._started_at = self._clock()
        self._query_time = query_time
        self._fired_for_current = 0
        self._next_fire_at = self._started_at + self.timeout_seconds

    def slide_finished(self) -> None:
        self._started_at = None
        self._query_time = None
        self.slides_seen += 1

    # -- the periodic check ---------------------------------------------

    def check(self) -> bool:
        """One watchdog tick; returns True when a stall fired."""
        if self._started_at is None:
            return False
        now = self._clock()
        elapsed = now - self._started_at
        if elapsed < self.timeout_seconds or now < self._next_fire_at:
            return False
        self.stalls_detected += 1
        obs.count("resilience.watchdog.stalls")
        if self._fired_for_current >= self.backoff.max_attempts:
            # Intervention budget spent: keep counting, stop killing.
            self._next_fire_at = now + self.backoff.max_seconds
            return False
        self._fired_for_current += 1
        self._next_fire_at = now + self.backoff.delay_for(
            self._fired_for_current
        )
        self.interventions += 1
        obs.count("resilience.watchdog.interventions")
        if self.on_stall is not None:
            try:
                self.on_stall(self._query_time, elapsed)
            except Exception:
                obs.count("resilience.watchdog.on_stall_errors")
        return True

    def snapshot(self) -> dict:
        running = self._started_at is not None
        return {
            "timeout_seconds": self.timeout_seconds,
            "slide_running": running,
            "current_query_time": self._query_time,
            "slides_seen": self.slides_seen,
            "stalls_detected": self.stalls_detected,
            "interventions": self.interventions,
        }
