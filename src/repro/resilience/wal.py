"""The crash-safe write-ahead ingest journal.

Segmented append-only files of CRC-framed records.  Each record is::

    <length:u32 LE> <crc32:u32 LE> <payload bytes>

with the CRC taken over the payload.  A segment is named
``<name>-<first_seq:012d>.wal`` so lexicographic order equals replay
order.  The writer always starts a *new* segment on open — it never
appends to a file that might carry a torn tail from a previous crash.

Recovery is truncated-tail tolerant and prefix-consistent: replay stops
at the first record that is short, oversized or fails its CRC, and
everything up to that point is returned.  For the ingest journal that
prefix is exactly the durable stream — the slide batcher journals each
sentence *before* scanning it, so replaying the journal through a fresh
pipeline deterministically reproduces every slide the crashed process
had produced, byte for byte (docs/RESILIENCE.md).

Fsync policy trades durability for throughput:

* ``always`` — fsync after every record; nothing acknowledged is lost.
* ``batch`` — flush every record to the OS, fsync at explicit
  :meth:`WriteAheadLog.sync` points (the service syncs at each slide
  boundary): a crash loses at most the records since the last boundary.
* ``never`` — flush to the OS only; a host crash may lose OS-buffered
  records (a mere process kill does not).
"""

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.resilience.faults import fault_point

_HEADER = struct.Struct("<II")
#: Upper bound on a single record; anything larger in a header is
#: treated as corruption.
MAX_RECORD_BYTES = 16 * 1024 * 1024

FSYNC_POLICIES = ("always", "batch", "never")


@dataclass(frozen=True)
class WalRecord:
    """One recovered record: its sequence number and raw payload."""

    seq: int
    payload: bytes


@dataclass
class RecoveryStats:
    """What recovery found on disk — losses are counted, never silent."""

    segments: int = 0
    records: int = 0
    #: Segments whose tail was truncated or corrupt (replay stopped there).
    corrupt_segments: int = 0
    #: Bytes skipped after the first corruption (prefix semantics).
    dropped_bytes: int = 0
    last_seq: int = -1

    def to_dict(self) -> dict:
        return {
            "segments": self.segments,
            "records": self.records,
            "corrupt_segments": self.corrupt_segments,
            "dropped_bytes": self.dropped_bytes,
            "last_seq": self.last_seq,
        }


def _segment_files(directory: Path, name: str) -> list[Path]:
    if not directory.is_dir():
        return []
    return sorted(directory.glob(f"{name}-*.wal"))


def _first_seq_of(path: Path) -> int:
    """The segment's base sequence number, encoded in its filename —
    survives retirement of older segments, unlike positional counting."""
    return int(path.stem.rsplit("-", 1)[1])


def _read_segment(path: Path, next_seq: int) -> tuple[list[WalRecord], bool, int]:
    """All valid records of one segment.

    Returns ``(records, clean, dropped_bytes)`` — ``clean`` is False when
    the segment ends in a truncated or corrupt record.
    """
    data = path.read_bytes()
    records: list[WalRecord] = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            return records, False, total - offset
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if length > MAX_RECORD_BYTES or start + length > total:
            return records, False, total - offset
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            return records, False, total - offset
        records.append(WalRecord(next_seq + len(records), payload))
        offset = start + length
    return records, True, 0


def read_wal(
    directory: str | Path, name: str = "wal"
) -> tuple[list[WalRecord], RecoveryStats]:
    """Replay every record under ``directory``, prefix-consistently.

    Replay stops entirely at the first corruption (even mid-directory):
    records *after* a corrupt region have no guaranteed ordering
    relationship to the lost ones, so a prefix is the only sound
    recovery.  Everything dropped is counted in the stats.
    """
    directory = Path(directory)
    stats = RecoveryStats()
    records: list[WalRecord] = []
    segments = _segment_files(directory, name)
    for index, path in enumerate(segments):
        stats.segments += 1
        segment_records, clean, dropped = _read_segment(
            path, _first_seq_of(path)
        )
        records.extend(segment_records)
        if not clean:
            stats.corrupt_segments += 1
            stats.dropped_bytes += dropped
            for later in segments[index + 1:]:
                stats.dropped_bytes += later.stat().st_size
            stats.segments = len(segments)
            break
    stats.records = len(records)
    stats.last_seq = records[-1].seq if records else -1
    return records, stats


class WriteAheadLog:
    """Segmented append-only journal with CRC framing and rotation.

    Parameters
    ----------
    directory:
        Where segments live; created if missing.
    fsync:
        One of :data:`FSYNC_POLICIES` (see module docstring).
    segment_max_bytes:
        Rotation threshold; a segment is closed once it exceeds this.
    retention_segments:
        Keep at most this many *closed* segments (0 = unlimited).
        Retiring segments bounds disk use but also bounds how far back
        recovery can replay — a deliberate, counted trade-off.
    name:
        Segment filename prefix (the spill queue uses ``"spill"``).
    """

    def __init__(
        self,
        directory: str | Path,
        fsync: str = "batch",
        segment_max_bytes: int = 4 * 1024 * 1024,
        retention_segments: int = 0,
        name: str = "wal",
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_max_bytes <= 0:
            raise ValueError(
                f"segment_max_bytes must be positive: {segment_max_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_max_bytes = segment_max_bytes
        self.retention_segments = retention_segments
        self.name = name
        #: Records recovered from disk at open (see :func:`read_wal`).
        self.recovered, self.recovery_stats = read_wal(self.directory, name)
        self._next_seq = self.recovery_stats.last_seq + 1
        self._handle = None
        self._segment_path: Path | None = None
        self._segment_bytes = 0
        #: path -> last seq it holds, for retention/truncation decisions.
        self._closed_segments: dict[Path, int] = {}
        self._index_existing_segments()
        self.appended_count = 0
        self.synced_count = 0
        self.retired_segments = 0
        self._closed = False

    def _index_existing_segments(self) -> None:
        seq = -1
        for path in _segment_files(self.directory, self.name):
            segment_records, _, _ = _read_segment(path, _first_seq_of(path))
            seq = segment_records[-1].seq if segment_records else seq
            self._closed_segments[path] = seq

    # -- appending ------------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Durably frame and append one record; returns its seq."""
        if self._closed:
            raise ValueError("write-ahead log is closed")
        if self._handle is None:
            self._open_segment()
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._handle.write(frame)
        seq = self._next_seq
        self._next_seq += 1
        self._segment_bytes += len(frame)
        self.appended_count += 1
        spec = fault_point("wal.append")
        if spec is not None and spec.kind == "corrupt":
            self._corrupt_tail(len(frame))
        if self.fsync == "always":
            self._flush(fsync=True)
        else:
            # Flush the user-space buffer so an in-process crash (or a
            # reader in the same process) still sees the record; only a
            # host/OS crash can lose it under batch/never.
            self._handle.flush()
        if self._segment_bytes >= self.segment_max_bytes:
            self._rotate(last_seq=seq)
        return seq

    def sync(self) -> None:
        """Batch-policy durability point (the service's slide boundary)."""
        if self._handle is None:
            return
        self._flush(fsync=self.fsync != "never")
        self.synced_count += 1

    def _flush(self, fsync: bool) -> None:
        self._handle.flush()
        if fsync:
            os.fsync(self._handle.fileno())

    def _corrupt_tail(self, frame_len: int) -> None:
        """Injected ``wal.append:corrupt`` fault: garble the record just
        written, simulating a torn write at the segment tail."""
        self._handle.flush()
        with open(self._segment_path, "r+b") as raw:
            raw.seek(-min(8, frame_len), os.SEEK_END)
            raw.write(b"\xde\xad\xbe\xef\xde\xad\xbe\xef"[: min(8, frame_len)])
        obs.count("resilience.wal.injected_corruptions")

    # -- segments -------------------------------------------------------

    def _open_segment(self) -> None:
        self._segment_path = (
            self.directory / f"{self.name}-{self._next_seq:012d}.wal"
        )
        self._handle = open(self._segment_path, "ab")
        self._segment_bytes = 0
        obs.count("resilience.wal.segments_opened")

    def _rotate(self, last_seq: int) -> None:
        self._flush(fsync=self.fsync != "never")
        self._handle.close()
        self._closed_segments[self._segment_path] = last_seq
        self._handle = None
        self._segment_path = None
        self._apply_retention()

    def _apply_retention(self) -> None:
        if self.retention_segments <= 0:
            return
        while len(self._closed_segments) > self.retention_segments:
            oldest = next(iter(self._closed_segments))
            self._closed_segments.pop(oldest)
            oldest.unlink(missing_ok=True)
            self.retired_segments += 1
            obs.count("resilience.wal.segments_retired")

    def truncate_through(self, seq: int) -> int:
        """Delete closed segments holding only records ``<= seq``.

        The caller declares those records applied (checkpointed past, or
        archived); returns the number of segments removed.
        """
        removed = 0
        for path, last in list(self._closed_segments.items()):
            if last <= seq:
                self._closed_segments.pop(path)
                path.unlink(missing_ok=True)
                removed += 1
        if removed:
            obs.count("resilience.wal.segments_truncated", removed)
        return removed

    def truncate_all(self) -> int:
        """Delete every segment — the journal's obligation is met (the
        stream drained cleanly through finalize)."""
        self.sync()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            if self._segment_path is not None:
                self._segment_path.unlink(missing_ok=True)
                self._segment_path = None
        removed = len(self._closed_segments)
        for path in self._closed_segments:
            path.unlink(missing_ok=True)
        self._closed_segments.clear()
        obs.count("resilience.wal.truncated_clean")
        return removed + 1

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Flush and close the current segment; segments stay on disk."""
        if self._closed:
            return
        self._closed = True
        if self._handle is not None:
            self._flush(fsync=self.fsync != "never")
            self._handle.close()
            self._closed_segments[self._segment_path] = self._next_seq - 1
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def segment_count(self) -> int:
        on_disk = len(self._closed_segments)
        return on_disk + (1 if self._handle is not None else 0)

    def snapshot(self) -> dict:
        """Health/metrics view of the journal."""
        return {
            "directory": str(self.directory),
            "fsync": self.fsync,
            "segments": self.segment_count(),
            "appended": self.appended_count,
            "synced": self.synced_count,
            "retired_segments": self.retired_segments,
            "next_seq": self._next_seq,
            "recovered": self.recovery_stats.to_dict(),
        }


class IngestJournal:
    """The service's WAL specialization: ``(receive_time, sentence)``.

    Records are ``<epoch-seconds>\\t<sentence>`` in UTF-8 — the same
    timestamped form the ingest wire protocol uses, so a journal segment
    doubles as a replayable feed archive.
    """

    def __init__(
        self,
        directory: str | Path,
        fsync: str = "batch",
        segment_max_bytes: int = 4 * 1024 * 1024,
        retention_segments: int = 0,
    ):
        self.wal = WriteAheadLog(
            directory,
            fsync=fsync,
            segment_max_bytes=segment_max_bytes,
            retention_segments=retention_segments,
            name="wal",
        )
        #: The sentences recovered from a previous incarnation, in order.
        self.recovered: list[tuple[int, str]] = [
            self._decode(record.payload) for record in self.wal.recovered
        ]
        self.recovery_stats = self.wal.recovery_stats

    @staticmethod
    def _decode(payload: bytes) -> tuple[int, str]:
        head, _, sentence = payload.decode("utf-8").partition("\t")
        return int(head), sentence

    def append(self, receive_time: int, sentence: str) -> int:
        """Journal one ingested sentence *before* it is processed."""
        return self.wal.append(f"{receive_time}\t{sentence}".encode())

    def sync(self) -> None:
        self.wal.sync()

    def truncate_all(self) -> int:
        return self.wal.truncate_all()

    def close(self) -> None:
        self.wal.close()

    def snapshot(self) -> dict:
        return self.wal.snapshot()


def read_journal(
    directory: str | Path,
) -> tuple[list[tuple[int, str]], RecoveryStats]:
    """Read an ingest journal without opening a writer (drills, tests)."""
    records, stats = read_wal(directory, "wal")
    return [IngestJournal._decode(r.payload) for r in records], stats
