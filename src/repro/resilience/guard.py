"""Graceful degradation for the MOD write path.

The recognition half of the pipeline (critical points, alert streams)
must not stall because the archival half (sqlite staging, trip
reconstruction) is failing.  :class:`GuardedDatabase` wraps the MOD so
that staging writes run under retry + circuit breaker, and when both
give up the batch lands in a WAL-backed :class:`SpillQueue` instead of
being lost — recognition keeps running on degraded archival.  The first
successful write after recovery drains the backlog in arrival order, so
the staging table converges to exactly what an unfailed run would hold
(trip reconstruction is order-insensitive per vessel because staging
reads sort by timestamp).

Everything that degrades is counted in the obs registry; nothing is
silently dropped.
"""

import json
from pathlib import Path

from repro import obs
from repro.resilience.breaker import CircuitBreaker, CircuitOpen
from repro.resilience.retry import BackoffPolicy, retry_call
from repro.resilience.wal import WriteAheadLog
from repro.tracking.types import CriticalPoint, MovementEventType


def point_to_payload(point: CriticalPoint) -> bytes:
    """One critical point as a compact, stable JSON record."""
    return json.dumps(
        {
            "mmsi": point.mmsi,
            "lon": point.lon,
            "lat": point.lat,
            "timestamp": point.timestamp,
            "annotations": sorted(a.value for a in point.annotations),
            "speed_mps": point.speed_mps,
            "heading_degrees": point.heading_degrees,
            "duration_seconds": point.duration_seconds,
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode()


def payload_to_point(payload: bytes) -> CriticalPoint:
    data = json.loads(payload.decode("utf-8"))
    return CriticalPoint(
        mmsi=data["mmsi"],
        lon=data["lon"],
        lat=data["lat"],
        timestamp=data["timestamp"],
        annotations=frozenset(
            MovementEventType(v) for v in data["annotations"]
        ),
        speed_mps=data["speed_mps"],
        heading_degrees=data["heading_degrees"],
        duration_seconds=data["duration_seconds"],
    )


class SpillQueue:
    """Critical points awaiting a recovered MOD.

    With a directory the queue is WAL-backed (segments named
    ``spill-*.wal``) and survives a process crash: a restarted service
    re-stages the backlog before accepting new traffic.  Without one it
    is a plain in-memory buffer — degraded archival still works, it just
    does not survive a crash (the service only runs memory-backed when
    no ``--wal-dir`` was given at all).
    """

    def __init__(self, directory: str | Path | None = None,
                 fsync: str = "batch"):
        self._wal: WriteAheadLog | None = None
        self._pending: list[CriticalPoint] = []
        self.spilled_count = 0
        self.drained_count = 0
        if directory is not None:
            self._wal = WriteAheadLog(directory, fsync=fsync, name="spill")
            self._pending = [
                payload_to_point(record.payload)
                for record in self._wal.recovered
            ]

    def spill(self, points: list[CriticalPoint]) -> None:
        """Buffer a batch the MOD refused; durable when WAL-backed."""
        if self._wal is not None:
            for point in points:
                self._wal.append(point_to_payload(point))
            self._wal.sync()
        self._pending.extend(points)
        self.spilled_count += len(points)
        obs.count("resilience.spill.points", len(points))
        obs.set_gauge("resilience.spill.pending", len(self._pending))

    def drain(self) -> list[CriticalPoint]:
        """Hand the whole backlog to the caller and forget it.

        The caller is about to stage these points; if *that* fails they
        are re-spilled, so durability is never in the caller's hands for
        longer than one write attempt.
        """
        points = self._pending
        self._pending = []
        if self._wal is not None and points:
            self._wal.truncate_all()
        self.drained_count += len(points)
        obs.set_gauge("resilience.spill.pending", 0)
        return points

    def __len__(self) -> int:
        return len(self._pending)

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()

    def snapshot(self) -> dict:
        return {
            "pending": len(self._pending),
            "spilled": self.spilled_count,
            "drained": self.drained_count,
            "durable": self._wal is not None,
        }


class GuardedDatabase:
    """The MOD behind retry, circuit breaker, and spill queue.

    A transparent stand-in for :class:`MovingObjectDatabase` — unknown
    attributes delegate to the wrapped database, so query helpers and
    the HTTP layer keep working unchanged.  Only the two failure-prone
    paths are intercepted:

    * :meth:`stage_points` — retried under the backoff policy inside the
      breaker; on exhaustion or open circuit the batch spills and the
      call *succeeds degraded* (returns 0 staged).  Any success first
      drains the spill backlog so staging converges.
    * :meth:`reconstruct` — skipped while the circuit is open (counted),
      single-attempt otherwise; a reconstruction failure trips the same
      breaker since it shares the sqlite handle.
    """

    def __init__(
        self,
        database,
        breaker: CircuitBreaker | None = None,
        policy: BackoffPolicy | None = None,
        spill: SpillQueue | None = None,
        sleep=None,
    ):
        self._database = database
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.policy = policy if policy is not None else BackoffPolicy()
        self.spill = spill if spill is not None else SpillQueue()
        self._sleep = sleep
        self.degraded_batches = 0

    # -- guarded paths --------------------------------------------------

    def stage_points(self, points: list[CriticalPoint]) -> int:
        """Stage a batch, degrading to the spill queue on failure."""
        backlog = self.spill.drain() if len(self.spill) else []
        batch = backlog + list(points)
        if not batch:
            return 0
        try:
            staged = self.breaker.call(lambda: self._staged_with_retry(batch))
        except CircuitOpen:
            self._degrade(batch)
            return 0
        except Exception as exc:
            obs.count("resilience.guard.stage_failures")
            self._degrade(batch)
            obs.count("resilience.guard.degraded_errors")
            _ = exc  # counted, spilled, swallowed: recognition continues.
            return 0
        if backlog:
            obs.count("resilience.spill.drained", len(backlog))
        return staged

    def _staged_with_retry(self, batch: list[CriticalPoint]) -> int:
        kwargs = {}
        if self._sleep is not None:
            kwargs["sleep"] = self._sleep
        return retry_call(
            lambda: self._database.stage_points(batch),
            self.policy,
            site="mod.write",
            **kwargs,
        )

    def _degrade(self, batch: list[CriticalPoint]) -> None:
        self.spill.spill(batch)
        self.degraded_batches += 1
        obs.count("resilience.guard.degraded_batches")

    def reconstruct(self, timings: dict | None = None) -> int:
        """Reconstruct trips unless the circuit is open (then skip)."""
        try:
            return self.breaker.call(
                lambda: self._database.reconstruct(timings)
            )
        except CircuitOpen:
            obs.count("resilience.guard.reconstruct_skipped")
            return 0
        except Exception:
            obs.count("resilience.guard.reconstruct_failures")
            return 0

    # -- passthrough ----------------------------------------------------

    def __getattr__(self, name: str):
        return getattr(self._database, name)

    def close(self) -> None:
        self.spill.close()
        self._database.close()

    def snapshot(self) -> dict:
        """Health view: breaker state, spill backlog, degradation counts."""
        return {
            "breaker": self.breaker.snapshot(),
            "spill": self.spill.snapshot(),
            "degraded_batches": self.degraded_batches,
        }
