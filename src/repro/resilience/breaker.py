"""A circuit breaker for the MOD sqlite write path.

Retrying into a dead dependency amplifies the outage: every slide would
burn its full retry budget against a database that is not coming back
this second, stalling recognition behind storage.  The breaker converts
that into a fast local decision — after ``failure_threshold``
consecutive failures it *opens* and callers fail immediately (the guard
layer spills instead), and after ``recovery_seconds`` it lets exactly
one probe through (*half-open*).  A successful probe closes the circuit
and the spill backlog drains; a failed probe reopens it.

The clock is injectable so state transitions are testable without
sleeping.
"""

import time
from dataclasses import dataclass

from repro import obs

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_GAUGE = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class CircuitOpen(RuntimeError):
    """Raised by :meth:`CircuitBreaker.before_call` while the circuit is
    open — the protected dependency is presumed down."""

    def __init__(self, name: str, retry_in: float):
        super().__init__(
            f"circuit {name!r} is open (retry in {retry_in:.2f}s)"
        )
        self.retry_in = retry_in


@dataclass
class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open)."""

    name: str = "mod"
    failure_threshold: int = 3
    recovery_seconds: float = 5.0
    #: Injectable monotonic clock, for sleep-free tests.
    clock: object = None

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1: {self.failure_threshold}"
            )
        if self.clock is None:
            self.clock = time.monotonic
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.open_count = 0
        self.success_count = 0
        self.failure_count = 0
        self.rejected_count = 0
        self._publish_state()

    # -- the protected-call protocol -----------------------------------

    def before_call(self) -> None:
        """Gate a call: raises :class:`CircuitOpen` while open, admits a
        single probe once the recovery window has elapsed."""
        if self.state == CLOSED:
            return
        if self.state == OPEN:
            elapsed = self.clock() - self.opened_at
            if elapsed < self.recovery_seconds:
                self.rejected_count += 1
                obs.count(f"resilience.breaker.{self.name}.rejected")
                raise CircuitOpen(self.name, self.recovery_seconds - elapsed)
            self.state = HALF_OPEN
            self._publish_state()
        # HALF_OPEN: admit the probe.

    def record_success(self) -> None:
        self.success_count += 1
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self.state = CLOSED
            obs.count(f"resilience.breaker.{self.name}.closed")
            self._publish_state()

    def record_failure(self) -> None:
        self.failure_count += 1
        self.consecutive_failures += 1
        obs.count(f"resilience.breaker.{self.name}.failures")
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self.state = OPEN
        self.opened_at = self.clock()
        self.open_count += 1
        obs.count(f"resilience.breaker.{self.name}.opened")
        self._publish_state()

    def call(self, func):
        """Run ``func`` under the breaker, recording the outcome."""
        self.before_call()
        try:
            result = func()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def _publish_state(self) -> None:
        obs.set_gauge(
            f"resilience.breaker.{self.name}.state", _STATE_GAUGE[self.state]
        )

    def snapshot(self) -> dict:
        """Health/metrics view (exposed on ``/healthz``)."""
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "recovery_seconds": self.recovery_seconds,
            "opened": self.open_count,
            "successes": self.success_count,
            "failures": self.failure_count,
            "rejected": self.rejected_count,
        }
