"""Command-line demo of the surveillance system.

Usage::

    python -m repro [--vessels N] [--hours H] [--seed S]
                    [--window-hours W] [--slide-minutes B]
                    [--spatial-facts] [--pairwise]
                    [--shards N] [--checkpoint-dir PATH]
                    [--tracking-backend scalar|array|numpy]
                    [--kml PATH] [--metrics-json PATH]
    python -m repro --serve [--port P] [--host H]
                    [--wal-dir PATH] [--fsync always|batch|never]
                    [--chaos SPEC | --chaos-seed N] [... same pipeline flags]

Simulates a mixed fleet, runs the full pipeline, streams alerts to stdout
as they are recognized, and prints the end-of-run summary (compression,
phase timings, Table-4 trip statistics).  With ``--metrics-json`` the
metrics registry is enabled for the run and a machine-readable report
(per-phase p50/p95 latencies, events/sec throughput, compression ratio,
full registry snapshot) is written to the given path — see
docs/OBSERVABILITY.md for the format.

``--shards N`` with ``N > 1`` runs the same pipeline on the sharded,
process-parallel runtime (:class:`repro.runtime.ParallelSurveillanceSystem`)
— identical alerts and synopses, with per-shard runtime metrics added to
the report; see docs/RUNTIME.md.

``--serve`` starts the always-on live service instead of a batch replay:
a TCP ingest listener for raw ``!AIVDM`` lines on ``--port`` (default
10110, the conventional NMEA-over-TCP port), the newline-delimited-JSON
subscription feed on ``port+1``, and the HTTP query/metrics API
(``/healthz``, Prometheus ``/metrics``, ``/vessels/{mmsi}``,
``/alerts?since=``) on ``port+2``.  The served recognizer uses the fleet
specs derived from ``--vessels``/``--seed``, so pair it with
``examples/live_feed.py`` run with the same values.  SIGINT/SIGTERM
drains gracefully: buffered sentences flush through the pipeline, the
final slide and end-of-stream finalize run, then the process exits 0.
See docs/SERVICE.md for the wire protocols and backpressure semantics.

``--wal-dir`` makes the served ingest durable: every post-shedding
sentence is journaled to a write-ahead log before processing
(``--fsync`` picks the durability/throughput trade-off), and restarting
with the same directory replays unacknowledged sentences to
byte-identical output.  ``--chaos`` installs a deterministic fault plan
(``site:kind@hit[,...]``) or ``--chaos-seed`` generates one — see
docs/RESILIENCE.md for sites, kinds, and the recovery guarantees.
"""

import argparse
import sys

from repro import obs
from repro import (
    FleetSimulator,
    StreamReplayer,
    SurveillanceSystem,
    SystemConfig,
    TimedArrival,
    WindowSpec,
    build_aegean_world,
    compute_trip_statistics,
)
from repro.tracking.backends import DEFAULT_BACKEND, available_backends
from repro.transport import DEFAULT_TRANSPORT, available_transports


def build_parser() -> argparse.ArgumentParser:
    """The demo's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Maritime surveillance pipeline demo (EDBT 2015 system)",
    )
    parser.add_argument("--vessels", type=int, default=50,
                        help="fleet size (default: 50)")
    parser.add_argument("--hours", type=float, default=6.0,
                        help="simulated hours of traffic (default: 6)")
    parser.add_argument("--seed", type=int, default=7,
                        help="simulation seed (default: 7)")
    parser.add_argument("--window-hours", type=float, default=2.0,
                        help="sliding-window range omega (default: 2)")
    parser.add_argument("--slide-minutes", type=float, default=30.0,
                        help="window slide beta (default: 30)")
    parser.add_argument("--spatial-facts", action="store_true",
                        help="use the precomputed-spatial-facts CE mode")
    parser.add_argument("--pairwise", action="store_true",
                        help="recognize pairwise CEs (encounter, rendezvous, "
                             "cpaRisk, darkShip); see docs/SPATIAL.md")
    parser.add_argument("--shards", type=int, default=1,
                        help="worker shards; >1 selects the process-parallel "
                             "runtime (default: 1, single-process)")
    parser.add_argument("--tracking-backend", default=DEFAULT_BACKEND,
                        choices=available_backends(),
                        help="Mobility Tracker kernel; all backends emit "
                             "byte-identical events (docs/TRACKING.md) "
                             f"(default: {DEFAULT_BACKEND})")
    parser.add_argument("--checkpoint-dir", metavar="PATH",
                        help="shard checkpoint directory (with --shards > 1; "
                             "default: a private temporary directory)")
    parser.add_argument("--serve", action="store_true",
                        help="run the live service (TCP ingest + feed + "
                             "HTTP API) instead of a batch replay; see "
                             "docs/SERVICE.md")
    parser.add_argument("--port", type=int, default=10110,
                        help="base port with --serve: ingest=PORT, "
                             "feed=PORT+1, http=PORT+2 (default: 10110; "
                             "0 binds ephemerally)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address with --serve (default: 127.0.0.1)")
    parser.add_argument("--ingest-transport", default=DEFAULT_TRANSPORT,
                        choices=available_transports(),
                        help="wire protocol of the --serve ingest listener "
                             "(docs/GATEWAY.md) "
                             f"(default: {DEFAULT_TRANSPORT})")
    parser.add_argument("--feed-transport", default=DEFAULT_TRANSPORT,
                        choices=available_transports(),
                        help="wire protocol of the --serve subscription "
                             f"feed (default: {DEFAULT_TRANSPORT})")
    parser.add_argument("--wal-dir", metavar="PATH",
                        help="with --serve: write-ahead ingest journal "
                             "directory; restart with the same path to "
                             "replay unacknowledged sentences "
                             "(docs/RESILIENCE.md)")
    parser.add_argument("--fsync", choices=("always", "batch", "never"),
                        default="batch",
                        help="WAL fsync policy with --wal-dir: per record, "
                             "per slide boundary, or never (default: batch)")
    parser.add_argument("--chaos", metavar="SPEC",
                        help="install a deterministic fault plan, e.g. "
                             "'mod.write:error@3,service.slide:crash@2'")
    parser.add_argument("--chaos-seed", type=int, metavar="N",
                        help="generate a seeded fault plan over all known "
                             "sites (replayable by seed; prints the plan)")
    parser.add_argument("--kml", metavar="PATH",
                        help="export the final window synopsis as KML")
    parser.add_argument("--metrics-json", metavar="PATH",
                        help="enable metrics collection and write the "
                             "observability report (p50/p95 per phase, "
                             "events/sec, compression) to PATH")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the demo; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.serve:
        return _serve(args)
    if args.metrics_json:
        # A fresh scoped registry: repeated in-process runs don't bleed
        # metrics into each other, and the global one stays untouched.
        with obs.activate(obs.MetricsRegistry()):
            return _run(args)
    return _run(args)


def _build_pipeline_inputs(args: argparse.Namespace):
    """The (world, simulator, fleet, specs, config) a run needs."""
    world = build_aegean_world()
    simulator = FleetSimulator(
        world, seed=args.seed, duration_seconds=int(args.hours * 3600)
    )
    fleet = simulator.build_mixed_fleet(args.vessels)
    specs = {vessel.mmsi: vessel.spec for vessel in fleet}
    config = SystemConfig(
        window=WindowSpec.of_minutes(args.window_hours * 60, args.slide_minutes),
        tracking_backend=args.tracking_backend,
        spatial_facts=args.spatial_facts,
        pairwise=args.pairwise,
    )
    return world, simulator, fleet, specs, config


def _serve(args: argparse.Namespace) -> int:
    """Run the live service until a signal drains it."""
    import asyncio

    from repro.service import ServiceConfig, run_service

    world, _, _, specs, config = _build_pipeline_inputs(args)
    service = ServiceConfig(
        host=args.host,
        ingest_port=args.port,
        feed_port=args.port + 1 if args.port else 0,
        http_port=args.port + 2 if args.port else 0,
        ingest_transport=args.ingest_transport,
        feed_transport=args.feed_transport,
        shards=args.shards,
        checkpoint_dir=args.checkpoint_dir,
        wal_dir=args.wal_dir,
        wal_fsync=args.fsync,
    )
    _install_chaos(args)
    # /metrics serves the global registry, so collection is on for the
    # whole lifetime of the service.
    obs.enable()
    supervisor = asyncio.run(run_service(world, specs, config, service))
    if args.metrics_json:
        from repro.obs.report import build_pipeline_report, write_report

        report = build_pipeline_report(
            supervisor.system,
            obs.get_registry(),
            config={
                "serve": True,
                "vessels": args.vessels,
                "seed": args.seed,
                "window_hours": args.window_hours,
                "slide_minutes": args.slide_minutes,
                "shards": args.shards,
            },
        )
        write_report(report, args.metrics_json)
        print(f"metrics report written to {args.metrics_json}")
    return 0


def _install_chaos(args: argparse.Namespace) -> None:
    """Install the ``--chaos`` / ``--chaos-seed`` fault plan, if any."""
    if not args.chaos and args.chaos_seed is None:
        return
    from repro.resilience import FaultPlan, install, seedable_sites

    if args.chaos:
        plan = FaultPlan.from_spec(args.chaos)
    else:
        plan = FaultPlan.seeded(args.chaos_seed, sites=seedable_sites())
    install(plan)
    print(f"chaos plan installed: {plan.to_spec()}")


def _run(args: argparse.Namespace) -> int:
    world, simulator, fleet, specs, config = _build_pipeline_inputs(args)
    if args.shards > 1:
        from repro.runtime import ParallelSurveillanceSystem

        system = ParallelSurveillanceSystem(
            world, specs, config,
            shards=args.shards,
            checkpoint_dir=args.checkpoint_dir,
        )
    else:
        system = SurveillanceSystem(world, specs, config)
    stream = simulator.positions(fleet)
    sharding = f", {args.shards} shards" if args.shards > 1 else ""
    print(
        f"simulating {len(fleet)} vessels / {len(stream)} positions over "
        f"{args.hours:g} h (omega={args.window_hours:g} h, "
        f"beta={args.slide_minutes:g} min{sharding})"
    )

    replayer = StreamReplayer(
        [TimedArrival(p.timestamp, p) for p in stream],
        slide_seconds=config.window.slide_seconds,
    )
    seen_alerts: set = set()
    for query_time, batch in replayer.batches():
        report = system.process_slide(batch, query_time)
        for alert in report.alerts:
            key = (alert.kind, alert.area, alert.since, alert.mmsi)
            if key in seen_alerts:
                continue
            seen_alerts.add(key)
            vessel = f" vessel={alert.mmsi}" if alert.mmsi else ""
            print(f"  [t={query_time:>6}] {alert.kind} @ {alert.area}{vessel}")
    system.finalize()

    print("\n--- summary ---")
    stats = system.compressor.statistics
    print(f"compression: {stats.critical_points} critical points from "
          f"{stats.raw_positions} raw ({stats.compression_ratio:.1%} dropped)")
    print("avg per-slide cost:",
          ", ".join(f"{phase}={seconds * 1000:.1f}ms"
                    for phase, seconds in system.timings.averages().items()))
    print("\n" + compute_trip_statistics(system.database).format_table())

    if args.kml:
        with open(args.kml, "w", encoding="utf-8") as handle:
            handle.write(system.export_kml())
        print(f"\nKML written to {args.kml}")

    if args.metrics_json:
        from repro.obs.report import build_pipeline_report, write_report

        report = build_pipeline_report(
            system,
            obs.get_registry(),
            config={
                "vessels": args.vessels,
                "hours": args.hours,
                "seed": args.seed,
                "window_hours": args.window_hours,
                "slide_minutes": args.slide_minutes,
                "spatial_facts": args.spatial_facts,
                "pairwise": args.pairwise,
                "shards": args.shards,
            },
        )
        write_report(report, args.metrics_json)
        print(f"\nmetrics report written to {args.metrics_json}")
    if args.shards > 1:
        system.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
