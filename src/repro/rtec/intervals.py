"""Maximal-interval algebra over integer time.

The paper's semantics (Section 4.1): if ``F=V`` is initiated at 10 and 20 and
terminated at 25 and 30, then ``F=V`` holds at all ``T`` with ``10 < T <= 25``
— and ``start(F=V)`` occurs at 10, ``end(F=V)`` at 25.  We therefore
represent a maximal interval as a pair ``(ts, tf)`` meaning "holds at every
T with ts < T <= tf"; ``tf`` may be :data:`OPEN` for an interval not yet
broken (holding through the current query time).

An *interval list* is a sorted list of such pairs, pairwise disjoint and
non-adjacent (maximality).  All functions below preserve that normal form.
"""

import math

#: Sentinel right endpoint of an interval that has not been terminated.
OPEN = math.inf

Interval = tuple[int, float]  # (ts, tf); tf is an int or OPEN


def intervals_from_points(
    init_points: list[int], term_points: list[int]
) -> list[Interval]:
    """Compose maximal intervals from initiation and termination points.

    Implements the paper's ``holdsFor`` computation: for each initiation
    ``Ts`` not already inside an interval, the interval extends to the first
    ``Tf > Ts`` at which the value is *broken* (rules (1)-(2)); with no such
    point, the interval remains open.
    """
    if not init_points:
        return []
    inits = sorted(set(init_points))
    terms = sorted(set(term_points))
    intervals: list[Interval] = []
    current_start: int | None = None
    for ts in inits:
        if current_start is not None:
            # Still inside an open stretch: re-initiation is absorbed unless
            # a termination closed the stretch at or before this initiation.
            # A termination exactly at ts closes the old stretch yet does
            # not break the new initiation (rule (1) requires Ts < Tf), so
            # the re-initiation starts a fresh interval that merges
            # seamlessly with the old one.
            closing = _first_term_after(terms, current_start)
            if closing is None or closing > ts:
                continue
            intervals.append((current_start, closing))
            current_start = None
        current_start = ts
    if current_start is not None:
        closing = _first_term_after(terms, current_start)
        if closing is None:
            intervals.append((current_start, OPEN))
        else:
            intervals.append((current_start, closing))
    return normalize(intervals)


def _first_term_after(terms: list[int], ts: int) -> int | None:
    """First termination point strictly after ts (rule (1): Ts < Tf)."""
    from bisect import bisect_right

    index = bisect_right(terms, ts)
    if index == len(terms):
        return None
    return terms[index]


def normalize(intervals: list[Interval]) -> list[Interval]:
    """Sort, drop empties, and merge overlapping/adjacent intervals."""
    cleaned = [
        (ts, tf) for ts, tf in intervals if tf == OPEN or tf > ts
    ]
    cleaned.sort(key=lambda interval: interval[0])
    merged: list[Interval] = []
    for ts, tf in cleaned:
        if merged and ts <= merged[-1][1]:
            previous_ts, previous_tf = merged[-1]
            merged[-1] = (previous_ts, max(previous_tf, tf))
        else:
            merged.append((ts, tf))
    return merged


def holds_at(intervals: list[Interval], timepoint: int) -> bool:
    """Whether the value holds at a timepoint: any ts < T <= tf."""
    from bisect import bisect_right

    starts = [interval[0] for interval in intervals]
    index = bisect_right(starts, timepoint) - 1
    # An interval starting exactly at T does not cover T (open left end),
    # but the previous one might.
    for i in (index, index - 1):
        if 0 <= i < len(intervals):
            ts, tf = intervals[i]
            if ts < timepoint <= tf:
                return True
    return False


def union_intervals(a: list[Interval], b: list[Interval]) -> list[Interval]:
    """Union of two interval lists, in normal form."""
    return normalize(list(a) + list(b))


def intersect_intervals(a: list[Interval], b: list[Interval]) -> list[Interval]:
    """Intersection of two interval lists, in normal form."""
    result: list[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        ts = max(a[i][0], b[j][0])
        tf = min(a[i][1], b[j][1])
        if tf == OPEN or tf > ts:
            result.append((ts, tf))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return normalize(result)


def subtract_intervals(a: list[Interval], b: list[Interval]) -> list[Interval]:
    """Relative complement a \\ b, in normal form."""
    result: list[Interval] = []
    pending = list(a)
    for b_ts, b_tf in b:
        next_pending: list[Interval] = []
        for ts, tf in pending:
            # Overlap test under (ts, tf] semantics.
            if b_tf <= ts or (tf != OPEN and b_ts >= tf):
                next_pending.append((ts, tf))
                continue
            if ts < b_ts:
                next_pending.append((ts, min(tf, b_ts)))
            if b_tf != OPEN and (tf == OPEN or b_tf < tf):
                next_pending.append((int(b_tf), tf))
        pending = next_pending
    result = pending
    return normalize(result)


def clip_intervals(
    intervals: list[Interval], lo: int, hi: int
) -> list[Interval]:
    """Restrict intervals to the window ``(lo, hi]``.

    Open right endpoints stay open (the value still holds at ``hi``).
    """
    clipped: list[Interval] = []
    for ts, tf in intervals:
        new_ts = max(ts, lo)
        new_tf = tf if tf == OPEN else min(tf, hi)
        if new_tf == OPEN or new_tf > new_ts:
            clipped.append((new_ts, new_tf))
    return normalize(clipped)


def start_points(intervals: list[Interval]) -> list[int]:
    """Occurrence times of the built-in ``start(F=V)`` event."""
    return [ts for ts, _ in intervals]


def end_points(intervals: list[Interval]) -> list[int]:
    """Occurrence times of the built-in ``end(F=V)`` event.

    Open intervals have not ended, so they contribute no end point.
    """
    return [int(tf) for _, tf in intervals if tf != OPEN]


def total_duration(intervals: list[Interval], horizon: int | None = None) -> int:
    """Summed length of the intervals; open ends clip to ``horizon``."""
    total = 0
    for ts, tf in intervals:
        if tf == OPEN:
            if horizon is None:
                raise ValueError("open interval needs a horizon for duration")
            tf = horizon
        total += max(0, int(tf) - ts)
    return total
