"""The working memory: windowed storage of input events and context.

"At each Qi the MEs that fall within a specified sliding window omega
('working memory' in the terminology of RTEC) are taken into consideration.
All MEs that took place before or at Qi - omega are discarded." — Section 4.2.

Three input families are stored:

* **events** — instantaneous occurrences (``gap``, ``turn``, ``stop_start``…)
  with both an occurrence time and an arrival time, so delayed events are
  visible only at query times after they arrive (Figure 5);
* **valued fluents** — step functions such as ``coord(Vessel)``, where each
  assertion sets the value from its timestamp until the next assertion; the
  last assignment before the window is retained so values persist into it;
* **facts** — timestamped context facts used by the spatial-facts experiment
  of Figure 11(b), stored like events.
"""

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass


@dataclass(frozen=True)
class EventOccurrence:
    """One ground event occurrence in the working memory."""

    functor: str
    args: tuple
    time: int
    arrival: int


class WorkingMemory:
    """Windowed input store for the RTEC engine."""

    def __init__(self) -> None:
        self._events: dict[str, list[EventOccurrence]] = defaultdict(list)
        # (functor, args) -> sorted list of (time, arrival, value)
        self._valued: dict[tuple[str, tuple], list[tuple[int, int, object]]] = (
            defaultdict(list)
        )
        self._events_sorted = True

    # ------------------------------------------------------------------
    # assertion
    # ------------------------------------------------------------------

    def assert_event(
        self, functor: str, args: tuple, time: int, arrival: int | None = None
    ) -> None:
        """Record an event occurrence (arrival defaults to occurrence time)."""
        occurrence = EventOccurrence(
            functor, tuple(args), time, time if arrival is None else arrival
        )
        self._events[functor].append(occurrence)
        self._events_sorted = False

    def assert_value(
        self,
        functor: str,
        args: tuple,
        value: object,
        time: int,
        arrival: int | None = None,
    ) -> None:
        """Record a valued-fluent assignment taking effect at ``time``."""
        entries = self._valued[(functor, tuple(args))]
        entries.append((time, time if arrival is None else arrival, value))
        # Keep sorted by occurrence time; assertions are near-ordered, so an
        # insertion-sort step is cheap.
        index = len(entries) - 1
        while index > 0 and entries[index - 1][0] > entries[index][0]:
            entries[index - 1], entries[index] = entries[index], entries[index - 1]
            index -= 1

    # ------------------------------------------------------------------
    # queries (window-relative)
    # ------------------------------------------------------------------

    def events_in_window(
        self, functor: str, window_start: int, query_time: int
    ) -> list[EventOccurrence]:
        """Occurrences of one event type visible at the query time.

        Visible means: occurred in ``(Qi - omega, Qi]`` *and* arrived by
        ``Qi``.  Delayed events that occurred in a previous slide but only
        just arrived are therefore included — Figure 5's recovery.
        """
        self._ensure_sorted()
        return [
            occurrence
            for occurrence in self._events.get(functor, ())
            if window_start < occurrence.time <= query_time
            and occurrence.arrival <= query_time
        ]

    def event_functors(self) -> list[str]:
        """All event types ever asserted."""
        return list(self._events)

    def value_at(
        self, functor: str, args: tuple, timepoint: int, query_time: int
    ) -> object | None:
        """Value of a valued fluent at a timepoint (``None`` if unset).

        Only assertions that have arrived by the query time are considered.
        """
        entries = self._valued.get((functor, tuple(args)))
        if not entries:
            return None
        best: object | None = None
        best_time = None
        # Entries are sorted by occurrence time; scan backwards from the
        # insertion point for the latest arrived assignment <= timepoint.
        times = [entry[0] for entry in entries]
        index = bisect_right(times, timepoint) - 1
        while index >= 0:
            time, arrival, value = entries[index]
            if arrival <= query_time:
                best, best_time = value, time
                break
            index -= 1
        del best_time
        return best

    def valued_instances(self, functor: str) -> list[tuple]:
        """Known argument tuples of a valued fluent."""
        return [args for (name, args) in self._valued if name == functor]

    # ------------------------------------------------------------------
    # forgetting
    # ------------------------------------------------------------------

    def forget_before(self, horizon: int) -> int:
        """Drop events at or before the horizon; returns how many were kept.

        Valued fluents keep their latest pre-horizon assignment per instance
        (the value persists into the window); earlier ones are dropped.
        """
        self._ensure_sorted()
        kept = 0
        for functor in list(self._events):
            remaining = [
                occurrence
                for occurrence in self._events[functor]
                if occurrence.time > horizon
            ]
            if remaining:
                self._events[functor] = remaining
                kept += len(remaining)
            else:
                del self._events[functor]
        for key in list(self._valued):
            entries = self._valued[key]
            times = [entry[0] for entry in entries]
            cut = bisect_right(times, horizon) - 1
            if cut > 0:
                self._valued[key] = entries[cut:]
        return kept

    def event_count(self) -> int:
        """Total stored event occurrences."""
        return sum(len(entries) for entries in self._events.values())

    def _ensure_sorted(self) -> None:
        if self._events_sorted:
            return
        for occurrences in self._events.values():
            occurrences.sort(key=lambda occurrence: occurrence.time)
        self._events_sorted = True
