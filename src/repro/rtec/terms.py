"""Logical variables and unification for the rule language.

RTEC rules quantify over vessels, areas, coordinates and counts.  We keep the
term language deliberately small: a pattern is a constant, a :class:`Var`, or
a (possibly nested) tuple of patterns; ground values are any hashable Python
values.  Bindings are plain dicts from variable names to ground values.
"""

from dataclasses import dataclass

Bindings = dict[str, object]


@dataclass(frozen=True)
class Var:
    """A logical variable, identified by name (paper convention: uppercase)."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


def unify(pattern, value, bindings: Bindings) -> Bindings | None:
    """Match a pattern against a ground value under existing bindings.

    Returns the extended bindings on success (a *new* dict; the input is not
    mutated) or ``None`` on mismatch.
    """
    if isinstance(pattern, Var):
        if pattern.name in bindings:
            return bindings if bindings[pattern.name] == value else None
        extended = dict(bindings)
        extended[pattern.name] = value
        return extended
    if isinstance(pattern, tuple):
        if not isinstance(value, tuple) or len(pattern) != len(value):
            return None
        current: Bindings | None = bindings
        for sub_pattern, sub_value in zip(pattern, value):
            current = unify(sub_pattern, sub_value, current)
            if current is None:
                return None
        return current
    return bindings if pattern == value else None


def unify_args(
    patterns: tuple, values: tuple, bindings: Bindings
) -> Bindings | None:
    """Unify an argument tuple element-wise."""
    return unify(patterns, values, bindings)


def bind(pattern, bindings: Bindings):
    """Instantiate a pattern under bindings.

    Raises ``KeyError`` if the pattern contains a variable with no binding —
    rule bodies are expected to be range-restricted, so every head variable
    is bound by the time the head is instantiated.
    """
    if isinstance(pattern, Var):
        return bindings[pattern.name]
    if isinstance(pattern, tuple):
        return tuple(bind(item, bindings) for item in pattern)
    return pattern


def is_ground(pattern) -> bool:
    """Whether a pattern contains no variables."""
    if isinstance(pattern, Var):
        return False
    if isinstance(pattern, tuple):
        return all(is_ground(item) for item in pattern)
    return True


def pattern_variables(pattern) -> set[str]:
    """Names of all variables occurring in a pattern."""
    if isinstance(pattern, Var):
        return {pattern.name}
    if isinstance(pattern, tuple):
        names: set[str] = set()
        for item in pattern:
            names |= pattern_variables(item)
        return names
    return set()
