"""The declarative rule language of the engine.

A rule has a head — ``initiatedAt(F(args)=V, T)``, ``terminatedAt(...)`` or
``happensAt(E(args), T)`` — and an ordered body of literals evaluated
left-to-right over variable bindings:

* :class:`HappensAt` — an event occurrence pattern; the first body literal
  is the rule's *trigger* and binds the rule time ``T``;
* :class:`HoldsAt` — a fluent-value lookup at the (bound) rule time;
* :class:`StaticJoin` — an atemporal predicate: fact-table lookup or a
  Python callable, possibly *enumerating* new bindings (e.g. ``close``
  enumerating the areas near a coordinate);
* :class:`Guard` — a boolean test over bound variables (e.g. ``N > 3``).

Example — rule-set (3) of the paper::

    initiated(
        fluent="suspicious", args=(Var("Area"),), value=True,
        body=[
            HappensAt(Start("stopped", (Var("Vessel"),), True)),
            HoldsAt("coord", (Var("Vessel"),), (Var("Lon"), Var("Lat"))),
            StaticJoin(close_areas, inputs=("Lon", "Lat"), outputs=("Area",)),
            HoldsAt("vesselsStoppedIn", (Var("Area"),), Var("N")),
            Guard(lambda n: n > 3, ("N",)),
        ],
    )
"""

from collections.abc import Callable, Iterable
from dataclasses import dataclass

# Var is re-exported: rule authors write patterns like ``(Var("Area"),)``
# next to the combinators defined here (see the module docstring).
from repro.rtec.terms import Var as Var
from repro.rtec.terms import pattern_variables

#: Name of the implicit time variable every rule binds.
TIME_VARIABLE = "T"


# ----------------------------------------------------------------------
# event patterns
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EventPattern:
    """Pattern over plain (input or derived) event occurrences."""

    functor: str
    args: tuple = ()


@dataclass(frozen=True)
class Start:
    """The built-in ``start(F=V)`` event: each maximal interval's left end."""

    fluent: str
    args: tuple = ()
    value: object = True


@dataclass(frozen=True)
class End:
    """The built-in ``end(F=V)`` event: each closed interval's right end."""

    fluent: str
    args: tuple = ()
    value: object = True


# ----------------------------------------------------------------------
# body literals
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HappensAt:
    """``happensAt(E, T)``: match event occurrences, binding args and time."""

    pattern: EventPattern | Start | End
    time_variable: str = TIME_VARIABLE


@dataclass(frozen=True)
class HoldsAt:
    """``holdsAt(F(args)=V, T)`` at the bound time variable.

    With an unbound value pattern this is a lookup (binds the value); with
    unbound args it enumerates the known ground instances of the fluent.
    """

    fluent: str
    args: tuple = ()
    value: object = True
    time_variable: str = TIME_VARIABLE


@dataclass(frozen=True)
class StaticJoin:
    """An atemporal predicate backed by a Python callable.

    ``callable(*input_values)`` must return either a boolean (when
    ``outputs`` is empty) or an iterable of output-value tuples, one per
    solution.  All ``inputs`` must be bound when the literal is reached.
    """

    predicate: Callable
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(
                self, "name", getattr(self.predicate, "__name__", "static")
            )


@dataclass(frozen=True)
class Guard:
    """A boolean filter over bound variables."""

    test: Callable[..., bool]
    variables: tuple[str, ...]


@dataclass(frozen=True)
class NotHappensAt:
    """Negation as failure over events: no matching occurrence at ``T``.

    The time variable must already be bound (safe negation); the pattern's
    argument variables may be partially bound — the literal succeeds when
    *no* occurrence at the bound time unifies with the pattern, and it
    never produces new bindings.
    """

    pattern: EventPattern | Start | End
    time_variable: str = TIME_VARIABLE


@dataclass(frozen=True)
class NotHoldsAt:
    """Negation as failure over fluents: ``F(args) != value`` at ``T``.

    Both the time variable and the argument pattern must be bound when the
    literal is reached; it succeeds when no matching fluent instance holds
    a unifying value at that time.
    """

    fluent: str
    args: tuple = ()
    value: object = True
    time_variable: str = TIME_VARIABLE


BodyLiteral = HappensAt | HoldsAt | StaticJoin | Guard | NotHappensAt | NotHoldsAt


# ----------------------------------------------------------------------
# heads and rules
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class InitiatedHead:
    """``initiatedAt(fluent(args) = value, T)``."""

    fluent: str
    args: tuple
    value: object


@dataclass(frozen=True)
class TerminatedHead:
    """``terminatedAt(fluent(args) = value, T)``."""

    fluent: str
    args: tuple
    value: object


@dataclass(frozen=True)
class HappensHead:
    """``happensAt(event(args), T)`` — a derived (complex) event."""

    event: str
    args: tuple


Head = InitiatedHead | TerminatedHead | HappensHead


@dataclass(frozen=True)
class Rule:
    """A complete rule: head, ordered body, and the referenced symbols."""

    head: Head
    body: tuple[BodyLiteral, ...]

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("a rule needs at least one body literal")
        if not isinstance(self.body[0], HappensAt):
            raise ValueError(
                "the first body literal must be a HappensAt trigger "
                "(RTEC rules are event-driven)"
            )

    def referenced_fluents(self) -> set[str]:
        """Fluents this rule reads (for dependency stratification).

        Negated literals count too: a stratum must be fully evaluated
        before anything negating it.
        """
        fluents: set[str] = set()
        for literal in self.body:
            if isinstance(literal, (HoldsAt, NotHoldsAt)):
                fluents.add(literal.fluent)
            elif isinstance(literal, (HappensAt, NotHappensAt)) and isinstance(
                literal.pattern, (Start, End)
            ):
                fluents.add(literal.pattern.fluent)
        return fluents

    def referenced_events(self) -> set[str]:
        """Plain events this rule reads (including under negation)."""
        return {
            literal.pattern.functor
            for literal in self.body
            if isinstance(literal, (HappensAt, NotHappensAt))
            and isinstance(literal.pattern, EventPattern)
        }

    def head_variables(self) -> set[str]:
        """Variables occurring in the head."""
        names = pattern_variables(self.head.args)
        if isinstance(self.head, (InitiatedHead, TerminatedHead)):
            names |= pattern_variables(self.head.value)
        return names


# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------


def initiated(
    fluent: str, args: tuple, value: object, body: Iterable[BodyLiteral]
) -> Rule:
    """Build an ``initiatedAt`` rule."""
    return Rule(InitiatedHead(fluent, args, value), tuple(body))


def terminated(
    fluent: str, args: tuple, value: object, body: Iterable[BodyLiteral]
) -> Rule:
    """Build a ``terminatedAt`` rule."""
    return Rule(TerminatedHead(fluent, args, value), tuple(body))


def happens_head(event: str, args: tuple, body: Iterable[BodyLiteral]) -> Rule:
    """Build a derived-event (``happensAt`` head) rule."""
    return Rule(HappensHead(event, args), tuple(body))


def fact_table(name: str, rows: Iterable[tuple]) -> Callable:
    """A static predicate backed by an in-memory fact table.

    The resulting callable enumerates rows matching its (bound) input
    columns; pass it to :class:`StaticJoin` with the trailing columns as
    outputs.  For example ``fishing(Vessel)`` facts become a one-column
    table used with ``inputs=("Vessel",), outputs=()``.
    """
    stored = [tuple(row) for row in rows]

    def lookup(*inputs):
        prefix_length = len(inputs)
        return [
            row[prefix_length:]
            for row in stored
            if row[:prefix_length] == tuple(inputs)
        ]

    lookup.__name__ = name
    return lookup
