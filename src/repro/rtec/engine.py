"""The RTEC recognition engine.

Recognition runs at query times ``Q1, Q2, ...``: at each ``Qi`` the engine
considers input events that occurred in ``(Qi - omega, Qi]`` and have arrived
by ``Qi`` (working memory), evaluates the derived fluents and events in
dependency order, and computes the maximal intervals of every fluent via the
``initiatedAt`` / ``terminatedAt`` / ``broken`` semantics of Section 4.1.

Fluent intervals still open at a query time persist to the next step (the
law of inertia does not forget with the window: a vessel stopped for six
hours stays ``stopped`` even after its ``stop_start`` event leaves the
window).  Everything else is recomputed within the window, which naturally
incorporates delayed events, as in Figure 5.
"""

from collections import defaultdict
from dataclasses import dataclass, field

from repro import obs
from repro.rtec.intervals import (
    Interval,
    OPEN,
    end_points,
    holds_at,
    intervals_from_points,
    start_points,
)
from repro.rtec.rules import (
    EventPattern,
    Guard,
    HappensAt,
    HappensHead,
    HoldsAt,
    InitiatedHead,
    NotHappensAt,
    NotHoldsAt,
    Rule,
    Start,
    StaticJoin,
    TerminatedHead,
)
from repro.rtec.terms import Bindings, bind, is_ground, unify
from repro.rtec.working_memory import WorkingMemory

#: fluent store layout: functor -> args -> value -> interval list
FluentStore = dict[str, dict[tuple, dict[object, list[Interval]]]]
#: event store layout: functor -> list of (args, time)
EventStore = dict[str, list[tuple[tuple, int]]]


class ComputedFluent:
    """A fluent whose intervals are computed by Python code.

    Subclasses implement aggregate fluents that would need recursive
    counting in pure rules — e.g. ``vesselsStoppedIn(Area)=N``.  They
    declare their dependencies so stratification can order them.
    """

    functor: str = ""
    depends_on_fluents: frozenset[str] = frozenset()
    depends_on_events: frozenset[str] = frozenset()

    def compute(
        self, view: "EngineView"
    ) -> dict[tuple, dict[object, list[Interval]]]:
        """Return ``{args: {value: intervals}}`` for the current window."""
        raise NotImplementedError


@dataclass
class EngineView:
    """Read access to the evaluation state, for computed fluents."""

    window_start: int
    query_time: int
    fluents: FluentStore
    events: EventStore
    memory: WorkingMemory

    def fluent_instances(self, functor: str) -> dict[tuple, dict[object, list[Interval]]]:
        """All ground instances of a derived fluent with their intervals."""
        return self.fluents.get(functor, {})

    def value_at(self, functor: str, args: tuple, timepoint: int) -> object | None:
        """Value of an input valued fluent at a timepoint."""
        return self.memory.value_at(functor, args, timepoint, self.query_time)

    def occurrences(self, functor: str) -> list[tuple[tuple, int]]:
        """Event occurrences (args, time) visible in the window."""
        return self.events.get(functor, [])


@dataclass
class RecognitionResult:
    """Output of one recognition step."""

    query_time: int
    window_start: int
    fluents: FluentStore = field(default_factory=dict)
    events: EventStore = field(default_factory=dict)

    def intervals(
        self, functor: str, args: tuple | None = None, value: object = True
    ) -> list[Interval]:
        """Intervals of one fluent instance (empty when absent)."""
        instances = self.fluents.get(functor, {})
        if args is None:
            merged: list[Interval] = []
            for values in instances.values():
                merged.extend(values.get(value, []))
            return sorted(merged)
        return instances.get(tuple(args), {}).get(value, [])

    def holds_at(
        self, functor: str, args: tuple, timepoint: int, value: object = True
    ) -> bool:
        """Whether a fluent instance holds a value at a timepoint."""
        return holds_at(self.intervals(functor, tuple(args), value), timepoint)

    def occurrences(self, functor: str) -> list[tuple[tuple, int]]:
        """Occurrences of a derived event, as (args, time) pairs."""
        return self.events.get(functor, [])

    def complex_event_count(self) -> int:
        """Total recognized CE instances: intervals plus occurrences."""
        count = sum(
            len(intervals)
            for instances in self.fluents.values()
            for values in instances.values()
            for intervals in values.values()
        )
        count += sum(len(occurrences) for occurrences in self.events.values())
        return count


class RTEC:
    """The Event Calculus run-time engine.

    Parameters
    ----------
    window_seconds:
        The range ``omega`` of the working-memory window.

    Usage::

        engine = RTEC(window_seconds=3600)
        engine.declare_rules(rules)
        engine.working_memory.assert_event("gap", ("vessel1",), 45)
        result = engine.step(query_time=3600)
    """

    def __init__(self, window_seconds: int):
        if window_seconds <= 0:
            raise ValueError(f"window range must be positive: {window_seconds}")
        self.window_seconds = window_seconds
        self.working_memory = WorkingMemory()
        self._initiation_rules: dict[str, list[Rule]] = defaultdict(list)
        self._termination_rules: dict[str, list[Rule]] = defaultdict(list)
        self._event_rules: dict[str, list[Rule]] = defaultdict(list)
        self._computed: dict[str, ComputedFluent] = {}
        self._outputs_fluents: set[str] = set()
        self._outputs_events: set[str] = set()
        # Open intervals persisted across steps: (functor, args) -> (value, ts)
        self._persisted_open: dict[tuple[str, tuple], tuple[object, int]] = {}
        self._order: list[str] | None = None
        self.last_result: RecognitionResult | None = None

    # ------------------------------------------------------------------
    # declaration
    # ------------------------------------------------------------------

    def declare_rules(self, rules: list[Rule]) -> None:
        """Register rules; invalidates the cached evaluation order."""
        for rule in rules:
            head = rule.head
            if isinstance(head, InitiatedHead):
                self._initiation_rules[head.fluent].append(rule)
            elif isinstance(head, TerminatedHead):
                self._termination_rules[head.fluent].append(rule)
            elif isinstance(head, HappensHead):
                self._event_rules[head.event].append(rule)
            else:
                raise TypeError(f"unknown head type: {head!r}")
        self._order = None

    def declare_computed(self, computed: ComputedFluent) -> None:
        """Register a Python-computed fluent."""
        if not computed.functor:
            raise ValueError("computed fluent must set a functor name")
        self._computed[computed.functor] = computed
        self._order = None

    def declare_outputs(
        self, fluents: list[str] | None = None, events: list[str] | None = None
    ) -> None:
        """Name the CE fluents/events reported in recognition results.

        Without a declaration, every derived fluent and event is reported.
        """
        self._outputs_fluents.update(fluents or [])
        self._outputs_events.update(events or [])

    # ------------------------------------------------------------------
    # recognition
    # ------------------------------------------------------------------

    def step(self, query_time: int) -> RecognitionResult:
        """Run recognition at a query time; returns the recognized CEs."""
        with obs.span("rtec.step"):
            return self._step(query_time)

    def _step(self, query_time: int) -> RecognitionResult:
        window_start = query_time - self.window_seconds
        with obs.span("rtec.windowing"):
            self.working_memory.forget_before(window_start)

            fluent_store: FluentStore = {}
            event_store: EventStore = {}
            input_events = 0
            for functor in self.working_memory.event_functors():
                occurrences = self.working_memory.events_in_window(
                    functor, window_start, query_time
                )
                if occurrences:
                    event_store[functor] = [(o.args, o.time) for o in occurrences]
                    input_events += len(occurrences)
        obs.count("rtec.input_events", input_events)

        view = EngineView(
            window_start, query_time, fluent_store, event_store, self.working_memory
        )
        context = _EvalContext(self, view)

        with obs.span("rtec.evaluation"):
            for functor in self._evaluation_order():
                if functor in self._computed:
                    fluent_store[functor] = self._computed[functor].compute(view)
                elif functor in self._event_rules:
                    occurrences = self._derive_event(functor, context)
                    if occurrences:
                        event_store.setdefault(functor, []).extend(occurrences)
                        event_store[functor].sort(key=lambda item: item[1])
                else:
                    fluent_store[functor] = self._derive_fluent(functor, context)
        obs.count("rtec.steps")

        result = RecognitionResult(query_time, window_start)
        report_fluents = self._outputs_fluents or (
            set(self._initiation_rules) | set(self._computed)
        )
        report_events = self._outputs_events or set(self._event_rules)
        result.fluents = {
            functor: fluent_store[functor]
            for functor in report_fluents
            if functor in fluent_store
        }
        result.events = {
            functor: event_store[functor]
            for functor in report_events
            if functor in event_store
        }
        self.last_result = result
        return result

    def run_retrospective(
        self, slide_seconds: int, until: int, from_time: int = 0
    ) -> list[RecognitionResult]:
        """Replay recognition over already-asserted history (Section 4.2).

        "CE recognition may be performed retrospectively — e.g., at the end
        of each day in order to evaluate the activity of a particular fleet
        of vessels."  Steps the engine at every multiple of the slide in
        ``(from_time, until]`` and returns the per-query results.  Assert
        the whole day's events into the working memory first.
        """
        if slide_seconds <= 0:
            raise ValueError(f"slide must be positive: {slide_seconds}")
        results = []
        query_time = from_time + slide_seconds
        while query_time <= until:
            results.append(self.step(query_time))
            query_time += slide_seconds
        return results

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------

    def _derive_fluent(
        self, functor: str, context: "_EvalContext"
    ) -> dict[tuple, dict[object, list[Interval]]]:
        """Compute maximal intervals for every instance of one fluent."""
        initiations: dict[tuple, dict[object, list[int]]] = defaultdict(
            lambda: defaultdict(list)
        )
        terminations: dict[tuple, dict[object, list[int]]] = defaultdict(
            lambda: defaultdict(list)
        )
        for rule in self._initiation_rules.get(functor, []):
            for bindings in context.solve(rule.body):
                args = bind(rule.head.args, bindings)
                value = bind(rule.head.value, bindings)
                timepoint = bindings[rule.body[0].time_variable]
                initiations[args][value].append(timepoint)
        for rule in self._termination_rules.get(functor, []):
            for bindings in context.solve(rule.body):
                args = bind(rule.head.args, bindings)
                value = bind(rule.head.value, bindings)
                timepoint = bindings[rule.body[0].time_variable]
                terminations[args][value].append(timepoint)

        # Persisted open intervals act as initiations from the past.
        for (persisted_functor, args), (value, ts) in self._persisted_open.items():
            if persisted_functor == functor:
                initiations[args][value].append(ts)

        instances: dict[tuple, dict[object, list[Interval]]] = {}
        all_args = set(initiations) | set(terminations)
        for args in all_args:
            value_intervals: dict[object, list[Interval]] = {}
            values = set(initiations[args]) | set(terminations[args])
            for value in values:
                inits = initiations[args].get(value, [])
                if not inits:
                    continue
                # Rule (2): initiating any other value breaks this one.
                breaks = list(terminations[args].get(value, []))
                for other_value, other_inits in initiations[args].items():
                    if other_value != value:
                        breaks.extend(other_inits)
                intervals = intervals_from_points(inits, breaks)
                if intervals:
                    value_intervals[value] = intervals
            if value_intervals:
                instances[args] = value_intervals

        self._update_persistence(functor, instances)
        return instances

    def _derive_event(
        self, functor: str, context: "_EvalContext"
    ) -> list[tuple[tuple, int]]:
        """Compute occurrences of a derived (complex) event."""
        occurrences: set[tuple[tuple, int]] = set()
        for rule in self._event_rules.get(functor, []):
            for bindings in context.solve(rule.body):
                args = bind(rule.head.args, bindings)
                timepoint = bindings[rule.body[0].time_variable]
                occurrences.add((args, timepoint))
        return sorted(occurrences, key=lambda item: (item[1], item[0]))

    def _update_persistence(
        self, functor: str, instances: dict[tuple, dict[object, list[Interval]]]
    ) -> None:
        """Remember open intervals so inertia outlives the window."""
        stale = [
            key for key in self._persisted_open if key[0] == functor
        ]
        for key in stale:
            del self._persisted_open[key]
        for args, value_intervals in instances.items():
            for value, intervals in value_intervals.items():
                if intervals and intervals[-1][1] == OPEN:
                    self._persisted_open[(functor, args)] = (
                        value,
                        intervals[-1][0],
                    )

    # ------------------------------------------------------------------
    # stratification
    # ------------------------------------------------------------------

    def _evaluation_order(self) -> list[str]:
        """Topological order of derived fluents/events by dependency."""
        if self._order is not None:
            return self._order
        nodes: set[str] = (
            set(self._initiation_rules)
            | set(self._termination_rules)
            | set(self._event_rules)
            | set(self._computed)
        )
        dependencies: dict[str, set[str]] = {node: set() for node in nodes}
        for functor in set(self._initiation_rules) | set(self._termination_rules):
            rules = self._initiation_rules.get(functor, []) + self._termination_rules.get(
                functor, []
            )
            for rule in rules:
                dependencies[functor] |= (
                    rule.referenced_fluents() | rule.referenced_events()
                ) & nodes
        for functor, rules in self._event_rules.items():
            for rule in rules:
                dependencies[functor] |= (
                    rule.referenced_fluents() | rule.referenced_events()
                ) & nodes
        for functor, computed in self._computed.items():
            dependencies[functor] |= (
                set(computed.depends_on_fluents) | set(computed.depends_on_events)
            ) & nodes

        order: list[str] = []
        visiting: set[str] = set()
        visited: set[str] = set()

        def visit(node: str) -> None:
            if node in visited:
                return
            if node in visiting:
                raise ValueError(
                    f"cyclic fluent dependency through {node!r}; "
                    "RTEC event descriptions must be hierarchical"
                )
            visiting.add(node)
            for dependency in sorted(dependencies[node]):
                visit(dependency)
            visiting.discard(node)
            visited.add(node)
            order.append(node)

        for node in sorted(nodes):
            visit(node)
        self._order = order
        return order


class _EvalContext:
    """Left-to-right body evaluation over variable bindings."""

    def __init__(self, engine: RTEC, view: EngineView):
        self._engine = engine
        self._view = view

    def solve(self, body: tuple) -> list[Bindings]:
        """All binding solutions of a rule body."""
        solutions: list[Bindings] = [{}]
        for literal in body:
            if not solutions:
                return []
            if isinstance(literal, HappensAt):
                solutions = self._solve_happens(literal, solutions)
            elif isinstance(literal, HoldsAt):
                solutions = self._solve_holds(literal, solutions)
            elif isinstance(literal, NotHappensAt):
                solutions = self._solve_negated_happens(literal, solutions)
            elif isinstance(literal, NotHoldsAt):
                solutions = self._solve_negated_holds(literal, solutions)
            elif isinstance(literal, StaticJoin):
                solutions = self._solve_static(literal, solutions)
            elif isinstance(literal, Guard):
                solutions = [
                    bindings
                    for bindings in solutions
                    if literal.test(
                        *(bindings[name] for name in literal.variables)
                    )
                ]
            else:
                raise TypeError(f"unknown body literal: {literal!r}")
        return solutions

    # -- happensAt ------------------------------------------------------

    def _solve_happens(
        self, literal: HappensAt, solutions: list[Bindings]
    ) -> list[Bindings]:
        occurrences = self._occurrences(literal.pattern)
        extended: list[Bindings] = []
        for bindings in solutions:
            bound_time = bindings.get(literal.time_variable)
            for args, timepoint in occurrences:
                if bound_time is not None and timepoint != bound_time:
                    continue
                unified = unify(self._pattern_args(literal.pattern), args, bindings)
                if unified is None:
                    continue
                if bound_time is None:
                    unified = dict(unified)
                    unified[literal.time_variable] = timepoint
                extended.append(unified)
        return extended

    def _pattern_args(self, pattern) -> tuple:
        return pattern.args

    def _occurrences(self, pattern) -> list[tuple[tuple, int]]:
        view = self._view
        if isinstance(pattern, EventPattern):
            return view.events.get(pattern.functor, [])
        # start/end of fluent intervals, clipped to the window.
        instances = view.fluents.get(pattern.fluent, {})
        occurrences: list[tuple[tuple, int]] = []
        for args, value_intervals in instances.items():
            for value, intervals in value_intervals.items():
                matched = unify(pattern.value, value, {})
                if matched is None:
                    continue
                if isinstance(pattern, Start):
                    points = start_points(intervals)
                else:
                    points = end_points(intervals)
                for point in points:
                    if view.window_start < point <= view.query_time:
                        occurrences.append((args, point))
        occurrences.sort(key=lambda item: item[1])
        return occurrences

    def _solve_negated_happens(
        self, literal: NotHappensAt, solutions: list[Bindings]
    ) -> list[Bindings]:
        """Keep bindings with no matching occurrence at the bound time."""
        occurrences = self._occurrences(literal.pattern)
        surviving: list[Bindings] = []
        for bindings in solutions:
            bound_time = bindings.get(literal.time_variable)
            if bound_time is None:
                raise ValueError(
                    "NotHappensAt reached with unbound time variable "
                    f"{literal.time_variable!r}; negation must follow the "
                    "trigger that binds it"
                )
            matched = any(
                timepoint == bound_time
                and unify(literal.pattern.args, args, bindings) is not None
                for args, timepoint in occurrences
            )
            if not matched:
                surviving.append(bindings)
        return surviving

    def _solve_negated_holds(
        self, literal: NotHoldsAt, solutions: list[Bindings]
    ) -> list[Bindings]:
        """Keep bindings whose fluent instance does not hold the value."""
        positive = HoldsAt(
            literal.fluent, literal.args, literal.value, literal.time_variable
        )
        surviving: list[Bindings] = []
        for bindings in solutions:
            if not self._solve_holds(positive, [bindings]):
                surviving.append(bindings)
        return surviving

    # -- holdsAt --------------------------------------------------------

    def _solve_holds(
        self, literal: HoldsAt, solutions: list[Bindings]
    ) -> list[Bindings]:
        view = self._view
        extended: list[Bindings] = []
        derived = view.fluents.get(literal.fluent)
        for bindings in solutions:
            timepoint = bindings.get(literal.time_variable)
            if timepoint is None:
                raise ValueError(
                    f"holdsAt({literal.fluent}) reached with unbound time "
                    f"variable {literal.time_variable!r}; order the body so a "
                    "happensAt trigger binds it first"
                )
            if derived is not None:
                extended.extend(
                    self._match_derived(literal, derived, bindings, timepoint)
                )
            else:
                extended.extend(self._match_valued(literal, bindings, timepoint))
        return extended

    def _match_derived(
        self,
        literal: HoldsAt,
        instances: dict[tuple, dict[object, list[Interval]]],
        bindings: Bindings,
        timepoint: int,
    ) -> list[Bindings]:
        matches: list[Bindings] = []
        for args, value_intervals in instances.items():
            unified_args = unify(literal.args, args, bindings)
            if unified_args is None:
                continue
            for value, intervals in value_intervals.items():
                unified = unify(literal.value, value, unified_args)
                if unified is None:
                    continue
                if holds_at(intervals, timepoint):
                    matches.append(unified)
        return matches

    def _match_valued(
        self, literal: HoldsAt, bindings: Bindings, timepoint: int
    ) -> list[Bindings]:
        view = self._view
        matches: list[Bindings] = []
        if is_ground(bind_safe(literal.args, bindings)):
            candidate_args = [bind(literal.args, bindings)]
        else:
            candidate_args = [
                args
                for args in view.memory.valued_instances(literal.fluent)
                if unify(literal.args, args, bindings) is not None
            ]
        for args in candidate_args:
            value = view.memory.value_at(
                literal.fluent, args, timepoint, view.query_time
            )
            if value is None:
                continue
            unified = unify(literal.args, args, bindings)
            if unified is None:
                continue
            unified = unify(literal.value, value, unified)
            if unified is not None:
                matches.append(unified)
        return matches

    # -- statics ---------------------------------------------------------

    def _solve_static(
        self, literal: StaticJoin, solutions: list[Bindings]
    ) -> list[Bindings]:
        extended: list[Bindings] = []
        for bindings in solutions:
            try:
                inputs = [bindings[name] for name in literal.inputs]
            except KeyError as exc:
                raise ValueError(
                    f"static predicate {literal.name!r} reached with unbound "
                    f"input variable {exc.args[0]!r}"
                ) from exc
            result = literal.predicate(*inputs)
            if not literal.outputs:
                if isinstance(result, bool):
                    truthy = result
                elif hasattr(result, "__iter__"):
                    truthy = any(True for _ in result)
                else:
                    truthy = bool(result)
                if truthy:
                    extended.append(bindings)
                continue
            for row in result:
                row_tuple = row if isinstance(row, tuple) else (row,)
                if len(row_tuple) != len(literal.outputs):
                    raise ValueError(
                        f"static predicate {literal.name!r} yielded a row of "
                        f"width {len(row_tuple)}, expected {len(literal.outputs)}"
                    )
                current = dict(bindings)
                consistent = True
                for name, value in zip(literal.outputs, row_tuple):
                    if name in current:
                        if current[name] != value:
                            consistent = False
                            break
                    else:
                        current[name] = value
                if consistent:
                    extended.append(current)
        return extended


def bind_safe(pattern, bindings: Bindings):
    """Like :func:`bind` but leaves unbound variables in place."""
    from repro.rtec.terms import Var

    if isinstance(pattern, Var):
        return bindings.get(pattern.name, pattern)
    if isinstance(pattern, tuple):
        return tuple(bind_safe(item, bindings) for item in pattern)
    return pattern
