"""RTEC: the Event Calculus for Run-Time reasoning (Section 4).

A from-scratch Python implementation of the engine the paper runs in YAP
Prolog.  The Event Calculus is a logic-programming formalism for reasoning
about events and their effects over linear integer time: *fluents* hold
values over maximal intervals, events *initiate* and *terminate* those
values, and the law of inertia carries values forward until broken.

The engine supports:

* declarative ``initiatedAt`` / ``terminatedAt`` rules over patterns of
  ``happensAt`` (events), ``holdsAt`` (fluent values), static predicates and
  guards, with logical variables and unification;
* derived events defined by ``happensAt`` rules (e.g. ``illegalShipping``);
* built-in ``start(F=V)`` / ``end(F=V)`` events at the endpoints of maximal
  intervals;
* computed fluents implemented in Python (e.g. the ``vesselsStoppedIn``
  counter of rule-set (3));
* a windowing working memory: recognition runs at query times ``Q1, Q2, …``,
  considers events within ``(Qi - omega, Qi]``, forgets older ones, and
  tolerates delayed/out-of-order arrivals exactly as in Figure 5;
* dependency stratification so fluents are evaluated bottom-up.
"""

from repro.rtec.engine import RTEC, RecognitionResult
from repro.rtec.intervals import (
    Interval,
    OPEN,
    clip_intervals,
    holds_at,
    intervals_from_points,
    union_intervals,
)
from repro.rtec.rules import (
    End,
    EventPattern,
    Guard,
    HappensAt,
    HoldsAt,
    NotHappensAt,
    NotHoldsAt,
    Rule,
    Start,
    StaticJoin,
    happens_head,
    initiated,
    terminated,
)
from repro.rtec.terms import Var, bind, unify
from repro.rtec.working_memory import WorkingMemory

__all__ = [
    "End",
    "EventPattern",
    "Guard",
    "HappensAt",
    "HoldsAt",
    "Interval",
    "NotHappensAt",
    "NotHoldsAt",
    "OPEN",
    "RTEC",
    "RecognitionResult",
    "Rule",
    "Start",
    "StaticJoin",
    "Var",
    "WorkingMemory",
    "bind",
    "clip_intervals",
    "happens_head",
    "holds_at",
    "initiated",
    "intervals_from_points",
    "terminated",
    "unify",
    "union_intervals",
]
