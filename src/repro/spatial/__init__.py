"""Deterministic spatial indexing for pairwise and area queries.

The package hosts the per-slide grid index over vessel positions
(:mod:`repro.spatial.grid`) and the closest-point-of-approach math
(:mod:`repro.spatial.cpa`) that the pairwise maritime layer
(:mod:`repro.maritime.pairwise`) builds on.  See docs/SPATIAL.md.
"""

from repro.spatial.cpa import closest_point_of_approach
from repro.spatial.grid import SlideGridIndex, StaticBoxIndex

__all__ = [
    "SlideGridIndex",
    "StaticBoxIndex",
    "closest_point_of_approach",
]
