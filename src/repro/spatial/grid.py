"""Per-slide spatial grid index with deterministic iteration order.

Two index flavours, both degree-bucketed uniform grids:

:class:`SlideGridIndex`
    Rebuilt every slide over the fresh vessel positions.  Cells are
    sized so the query radius spans at most one cell of latitude;
    longitude columns tile the full circle and wrap modulo the column
    count, so cells adjacent across the antimeridian are genuine grid
    neighbours.  ``close_pairs`` visits vessels in sorted-MMSI order and
    their neighbour cells in sorted cell order, which makes the emitted
    pair list — and therefore everything recognition derives from it —
    independent of insertion order.  Candidate pairs are screened with
    the trig-free within-radius bound from ``tracking/columnar.py``
    (``(pi*R/2) * sqrt(dphi^2 + dlam^2)`` overestimates the Haversine
    distance, so a bound at or under the radius *proves* proximity)
    before falling back to the exact Haversine.

:class:`StaticBoxIndex`
    Built once over a set of bounding boxes (in practice: area polygons
    expanded by the closeness threshold).  ``candidates(lon, lat)``
    returns the keys of every box whose cell range covers the query
    point's cell, in insertion order — a conservative prefilter that is
    exact when the caller re-checks with the same expanded box, which is
    precisely what :meth:`repro.geo.polygon.GeoPolygon.is_close` does.
"""

import math

from repro.geo.haversine import EARTH_RADIUS_METERS, haversine_meters

#: Trig-free overestimate of the Haversine distance (see
#: ``tracking/columnar.py``): ``d <= (pi*R/2) * sqrt(dphi^2 + dlam^2)``,
#: so a bound at or under the radius proves the pair is within it.
_WITHIN_BOUND = math.pi * EARTH_RADIUS_METERS / 2.0

#: Clamp for ``cos(lat)`` when sizing longitude spans, mirroring
#: ``BoundingBox.expanded``; keeps polar cells finite.
_MIN_COS_LAT = 0.01


def _within_radius(
    lon1: float, lat1: float, lon2: float, lat2: float, radius: float
) -> bool:
    """Exact within-radius test with the cheap bound tried first."""
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    # Take the short way around the antimeridian; the Haversine itself is
    # periodic, so only the screen needs the normalisation.
    if dlam > math.pi:
        dlam -= 2.0 * math.pi
    elif dlam < -math.pi:
        dlam += 2.0 * math.pi
    if _WITHIN_BOUND * math.sqrt(dphi * dphi + dlam * dlam) <= radius:
        return True
    return haversine_meters(lon1, lat1, lon2, lat2) <= radius


class SlideGridIndex:
    """Uniform grid over one slide's vessel positions.

    Parameters
    ----------
    radius_meters:
        The proximity radius queries will use.  Cell height equals the
        radius (in latitude degrees), so a radius query never needs to
        look further than one row up or down.
    """

    def __init__(self, radius_meters: float):
        if radius_meters <= 0:
            raise ValueError("radius_meters must be positive")
        self.radius_meters = radius_meters
        #: Cell height in degrees: the radius expressed as latitude arc.
        self.cell_degrees = math.degrees(radius_meters / EARTH_RADIUS_METERS)
        #: Longitude columns tile the full circle so neighbour lookups can
        #: wrap modulo the column count across the antimeridian.  Flooring
        #: makes columns at least ``cell_degrees`` wide.
        self.columns = max(1, math.floor(360.0 / self.cell_degrees))
        self._column_degrees = 360.0 / self.columns
        self._points: dict[int, tuple[float, float]] = {}
        self._cells: dict[tuple[int, int], list[int]] = {}
        #: Ordered candidate pairs examined by the last ``close_pairs``
        #: call — the O(n·k) cost the benchmark harness records.
        self.candidates_examined = 0

    def __len__(self) -> int:
        return len(self._points)

    def _cell(self, lon: float, lat: float) -> tuple[int, int]:
        """Grid cell of a coordinate; columns wrap, rows do not."""
        col = math.floor((lon + 180.0) / self._column_degrees) % self.columns
        row = math.floor(lat / self.cell_degrees)
        return row, col

    def insert(self, key: int, lon: float, lat: float) -> None:
        """Register one position under ``key`` (an MMSI, typically)."""
        if key in self._points:
            raise ValueError(f"duplicate key {key}")
        self._points[key] = (lon, lat)
        self._cells.setdefault(self._cell(lon, lat), []).append(key)

    def _column_span(self, lat: float) -> int:
        """Columns the radius spans at this latitude, either side."""
        cos_lat = max(_MIN_COS_LAT, math.cos(math.radians(lat)))
        lon_degrees = self.cell_degrees / cos_lat
        return math.ceil(lon_degrees / self._column_degrees)

    def _neighbour_keys(self, lon: float, lat: float) -> list[int]:
        """Keys of every cell within radius reach of the coordinate.

        Cells are visited in sorted ``(row, wrapped column)`` order and
        each cell's occupants in insertion order; callers that need a
        total order sort the result (``close_pairs`` relies on sorted
        MMSIs instead).
        """
        row, col = self._cell(lon, lat)
        span = self._column_span(lat)
        keys: list[int] = []
        for delta_row in (-1, 0, 1):
            for delta_col in range(-span, span + 1):
                cell = (row + delta_row, (col + delta_col) % self.columns)
                bucket = self._cells.get(cell)
                if bucket is not None:
                    keys.extend(bucket)
        return keys

    def near(self, lon: float, lat: float) -> list[int]:
        """Keys within ``radius_meters`` of a query point, sorted."""
        return sorted(
            key
            for key in self._neighbour_keys(lon, lat)
            if _within_radius(
                lon, lat, self._points[key][0], self._points[key][1],
                self.radius_meters,
            )
        )

    def close_pairs(self) -> list[tuple[int, int]]:
        """All key pairs within ``radius_meters``, as sorted ``(a, b)``
        tuples with ``a < b``, in ascending order.

        Iterates keys in sorted order and, per key, only partners with a
        greater key — each pair is examined exactly once.  The number of
        screened candidates lands in :attr:`candidates_examined`.
        """
        self.candidates_examined = 0
        pairs: list[tuple[int, int]] = []
        for key in sorted(self._points):
            lon, lat = self._points[key]
            for other in sorted(self._neighbour_keys(lon, lat)):
                if other <= key:
                    continue
                self.candidates_examined += 1
                other_lon, other_lat = self._points[other]
                if _within_radius(
                    lon, lat, other_lon, other_lat, self.radius_meters
                ):
                    pairs.append((key, other))
        return pairs


class StaticBoxIndex:
    """Cell index over bounding boxes for point-in-box prefiltering.

    ``boxes`` is a sequence of ``(key, bounding_box)`` pairs; the boxes
    are bucketed into every grid cell they overlap.  ``candidates``
    returns, in insertion order, the keys of the boxes whose cell range
    covers the query point — a superset of the boxes containing it, so
    callers follow up with their exact test.
    """

    def __init__(self, boxes) -> None:
        boxes = list(boxes)
        #: Cell size: the largest box dimension, so every box spans at
        #: most two cells per axis; floored to keep tiny inputs sane.
        largest = 0.0
        for _, box in boxes:
            largest = max(
                largest, box.max_lon - box.min_lon, box.max_lat - box.min_lat
            )
        self.cell_degrees = max(largest, 0.01)
        self._cells: dict[tuple[int, int], list[int]] = {}
        for key, box in boxes:
            min_col = math.floor(box.min_lon / self.cell_degrees)
            max_col = math.floor(box.max_lon / self.cell_degrees)
            min_row = math.floor(box.min_lat / self.cell_degrees)
            max_row = math.floor(box.max_lat / self.cell_degrees)
            for row in range(min_row, max_row + 1):
                for col in range(min_col, max_col + 1):
                    self._cells.setdefault((row, col), []).append(key)

    def candidates(self, lon: float, lat: float) -> list[int]:
        """Keys of boxes whose cells cover the point, insertion order."""
        cell = (
            math.floor(lat / self.cell_degrees),
            math.floor(lon / self.cell_degrees),
        )
        return self._cells.get(cell, [])
