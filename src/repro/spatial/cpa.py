"""Closest point of approach (CPA/TCPA) between two moving vessels.

Standard collision-avoidance kinematics on a local tangent plane: with
relative position ``dr`` and relative velocity ``dv``,

* ``tcpa = -(dr . dv) / |dv|^2`` — seconds until the pair is closest
  (negative means they are already diverging);
* ``dcpa = |dr + dv * tcpa|`` — the separation at that moment, meters.

Positions are projected equirectangularly around the mean latitude —
exact enough at proximity-radius scale (a few kilometres), and, being
pure ``math`` on the inputs, bit-deterministic across runs.  Headings
follow the AIS convention: degrees clockwise from true north.
"""

import math

from repro.geo.haversine import EARTH_RADIUS_METERS


def closest_point_of_approach(
    lon1: float,
    lat1: float,
    speed1_mps: float,
    heading1_degrees: float,
    lon2: float,
    lat2: float,
    speed2_mps: float,
    heading2_degrees: float,
) -> tuple[float, float]:
    """Return ``(tcpa_seconds, dcpa_meters)`` for two moving vessels.

    With zero relative velocity the pair neither closes nor opens:
    ``tcpa`` is 0 and ``dcpa`` is the current separation.
    """
    reference = math.radians((lat1 + lat2) / 2.0)
    cos_reference = math.cos(reference)
    dlam = math.radians(lon2 - lon1)
    if dlam > math.pi:
        dlam -= 2.0 * math.pi
    elif dlam < -math.pi:
        dlam += 2.0 * math.pi
    x = dlam * cos_reference * EARTH_RADIUS_METERS
    y = math.radians(lat2 - lat1) * EARTH_RADIUS_METERS

    theta1 = math.radians(heading1_degrees)
    theta2 = math.radians(heading2_degrees)
    dvx = speed2_mps * math.sin(theta2) - speed1_mps * math.sin(theta1)
    dvy = speed2_mps * math.cos(theta2) - speed1_mps * math.cos(theta1)

    speed_squared = dvx * dvx + dvy * dvy
    if speed_squared <= 1e-12:
        return 0.0, math.hypot(x, y)
    tcpa = -(x * dvx + y * dvy) / speed_squared
    dcpa = math.hypot(x + dvx * tcpa, y + dvy * tcpa)
    return tcpa, dcpa
