"""Tracking backend registry: pick a kernel at runtime, keep the events.

Three interchangeable kernels implement the Mobility Tracker contract:

``scalar``
    :class:`~repro.tracking.tracker.MobilityTracker` — the reference
    per-tuple implementation, clearest to read, slowest to run.
``array``
    :class:`~repro.tracking.columnar.ColumnarTracker` — the fused
    batch/columnar kernel over :mod:`array` columns; the default.
``numpy``
    :class:`~repro.tracking.columnar.NumpyColumnarTracker` — the
    columnar kernel with numpy-vectorized trigonometry; registered only
    when numpy imports.

All three emit byte-identical event streams (see
``tests/tracking/test_columnar_parity.py``), so the choice is purely a
throughput knob: ``SystemConfig.tracking_backend``, the ``repro``
CLI's ``--tracking-backend`` flag, and the benchmark harness all route
through :func:`create_tracker`.
"""

from repro.tracking.columnar import ColumnarTracker, NumpyColumnarTracker
from repro.tracking.config import TrackingParameters
from repro.tracking.tracker import MobilityTracker

#: The backend every system uses unless configured otherwise.
DEFAULT_BACKEND = "array"

_REGISTRY: dict[str, type] = {
    "scalar": MobilityTracker,
    "array": ColumnarTracker,
}

try:  # numpy ships with the toolchain but stays optional by contract
    import numpy as _numpy  # noqa: F401
except ImportError:  # pragma: no cover - exercised only without numpy
    pass
else:
    _REGISTRY["numpy"] = NumpyColumnarTracker


def available_backends() -> list[str]:
    """Names of the kernels constructible in this environment."""
    return sorted(_REGISTRY)


def create_tracker(
    parameters: TrackingParameters | None = None,
    backend: str = DEFAULT_BACKEND,
):
    """Construct the tracker implementing ``backend``.

    Raises ``ValueError`` for unknown names, listing what is available —
    including ``numpy`` missing from the registry when the import failed.
    """
    tracker_class = _REGISTRY.get(backend)
    if tracker_class is None:
        known = ", ".join(available_backends())
        raise ValueError(
            f"unknown tracking backend {backend!r} (available: {known})"
        )
    return tracker_class(parameters)


def backend_name(tracker) -> str:
    """The registry name of a tracker instance (``scalar`` if untyped)."""
    return getattr(tracker, "backend_name", "scalar")
