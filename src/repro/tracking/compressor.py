"""The Compressor: from trajectory events to critical points (Section 3.2).

At each window slide the compressor takes the movement events the tracker
detected in the fresh batch, filters out the kinds that never yield critical
points (instantaneous pauses, discarded off-course positions), merges events
of the same vessel at the same timestamp into a single annotated point, and
maintains the per-vessel synopsis within the sliding window.  Expired
("delta") critical points are handed back for the staging area.
"""

from dataclasses import dataclass

from repro import obs
from repro.tracking.types import (
    CRITICAL_EVENT_TYPES,
    CriticalPoint,
    MovementEvent,
)
from repro.tracking.window import SlidingWindow, WindowSpec


@dataclass
class CompressionStatistics:
    """Raw-versus-critical accounting for the compression study (Figure 9)."""

    raw_positions: int = 0
    critical_points: int = 0

    @property
    def compression_ratio(self) -> float:
        """Fraction of raw locations dropped; close to 1 means stronger
        reduction.  0 when nothing has been consumed yet."""
        if self.raw_positions == 0:
            return 0.0
        return 1.0 - (self.critical_points / self.raw_positions)


class Compressor:
    """Filter movement events into the windowed critical-point synopsis."""

    def __init__(self, spec: WindowSpec):
        self.window = SlidingWindow(spec)
        self.statistics = CompressionStatistics()

    def slide(
        self,
        events: list[MovementEvent],
        query_time: int,
        raw_position_count: int | None = None,
    ) -> tuple[list[CriticalPoint], list[CriticalPoint]]:
        """Process one slide; return ``(fresh, expired)`` critical points.

        ``fresh`` are the critical points derived from this batch of events
        (already merged and timestamp-ordered per vessel); ``expired`` are
        the delta points that fell out of the window range and should move to
        the staging area.
        """
        with obs.span("tracking.compressor.slide"):
            fresh = merge_events_into_critical_points(events)
            if raw_position_count is not None:
                self.statistics.raw_positions += raw_position_count
            self.statistics.critical_points += len(fresh)
            self.window.add(fresh)
            expired = self.window.slide_to(query_time)
        obs.count("tracking.fresh_critical_points", len(fresh))
        obs.count("tracking.expired_critical_points", len(expired))
        obs.set_gauge(
            "tracking.compression_ratio", self.statistics.compression_ratio
        )
        return fresh, expired

    def synopsis(self, mmsi: int | None = None) -> list[CriticalPoint]:
        """The current in-window synopsis (per vessel or fleet-wide)."""
        points = self.window.contents(mmsi)
        return sorted(points, key=lambda p: (p.mmsi, p.timestamp))


def merge_events_into_critical_points(
    events: list[MovementEvent],
) -> list[CriticalPoint]:
    """Merge simultaneous events per vessel into annotated critical points.

    Only event kinds in :data:`CRITICAL_EVENT_TYPES` survive.  When several
    events coincide (same vessel, same timestamp — e.g. a speed change with a
    turn), their annotations union into one point; the representative
    coordinates come from the longest-duration event (an aggregated stop
    centroid outranks an instantaneous annotation at the same instant).
    """
    merged: dict[tuple[int, int], list[MovementEvent]] = {}
    for event in events:
        if event.event_type not in CRITICAL_EVENT_TYPES:
            continue
        merged.setdefault((event.mmsi, event.timestamp), []).append(event)

    points = []
    for (mmsi, timestamp), group in sorted(merged.items()):
        representative = max(group, key=lambda e: e.duration_seconds)
        points.append(
            CriticalPoint(
                mmsi=mmsi,
                lon=representative.lon,
                lat=representative.lat,
                timestamp=timestamp,
                annotations=frozenset(e.event_type for e in group),
                speed_mps=representative.speed_mps,
                heading_degrees=representative.heading_degrees,
                duration_seconds=representative.duration_seconds,
            )
        )
    return points
