"""Batch/columnar tracking kernel: the Mobility Tracker's hot path, fused.

:class:`~repro.tracking.tracker.MobilityTracker` examines one tuple at a
time through a stack of per-detector method calls — clear, but the method
dispatch, parameter-property recomputation and throwaway
:class:`VelocityVector` allocations dominate the per-slide tracking cost
(BENCH_pipeline.json showed tracking at ~29 ms mean per slide against
~1.4 ms reconstruction).  :class:`ColumnarTracker` keeps the exact same
event semantics but restructures each slide's work around data instead of
tuples:

1. the batch is grouped into **per-MMSI shards** of parallel columns —
   ``lon``/``lat`` as :mod:`array` buffers plus derived τ /
   ``cos(lat)`` / ``sin(lat)`` columns — so each position's latitude
   trigonometry is computed once per slide instead of once per
   Haversine/bearing call;
2. consecutive-pair geometry (Haversine distance, speed, initial
   bearing) is **precomputed over whole runs** in tight comprehension
   passes, and the gap/turn/stop/slow-motion detectors run in one fused
   loop per vessel with every threshold hoisted to a local — no
   per-tuple method dispatch, no intermediate velocity objects;
3. the per-position event lists are spliced back into exact arrival
   order, so the emitted :class:`MovementEvent` stream is
   **byte-identical** to the scalar tracker's
   (``tests/tracking/test_columnar_parity.py`` replays the full
   simulator fleet through both and compares).

The byte-identity contract constrains every arithmetic rewrite: each
batched expression reproduces the scalar code's operation order exactly
(e.g. ``sin(dphi / 2.0) ** 2`` stays a ``**`` — libm ``pow(x, 2.0)`` is
*not* always ``x * x`` in the last ulp), and the Haversine clamp keeps
the scalar ``min/max`` form so even NaN inputs take identical paths.
Positions rejected mid-run (out-of-sequence or off-course) break the
consecutive-pair chain; the fused loop then recomputes that one pair
inline against the true previous position and re-enters the precomputed
stream at the next accepted tuple.

:class:`NumpyColumnarTracker` additionally vectorizes the column and
pair trigonometry with numpy where (and only where) the results are
bit-for-bit equal to :mod:`math` — ``radians`` (one multiply), ``sin``,
``cos``, and exact float subtraction/multiplication; the column buffers
reach numpy zero-copy through their :class:`memoryview`.  ``arcsin``,
``arctan2`` and ``**`` round differently in numpy's SIMD loops, so the
arc and the bearing angle finish element-wise through libm.  Backend
construction and selection live in :mod:`repro.tracking.backends`.
"""

import math
from array import array
from collections import defaultdict, deque
from collections.abc import Iterable
from itertools import islice as _islice
from operator import itemgetter as _itemgetter, sub as _sub, truediv as _truediv

from repro import obs
from repro.ais.stream import PositionalTuple
from repro.geo.haversine import (
    EARTH_RADIUS_METERS,
    haversine_meters,
    initial_bearing_degrees,
)
from repro.tracking.config import TrackingParameters
from repro.tracking.tracker import (
    _EPSILON_SPEED,
    _centroid,
    _circular_mean_degrees,
)
from repro.tracking.types import (
    MovementEvent,
    MovementEventType,
    TrackerStatistics,
    VelocityVector,
)

_PAUSE = MovementEventType.PAUSE
_SPEED_CHANGE = MovementEventType.SPEED_CHANGE
_TURN = MovementEventType.TURN
_OFF_COURSE = MovementEventType.OFF_COURSE
_GAP_START = MovementEventType.GAP_START
_GAP_END = MovementEventType.GAP_END
_SMOOTH_TURN = MovementEventType.SMOOTH_TURN
_STOP_START = MovementEventType.STOP_START
_STOP_END = MovementEventType.STOP_END
_SLOW_MOTION = MovementEventType.SLOW_MOTION

#: ``2.0 * EARTH_RADIUS_METERS`` is exact (the doubling only shifts the
#: exponent), so hoisting it keeps the Haversine arc byte-identical to
#: the scalar left-associative ``2.0 * R * asin(...)``.
_TWO_RADII = 2.0 * EARTH_RADIUS_METERS

#: Trig-free overestimate of the Haversine distance: with
#: ``a <= (dphi/2)^2 + (dlam/2)^2`` (sin x <= x) and ``asin x <= pi*x/2``,
#: ``d <= (pi*R/2) * sqrt(dphi^2 + dlam^2)``.  The overestimate factor is
#: ``(pi/2) * (sqrt(a)/asin(sqrt(a)))`` — essentially pi/2 at stop-radius
#: scale — so a bound at or under the radius *proves* the point is within
#: it, replacing four trig calls with two squares for the tight-jitter
#: common case.  Only booleans derived from these distances are observable,
#: so the screen cannot perturb parity.
_WITHIN_BOUND = math.pi * EARTH_RADIUS_METERS / 2.0


class _ColumnarVesselState:
    """Per-vessel carry-over between slides, as plain scalars.

    The same bookkeeping as the scalar tracker's ``_VesselState``, but the
    velocity vector is unpacked into ``(has_velocity, v_speed, v_heading)``
    and the last position carries its precomputed latitude trigonometry so
    cross-slide pairs reuse it.  Everything is picklable — the runtime
    checkpoints trackers wholesale.
    """

    __slots__ = (
        "last",
        "last_cos",
        "last_sin",
        "has_velocity",
        "v_speed",
        "v_heading",
        "recent_speeds",
        "recent_headings",
        "cumulative_turn",
        "stop_run",
        "stop_active",
        "slow_run",
        "consecutive_outliers",
        "traveled_meters",
    )

    def __init__(self, history_length: int):
        self.last: PositionalTuple | None = None
        self.last_cos = 1.0
        self.last_sin = 0.0
        self.has_velocity = False
        self.v_speed = 0.0
        self.v_heading = 0.0
        self.recent_speeds: deque[float] = deque(maxlen=history_length)
        self.recent_headings: deque[float] = deque(maxlen=history_length)
        self.cumulative_turn = 0.0
        self.stop_run: list[PositionalTuple] = []
        self.stop_active = False
        self.slow_run: list[tuple[PositionalTuple, float]] = []
        self.consecutive_outliers = 0
        self.traveled_meters = 0.0

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)


class ColumnarTracker:
    """Batch/columnar trajectory-event detection, scalar-parity guaranteed.

    Drop-in for :class:`~repro.tracking.tracker.MobilityTracker`: the same
    constructor, ``process`` / ``process_batch`` / ``finalize`` surface,
    the same :class:`TrackerStatistics`, and — the load-bearing property —
    the same events in the same order for the same input.  Selected as the
    ``"array"`` backend through
    :func:`repro.tracking.backends.create_tracker`.
    """

    backend_name = "array"

    def __init__(self, parameters: TrackingParameters | None = None):
        self.parameters = parameters or TrackingParameters()
        self.statistics = TrackerStatistics()
        self._vessels: dict[int, _ColumnarVesselState] = {}
        # Thresholds converted once; every value equals what the scalar
        # tracker recomputes per access (pure functions of frozen
        # parameter fields), so hoisting cannot change any comparison.
        p = self.parameters
        self._min_speed = p.min_speed_mps
        self._gap_period = p.gap_period_seconds
        self._speed_change_frac = p.speed_change_percent / 100.0
        self._turn_threshold = p.turn_threshold_degrees
        self._stop_radius = p.stop_radius_meters
        self._slow_speed = p.slow_speed_mps
        self._m_positions = p.inspected_positions
        self._outlier_factor = p.outlier_speed_factor
        self._outlier_min_speed = p.outlier_min_speed_mps
        self._outlier_heading = p.outlier_heading_degrees
        self._max_outliers = p.max_consecutive_outliers

    # ------------------------------------------------------------------
    # public API (mirrors MobilityTracker)
    # ------------------------------------------------------------------

    def process(self, position: PositionalTuple) -> list[MovementEvent]:
        """Examine one positional tuple; return the events it triggered."""
        return self._run_batch([position])

    def process_batch(
        self, positions: Iterable[PositionalTuple]
    ) -> list[MovementEvent]:
        """Process a batch of tuples (one window slide worth of arrivals)."""
        with obs.span("tracking.process_batch"):
            batch = (
                positions if isinstance(positions, list) else list(positions)
            )
            events = self._run_batch(batch)
            obs.count("tracking.positions", len(batch))
            obs.count("tracking.movement_events", len(events))
            return events

    def process_batch_tagged(
        self, indexed_positions: list
    ) -> list[tuple[tuple[int, int], MovementEvent]]:
        """Batch entry point for the shard runtime.

        Takes ``(global_index, position)`` pairs, returns
        ``((global_index, k), event)`` tagged events with ``k``
        enumerating each position's events in emission order — the same
        tags the scalar per-position loop produces, so the supervisor's
        merge stays byte-identical.
        """
        positions = [position for _, position in indexed_positions]
        pending = self._collect_batch(positions)
        count_event = self.statistics.count_event
        tagged: list[tuple[tuple[int, int], MovementEvent]] = []
        previous_index = -1
        k = 0
        for local_index, event in pending:
            count_event(event.event_type)
            k = k + 1 if local_index == previous_index else 0
            previous_index = local_index
            tagged.append(((indexed_positions[local_index][0], k), event))
        return tagged

    def finalize(self) -> list[MovementEvent]:
        """Close open long-lasting events at end-of-stream."""
        events: list[MovementEvent] = []
        for state in self._vessels.values():
            if state.stop_active and state.stop_run:
                lon, lat = _centroid(state.stop_run)
                first = state.stop_run[0]
                last = state.stop_run[-1]
                events.append(
                    MovementEvent(
                        _STOP_END,
                        first.mmsi,
                        lon,
                        lat,
                        last.timestamp,
                        duration_seconds=last.timestamp - first.timestamp,
                    )
                )
            state.stop_run.clear()
            state.stop_active = False
            state.slow_run.clear()
        for event in events:
            self.statistics.count_event(event.event_type)
        return events

    def vessel_count(self) -> int:
        """Number of vessels with tracked state."""
        return len(self._vessels)

    def current_velocity(self, mmsi: int) -> VelocityVector | None:
        """Latest velocity vector of a vessel, if any."""
        state = self._vessels.get(mmsi)
        if state is None or not state.has_velocity:
            return None
        return VelocityVector(state.v_speed, state.v_heading)

    def traveled_distance_meters(self, mmsi: int) -> float:
        """Cumulative distance sailed since the vessel was first seen."""
        state = self._vessels.get(mmsi)
        return state.traveled_meters if state else 0.0

    # ------------------------------------------------------------------
    # the kernel
    # ------------------------------------------------------------------

    def _run_batch(self, batch: list) -> list[MovementEvent]:
        events = [event for _, event in self._collect_batch(batch)]
        count_event = self.statistics.count_event
        for event in events:
            count_event(event.event_type)
        return events

    def _collect_batch(
        self, batch: list
    ) -> list[tuple[int, MovementEvent]]:
        """Run the kernel over one batch.

        Returns ``(batch_index, event)`` pairs in exact scalar emission
        order: grouped per vessel, then spliced back by arrival index.
        Leaves event-type statistics to the caller (tagged and untagged
        entry points count identically, in spliced order).
        """
        self.statistics.positions_seen += len(batch)
        if not batch:
            return []
        # Group into per-MMSI index runs preserving arrival order; vessel
        # states are created in first-appearance order so ``finalize``
        # iterates vessels exactly as the scalar tracker would.
        grouped: dict[int, list[int]] = defaultdict(list)
        for index, position in enumerate(batch):
            grouped[position.mmsi].append(index)
        emit: list[tuple[int, MovementEvent]] = []
        vessels = self._vessels
        history = self._m_positions
        single_vessel = len(grouped) == 1
        for mmsi, indices in grouped.items():
            state = vessels.get(mmsi)
            if state is None:
                state = _ColumnarVesselState(history)
                vessels[mmsi] = state
            if single_vessel:
                self._track_vessel(state, batch, indices, emit)
            else:
                points = list(map(batch.__getitem__, indices))
                self._track_vessel(state, points, indices, emit)
        # Stable sort restores arrival order across vessels while keeping
        # each position's own events in emission order.
        if not single_vessel:
            emit.sort(key=_emit_key)
        return emit

    def _vessel_columns(self, state, points):
        """One vessel run as parallel columns plus pair geometry.

        Returns ``(taus, dist, head)`` — flat per-position columns where
        entry ``i`` describes the consecutive pair ``points[i-1] →
        points[i]`` and entry 0 pairs against the carried ``state.last``
        (or self-pairs for a fresh vessel, whose entry 0 only seeds the
        state).  All pair expressions replicate ``haversine_meters`` and
        ``initial_bearing_degrees`` operation-for-operation — e.g. the
        ``map(sub, ...)`` deltas keep the scalar operand order and
        ``(c1 * c2)`` the scalar grouping — and every branch-free pass
        runs as a C-level ``zip``/``map`` fold.  Speed is *not* a
        column: it is ``dist / dt`` against the previously accepted
        position, and only the fused detector loop knows which positions
        get accepted.
        """
        sin = math.sin
        cos = math.cos
        radians = math.radians
        asin = math.asin
        sqrt = math.sqrt
        atan2 = math.atan2
        degrees = math.degrees
        # ``x ** 2`` converts the exponent and calls libm ``pow(x, 2.0)``
        # — precisely what ``math.pow`` does, minus the generic binary-op
        # dispatch, so the swap is free and bit-identical.
        fpow = math.pow
        # One C-level transpose instead of one attribute walk per column.
        _, lon, lat, taus = zip(*points)
        rlat = list(map(radians, lat))
        cos_col = list(map(cos, rlat))
        sin_col = list(map(sin, rlat))
        last = state.last
        if last is not None:
            carry_lon, carry_lat = last.lon, last.lat
            carry_cos, carry_sin = state.last_cos, state.last_sin
        else:
            carry_lon, carry_lat = lon[0], lat[0]
            carry_cos, carry_sin = cos_col[0], sin_col[0]
        ext_cos = [carry_cos]
        ext_cos += cos_col[:-1]
        ext_sin = [carry_sin]
        ext_sin += sin_col[:-1]

        sub = _sub
        dphi = [radians(lat[0] - carry_lat)]
        dphi += map(radians, map(sub, lat[1:], lat))
        dlam = [radians(lon[0] - carry_lon)]
        dlam += map(radians, map(sub, lon[1:], lon))
        # The scalar clamp ``min(1.0, max(0.0, a))`` is the identity on
        # every in-range arc (including its NaN handling, since NaN
        # fails the chained comparison), so the two builtin calls only
        # run on the out-of-range remainder.
        dist = [
            _TWO_RADII * asin(sqrt(
                t
                if 0.0
                <= (
                    t := fpow(sin(dp / 2.0), 2.0)
                    + (c1 * c2) * fpow(sin(dl / 2.0), 2.0)
                )
                <= 1.0
                else min(1.0, max(0.0, t))
            ))
            for dp, dl, c1, c2 in zip(dphi, dlam, ext_cos, cos_col)
        ]
        # ``initial_bearing_degrees`` inlined minus its x == 0 == y
        # guard: under ``d > 1.0`` that case is unreachable, because
        # y == ±0.0 needs sin(dlam) == ±0.0, i.e. equal longitudes, and
        # then a metre of latitude keeps x well away from zero.  The
        # 360° wrap guard (a tiny negative angle rounding up under the
        # modulo) stays.  With atan2 output confined to [-180°, 180°],
        # the scalar's ``% 360.0`` is exactly "add 360 if negative"
        # (``float.__mod__`` maps a -0.0 remainder to +0.0; ``th + 0.0``
        # does the same), sparing the slow float modulo.
        head = [
            (
                0.0
                if (t := (
                    th + 360.0
                    if (th := degrees(atan2(
                        sin(dl) * c2, c1 * s2 - s1 * c2 * cos(dl)
                    ))) < 0.0
                    else th + 0.0
                )) == 360.0
                else t
            )
            if d > 1.0
            else 0.0
            for d, dl, c2, c1, s2, s1 in zip(
                dist, dlam, cos_col, ext_cos, sin_col, ext_sin
            )
        ]
        return taus, dist, head

    def _quiet_run(self, state, points, taus, dist, head_col):
        """Commit a whole run in column folds if no event can fire.

        Proves — conservatively, bailing to the exact loop on any doubt —
        that every position in the run is accepted cruising: in sequence,
        no gap, faster than every halt/slow threshold, no speed-change or
        (smooth-)turn crossing, off-course impossible.  For such runs the
        per-position state updates collapse into C-level folds that are
        bit-identical to the sequential loop: ``sum(xs, start)`` is the
        same left-to-right float accumulation, ``deque.extend`` the same
        trailing window, and the final velocity is simply the last pair's.

        Returns how many leading positions were committed: the whole run
        on a clean pass, a :meth:`_quiet_prefix` count when a fold trips
        somewhere inside it, zero when the loop must replay from the top.
        """
        if (
            state.last is None
            or not state.has_velocity
            or state.stop_run
            or state.slow_run
            or state.stop_active
            or state.v_speed <= self._min_speed
        ):
            return 0
        dts = [taus[0] - state.last.timestamp]
        dts += map(_sub, taus[1:], taus)
        min_dt = min(dts)
        if min_dt <= 0 or max(dts) > self._gap_period:
            return self._quiet_prefix(state, points, taus, dist, head_col)
        speeds = list(map(_truediv, dist, dts))
        low = min(speeds)
        if low <= self._slow_speed or low <= self._min_speed:
            return self._quiet_prefix(state, points, taus, dist, head_col)
        # A sub-meter pair would carry the previous heading instead of
        # the precomputed bearing; let the loop sort it out.  With every
        # speed above the slow threshold, ``low * min_dt`` already bounds
        # every distance from below (up to a division rounding), so the
        # extra fold only runs for sub-second report intervals.
        if low * min_dt <= 1.01 and min(dist) <= 1.0:
            return self._quiet_prefix(state, points, taus, dist, head_col)
        high = max(speeds)
        recent_speeds = state.recent_speeds
        if high >= self._outlier_min_speed:
            # The off-course gate opens somewhere in the run: prove the
            # speed-jump test cannot fire against any window mean.  Every
            # window is a subset of (carried recents ∪ this run), whose
            # computed mean is at least 0.99 × the set's minimum (float
            # mean error over ≤ m terms is parts in 2⁻⁴⁹), so a top speed
            # at most 0.99 × factor × that minimum can never jump it.
            floor = min(low, min(recent_speeds)) if recent_speeds else low
            if floor < self._min_speed:
                floor = self._min_speed
            if high > 0.99 * (self._outlier_factor * floor):
                # The cheap bound is min-based and trips on vessels
                # accelerating out of a slow window; settle it exactly by
                # replaying the scalar speed-jump test over a throwaway
                # copy of the rolling window (same deque order, same
                # ``sum``, so the same float mean).  Any jump means
                # ``_is_off_course`` could fire: bail to the loop.
                window = deque(recent_speeds, recent_speeds.maxlen)
                window_append = window.append
                factor = self._outlier_factor
                gate = self._outlier_min_speed
                min_speed = self._min_speed
                for s in speeds:
                    if s >= gate and len(window) >= 3:
                        mean = sum(window) / len(window)
                        if s > factor * (
                            mean if mean > min_speed else min_speed
                        ):
                            return self._quiet_prefix(
                                state, points, taus, dist, head_col
                            )
                    window_append(s)
        v0 = state.v_speed
        lo_band = low if low <= v0 else v0
        hi_band = high if high >= v0 else v0
        # Every pair ratio |Δv|/v is at most (band width) / low, so a
        # steady band proves no SPEED_CHANGE in O(1); the 1e-6 haircut
        # absorbs the fold's few ulps of division rounding.
        if (hi_band - lo_band) / low > self._speed_change_frac * 0.999999:
            ext_speeds = [v0]
            ext_speeds += speeds[:-1]
            # Denominator is the current speed (all above the epsilon
            # floor); ``abs(b - a)`` equals the scalar's branch-negated
            # delta bit for bit, so the whole ratio screen folds at C
            # level and its maximum crossing the threshold is exactly
            # "some event fires".
            if max(map(
                _truediv, map(abs, map(_sub, speeds, ext_speeds)), speeds
            )) > self._speed_change_frac:
                return self._quiet_prefix(
                    state, points, taus, dist, head_col
                )
        turn_threshold = self._turn_threshold
        neg_threshold = -turn_threshold
        # One pass settles both turn detectors.  Headings live in
        # [0, 360), so ``(b - a) % 360.0`` reduces to one conditional
        # add: non-negative deltas pass through ``fmod`` unchanged (a
        # zero delta is already +0.0), negative ones gain exactly 360 —
        # the very add the modulo performs.  The TURN screen needs a
        # nanodegree of slack (the scalar folds ``abs(b - a) % 360``,
        # off from ``abs(signed)`` by a few ulps of 360); the smooth-turn
        # accumulation is inherently sequential (sign flips reset it)
        # and is the scalar update verbatim, minus emission.  Either
        # threshold crossing means an event would fire: bail with the
        # state untouched and let the prefix scan replay exactly.
        limit = turn_threshold - 1e-9
        neg_limit = -limit
        total_turn = state.cumulative_turn
        prev_head = state.v_heading
        for b in head_col:
            s = b - prev_head
            if s < 0.0:
                s += 360.0
            if s > 180.0:
                s -= 360.0
            if s > limit or s < neg_limit:
                return self._quiet_prefix(state, points, taus, dist, head_col)
            if total_turn * s < 0:
                total_turn = s
            else:
                total_turn += s
            if total_turn > turn_threshold or total_turn < neg_threshold:
                return self._quiet_prefix(state, points, taus, dist, head_col)
            prev_head = b

        state.last = points[-1]
        state.v_speed = speeds[-1]
        state.v_heading = head_col[-1]
        state.cumulative_turn = total_turn
        state.consecutive_outliers = 0
        recent_speeds.extend(speeds)
        state.recent_headings.extend(head_col)
        state.traveled_meters = sum(dist, state.traveled_meters)
        last_rlat = math.radians(state.last.lat)
        state.last_cos = math.cos(last_rlat)
        state.last_sin = math.sin(last_rlat)
        return len(taus)

    def _quiet_prefix(self, state, points, taus, dist, head_col):
        """Commit the longest provably-quiet prefix of a noisy run.

        A fold in :meth:`_quiet_run` flags *some* position; the ones
        before it are still plain cruising that the loop would replay one
        attribute access at a time.  This scan walks the columns with the
        scalar's own per-position tests — the exact ``max(speed, ε)``
        ratio, the folded absolute turn, the signed smooth-turn
        accumulation, the rolling-window speed-jump — and stops at the
        first position where any event could fire or any acceptance is in
        doubt (out-of-sequence, gap, halt/slow, sub-meter pair).  Every
        scanned-past position is therefore committed with the same floats
        the loop would produce; the caller replays only the tail.
        """
        gap_period = self._gap_period
        min_speed = self._min_speed
        slow_speed = self._slow_speed
        speed_change_frac = self._speed_change_frac
        turn_threshold = self._turn_threshold
        neg_threshold = -turn_threshold
        outlier_factor = self._outlier_factor
        outlier_gate = self._outlier_min_speed
        recent_speeds = state.recent_speeds
        window = deque(recent_speeds, recent_speeds.maxlen)
        window_append = window.append
        run_speeds = []
        run_speeds_append = run_speeds.append
        prev_tau = state.last.timestamp
        prev_speed = state.v_speed
        prev_head = state.v_heading
        total_turn = state.cumulative_turn
        traveled = state.traveled_meters
        for tau, d, h in zip(taus, dist, head_col):
            dt = tau - prev_tau
            if dt <= 0 or dt > gap_period:
                break
            s = d / dt
            if s <= slow_speed or s <= min_speed or d <= 1.0:
                break
            if s >= outlier_gate and len(window) >= 3:
                mean = sum(window) / len(window)
                if s > outlier_factor * (
                    mean if mean > min_speed else min_speed
                ):
                    break
            if abs(s - prev_speed) / (
                s if s > _EPSILON_SPEED else _EPSILON_SPEED
            ) > speed_change_frac:
                break
            change = abs(h - prev_head) % 360.0
            if change > 180.0:
                change = 360.0 - change
            if change > turn_threshold:
                break
            signed = (h - prev_head) % 360.0
            if signed > 180.0:
                signed -= 360.0
            if total_turn * signed < 0:
                new_total = signed
            else:
                new_total = total_turn + signed
            if new_total > turn_threshold or new_total < neg_threshold:
                break
            total_turn = new_total
            window_append(s)
            run_speeds_append(s)
            traveled += d
            prev_tau = tau
            prev_speed = s
            prev_head = h
        count = len(run_speeds)
        if count == 0:
            return 0
        state.last = points[count - 1]
        state.v_speed = prev_speed
        state.v_heading = prev_head
        state.cumulative_turn = total_turn
        state.consecutive_outliers = 0
        recent_speeds.extend(run_speeds)
        state.recent_headings.extend(head_col[:count])
        state.traveled_meters = traveled
        last_rlat = math.radians(state.last.lat)
        state.last_cos = math.cos(last_rlat)
        state.last_sin = math.sin(last_rlat)
        return count

    def _track_vessel(self, state, points, indices, emit):
        # Locals for everything the loop touches — threshold hoisting and
        # attribute-to-local conversion are where the batch layout wins.
        taus, dist, head_col = self._vessel_columns(state, points)
        committed = self._quiet_run(state, points, taus, dist, head_col)
        if committed == len(points):
            return
        min_speed = self._min_speed
        gap_period = self._gap_period
        speed_change_frac = self._speed_change_frac
        turn_threshold = self._turn_threshold
        neg_turn_threshold = -self._turn_threshold
        stop_radius = self._stop_radius
        slow_speed = self._slow_speed
        m_positions = self._m_positions
        outlier_factor = self._outlier_factor
        outlier_min_speed = self._outlier_min_speed
        outlier_heading = self._outlier_heading
        max_outliers = self._max_outliers
        emit_append = emit.append
        radians = math.radians
        sqrt = math.sqrt
        within_bound = _WITHIN_BOUND

        stream = zip(indices, points, taus, dist, head_col)
        if committed:
            # The quiet prefix is already folded into the state; replay
            # only the tail (the pair chain stays consecutive: the last
            # committed position is the tail's predecessor).
            stream = _islice(stream, committed, None)
        if state.last is None:
            # First position ever seen for this vessel seeds the state.
            _, last, _, _, _ = next(stream)
        else:
            last = state.last
        last_tau = last.timestamp
        has_velocity = state.has_velocity
        v_speed = state.v_speed
        v_heading = state.v_heading
        recent_speeds = state.recent_speeds
        recent_headings = state.recent_headings
        cumulative_turn = state.cumulative_turn
        stop_run = state.stop_run
        stop_active = state.stop_active
        slow_run = state.slow_run
        consecutive_outliers = state.consecutive_outliers
        traveled = state.traveled_meters
        out_of_sequence = 0
        discarded = 0
        # Whether the current tuple's precomputed pair entry is valid —
        # true as long as the previously *accepted* position is the pair
        # predecessor; a skip or discard breaks the chain until the next
        # acceptance re-aligns it.
        consecutive = True

        for batch_index, position, timestamp, p_dist, p_head in stream:
            dt = timestamp - last_tau
            if dt <= 0:
                # Stale or duplicated timestamp: no new motion information.
                out_of_sequence += 1
                consecutive = False
                continue

            if dt > gap_period:
                # Communication gap: close runs, report start/end points.
                if stop_active and stop_run:
                    c_lon, c_lat = _centroid(stop_run)
                    run_first = stop_run[0]
                    run_last = stop_run[-1]
                    emit_append((batch_index, MovementEvent(
                        _STOP_END,
                        run_first.mmsi,
                        c_lon,
                        c_lat,
                        run_last.timestamp,
                        duration_seconds=(
                            run_last.timestamp - run_first.timestamp
                        ),
                    )))
                stop_run.clear()
                stop_active = False
                slow_run.clear()
                cumulative_turn = 0.0
                gap_speed = v_speed if has_velocity else 0.0
                gap_heading = v_heading if has_velocity else 0.0
                emit_append((batch_index, MovementEvent(
                    _GAP_START,
                    position.mmsi,
                    last.lon,
                    last.lat,
                    last_tau,
                    speed_mps=gap_speed,
                    heading_degrees=gap_heading,
                    duration_seconds=dt,
                )))
                emit_append((batch_index, MovementEvent(
                    _GAP_END,
                    position.mmsi,
                    position.lon,
                    position.lat,
                    timestamp,
                )))
                # Stale motion features must not leak across the silence;
                # the straight-line distance is the lower bound on what
                # was sailed.
                has_velocity = False
                recent_speeds.clear()
                recent_headings.clear()
                if consecutive:
                    traveled += p_dist
                else:
                    traveled += haversine_meters(
                        last.lon, last.lat, position.lon, position.lat
                    )
                last = position
                last_tau = timestamp
                consecutive = True
                continue

            if consecutive:
                distance = p_dist
                speed = distance / dt
                if distance > 1.0:
                    heading = p_head
                elif has_velocity:
                    # Sub-meter displacement: bearing is GPS noise, keep
                    # the course.
                    heading = v_heading
                else:
                    heading = 0.0
            else:
                # Chain broken by a skip/discard: recompute this single
                # pair against the true previous position through the
                # very functions the scalar tracker calls.
                distance = haversine_meters(
                    last.lon, last.lat, position.lon, position.lat
                )
                speed = distance / dt
                if distance > 1.0:
                    heading = initial_bearing_degrees(
                        last.lon, last.lat, position.lon, position.lat
                    )
                elif has_velocity:
                    heading = v_heading
                else:
                    heading = 0.0

            # Off-course: abrupt deviation from the recent mean velocity.
            # Gated on the speed floor first: ``speed >= outlier_min_speed``
            # is a necessary condition for the scalar test, so skipping the
            # mean for slower reports short-circuits to the same outcome.
            if speed >= outlier_min_speed and len(recent_speeds) >= 3:
                mean_speed = sum(recent_speeds) / len(recent_speeds)
                if speed > outlier_factor * max(mean_speed, min_speed):
                    if mean_speed < min_speed:
                        # Halted vessel: any such jump is a positioning
                        # glitch; heading against a jittering anchor
                        # course is meaningless.
                        off_course = True
                    else:
                        mean_heading = _circular_mean_degrees(
                            recent_headings
                        )
                        deviation = abs(heading - mean_heading) % 360.0
                        if deviation > 180.0:
                            deviation = 360.0 - deviation
                        off_course = deviation > outlier_heading
                    if off_course:
                        consecutive_outliers += 1
                        if consecutive_outliers <= max_outliers:
                            discarded += 1
                            emit_append((batch_index, MovementEvent(
                                _OFF_COURSE,
                                position.mmsi,
                                position.lon,
                                position.lat,
                                timestamp,
                                speed_mps=speed,
                                heading_degrees=heading,
                            )))
                            # Dropped: the previous position stays
                            # anchored so the distorted segment never
                            # enters the synopsis.
                            consecutive = False
                            continue
                    # Accepted: either not off-course after all, or the
                    # course genuinely changed after too many successive
                    # "outliers".
                    consecutive_outliers = 0
                else:
                    consecutive_outliers = 0
            else:
                consecutive_outliers = 0

            # Instantaneous events.
            paused = speed <= min_speed
            if paused:
                emit_append((batch_index, MovementEvent(
                    _PAUSE,
                    position.mmsi,
                    position.lon,
                    position.lat,
                    timestamp,
                    speed_mps=speed,
                    heading_degrees=heading,
                )))
            turned = False
            if has_velocity:
                denominator = (
                    speed if speed > _EPSILON_SPEED else _EPSILON_SPEED
                )
                delta = speed - v_speed
                if delta < 0.0:
                    delta = -delta
                if delta / denominator > speed_change_frac \
                        and not (paused and v_speed <= min_speed):
                    emit_append((batch_index, MovementEvent(
                        _SPEED_CHANGE,
                        position.mmsi,
                        position.lon,
                        position.lat,
                        timestamp,
                        speed_mps=speed,
                        heading_degrees=heading,
                    )))
                if not paused and v_speed > min_speed:
                    # Both endpoints moving: test for a sharp turn, and
                    # when there is none accumulate the small signed
                    # change towards a smooth turn.
                    change = heading - v_heading
                    if change < 0.0:
                        change = -change
                    change %= 360.0
                    if change > 180.0:
                        change = 360.0 - change
                    if change > turn_threshold:
                        turned = True
                        # The sharp turn is reported here; restart the
                        # smooth accumulation from the new course.
                        cumulative_turn = 0.0
                        emit_append((batch_index, MovementEvent(
                            _TURN,
                            position.mmsi,
                            position.lon,
                            position.lat,
                            timestamp,
                            speed_mps=speed,
                            heading_degrees=heading,
                        )))
                    else:
                        signed_change = (heading - v_heading) % 360.0
                        if signed_change > 180.0:
                            signed_change -= 360.0
                        # A sign flip means the drift reversed; restart
                        # from this change so alternating jitter does not
                        # accumulate.
                        if cumulative_turn * signed_change < 0:
                            cumulative_turn = signed_change
                        else:
                            cumulative_turn += signed_change
                        if (
                            cumulative_turn > turn_threshold
                            or cumulative_turn < neg_turn_threshold
                        ):
                            cumulative_turn = 0.0
                            emit_append((batch_index, MovementEvent(
                                _SMOOTH_TURN,
                                position.mmsi,
                                position.lon,
                                position.lat,
                                timestamp,
                                speed_mps=speed,
                                heading_degrees=heading,
                            )))
                else:
                    # One endpoint halted: no course to accumulate.
                    cumulative_turn = 0.0
            else:
                cumulative_turn = 0.0

            # Long-term stop: consecutive pause/turn points in a radius.
            # A non-qualifying point with no open run leaves the detector
            # untouched (``stop_active`` implies a non-empty run), so the
            # whole block is skipped on the cruising fast path.
            qualifies = paused or turned
            if qualifies or stop_run:
                if qualifies and stop_run:
                    anchor = stop_run[0]
                    # A stopped vessel jitters within meters of its
                    # anchor: prove "within" by the trig-free bound and
                    # fall back to the exact distance only when the
                    # point strays near the radius.
                    dphi_b = radians(position.lat - anchor.lat)
                    dlam_b = radians(position.lon - anchor.lon)
                    within = (
                        within_bound
                        * sqrt(dphi_b * dphi_b + dlam_b * dlam_b)
                        <= stop_radius
                        or haversine_meters(
                            anchor.lon, anchor.lat, position.lon, position.lat
                        )
                        <= stop_radius
                    )
                else:
                    within = True
                if qualifies and within:
                    stop_run.append(position)
                    if not stop_active and len(stop_run) >= m_positions:
                        stop_active = True
                        c_lon, c_lat = _centroid(stop_run)
                        emit_append((batch_index, MovementEvent(
                            _STOP_START,
                            position.mmsi,
                            c_lon,
                            c_lat,
                            stop_run[0].timestamp,
                            speed_mps=speed,
                        )))
                else:
                    if stop_active and stop_run:
                        c_lon, c_lat = _centroid(stop_run)
                        run_first = stop_run[0]
                        run_last = stop_run[-1]
                        emit_append((batch_index, MovementEvent(
                            _STOP_END,
                            run_first.mmsi,
                            c_lon,
                            c_lat,
                            run_last.timestamp,
                            duration_seconds=(
                                run_last.timestamp - run_first.timestamp
                            ),
                        )))
                    stop_run.clear()
                    stop_active = False
                    if qualifies:
                        stop_run.append(position)

            # Slow motion: m consecutive low-speed reports along a path.
            if speed > slow_speed:
                if slow_run:
                    slow_run.clear()
            else:
                slow_run.append((position, speed))
                if len(slow_run) >= m_positions:
                    run_points = [p for p, _ in slow_run]
                    anchor = run_points[0]
                    # Only ``extent > radius`` is observable, so the max
                    # fold collapses to a short-circuiting any() with the
                    # same trig-free within screen per point.
                    a_lon = anchor.lon
                    a_lat = anchor.lat
                    spread = False
                    for p in run_points:
                        dphi_b = radians(p.lat - a_lat)
                        dlam_b = radians(p.lon - a_lon)
                        if (
                            within_bound
                            * sqrt(dphi_b * dphi_b + dlam_b * dlam_b)
                            > stop_radius
                            and haversine_meters(a_lon, a_lat, p.lon, p.lat)
                            > stop_radius
                        ):
                            spread = True
                            break
                    first_ts = run_points[0].timestamp
                    last_ts = run_points[-1].timestamp
                    slow_run.clear()
                    if spread:
                        median_point = run_points[len(run_points) // 2]
                        emit_append((batch_index, MovementEvent(
                            _SLOW_MOTION,
                            position.mmsi,
                            median_point.lon,
                            median_point.lat,
                            median_point.timestamp,
                            speed_mps=speed,
                            duration_seconds=last_ts - first_ts,
                        )))
                    # else: confined low-speed run — that is a stop, not
                    # slow motion; the stop detector reports it.

            recent_speeds.append(speed)
            recent_headings.append(heading)
            has_velocity = True
            v_speed = speed
            v_heading = heading
            last = position
            last_tau = timestamp
            consecutive = True
            traveled += distance

        if out_of_sequence:
            self.statistics.positions_out_of_sequence += out_of_sequence
        if discarded:
            self.statistics.positions_discarded_as_outliers += discarded
        state.last = last
        # The carried trigonometry is a pure function of the carried
        # position, so recomputing it once per run replaces two stores on
        # every accepted position (bit-identical: same function, same
        # input as the column entries).
        last_rlat = math.radians(last.lat)
        state.last_cos = math.cos(last_rlat)
        state.last_sin = math.sin(last_rlat)
        state.has_velocity = has_velocity
        state.v_speed = v_speed
        state.v_heading = v_heading
        state.cumulative_turn = cumulative_turn
        state.stop_active = stop_active
        state.consecutive_outliers = consecutive_outliers
        state.traveled_meters = traveled


#: C-level sort key for the arrival-order splice (tuples would compare
#: their MovementEvent payloads on ties without it).
_emit_key = _itemgetter(0)


def _bearing_from_yx(y: float, x: float) -> float:
    """The tail of ``initial_bearing_degrees`` given its y/x terms."""
    if x == 0.0 and y == 0.0:
        return 0.0
    theta = math.degrees(math.atan2(y, x)) % 360.0
    return 0.0 if theta == 360.0 else theta


class NumpyColumnarTracker(ColumnarTracker):
    """Columnar tracker with numpy-vectorized column and pair trigonometry.

    Only operations whose numpy float64 results are bit-identical to
    :mod:`math` on this platform are vectorized: ``radians`` (a single
    multiply), ``sin``, ``cos``, and exact subtraction/multiplication.
    ``arcsin``/``arctan2``/``**`` round differently in numpy's SIMD
    loops, so the Haversine arc and the bearing angle finish element-wise
    through libm — the parity twin test holds for this backend too.
    The numpy ufunc dispatch overhead is fixed per run, so this backend
    overtakes the pure-:mod:`array` kernel only on long per-vessel runs
    (larger slides or fewer vessels).
    """

    backend_name = "numpy"

    def _vessel_columns(self, state, points):
        import numpy

        _, lon, lat, taus = zip(*points)
        # Zero-copy: numpy maps the array('d') buffers via memoryview.
        lon_arr = numpy.frombuffer(memoryview(array("d", lon)))
        lat_arr = numpy.frombuffer(memoryview(array("d", lat)))
        rlat = numpy.radians(lat_arr)
        cos_arr = numpy.cos(rlat)
        sin_arr = numpy.sin(rlat)

        size = len(points)
        last = state.last
        ext_lon = numpy.empty(size)
        ext_lat = numpy.empty(size)
        ext_cos = numpy.empty(size)
        ext_sin = numpy.empty(size)
        if last is not None:
            ext_lon[0] = last.lon
            ext_lat[0] = last.lat
            ext_cos[0] = state.last_cos
            ext_sin[0] = state.last_sin
        else:
            ext_lon[0] = lon_arr[0]
            ext_lat[0] = lat_arr[0]
            ext_cos[0] = cos_arr[0]
            ext_sin[0] = sin_arr[0]
        ext_lon[1:] = lon_arr[:-1]
        ext_lat[1:] = lat_arr[:-1]
        ext_cos[1:] = cos_arr[:-1]
        ext_sin[1:] = sin_arr[:-1]

        dphi = numpy.radians(lat_arr - ext_lat)
        dlam = numpy.radians(lon_arr - ext_lon)
        sin_hd = numpy.sin(dphi / 2.0).tolist()
        sin_hl = numpy.sin(dlam / 2.0).tolist()
        cos_prod = (ext_cos * cos_arr).tolist()
        asin = math.asin
        sqrt = math.sqrt
        dist = [
            # The squares stay Python ``**``: libm pow(x, 2.0) is not
            # always x*x in the last ulp, and the scalar code uses ``**``.
            _TWO_RADII * asin(sqrt(
                t
                if 0.0 <= (t := a ** 2 + b * c ** 2) <= 1.0
                else min(1.0, max(0.0, t))
            ))
            for a, b, c in zip(sin_hd, cos_prod, sin_hl)
        ]
        # Bearing terms with scalar-identical association:
        # (cos1*sin2) - ((sin1*cos2)*cos(dlam)); the atan2 stays on libm.
        y_list = (numpy.sin(dlam) * cos_arr).tolist()
        x_list = (
            ext_cos * sin_arr - ext_sin * cos_arr * numpy.cos(dlam)
        ).tolist()
        bearing = _bearing_from_yx
        head = [
            bearing(yy, xx) if d > 1.0 else 0.0
            for d, yy, xx in zip(dist, y_list, x_list)
        ]
        return taus, dist, head
