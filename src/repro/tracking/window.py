"""Sliding windows over timestamped items (Section 2).

A window abstracts the recent time horizon of interest: it covers a range
``omega`` and moves forward at a slide step ``beta``.  Since usually
``beta < omega``, successive window instantiations share tuples over their
overlapping ranges.  Items expiring at a slide are returned to the caller —
they are the "delta" critical points periodically shipped to the staging
area on disk (Section 3.2).
"""

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Protocol, TypeVar


class Timestamped(Protocol):
    """Anything carrying an integer ``timestamp`` attribute."""

    timestamp: int


ItemT = TypeVar("ItemT", bound=Timestamped)


@dataclass(frozen=True)
class WindowSpec:
    """Range ``omega`` and slide ``beta`` of a sliding window, in seconds."""

    range_seconds: int
    slide_seconds: int

    def __post_init__(self) -> None:
        if self.range_seconds <= 0:
            raise ValueError(f"window range must be positive: {self.range_seconds}")
        if self.slide_seconds <= 0:
            raise ValueError(f"window slide must be positive: {self.slide_seconds}")

    @classmethod
    def of_minutes(cls, range_minutes: float, slide_minutes: float) -> "WindowSpec":
        """Build a spec from minutes (the paper quotes ranges in min/hours)."""
        return cls(int(range_minutes * 60), int(slide_minutes * 60))

    @classmethod
    def of_hours(cls, range_hours: float, slide_hours: float) -> "WindowSpec":
        """Build a spec from hours."""
        return cls(int(range_hours * 3600), int(slide_hours * 3600))


class SlidingWindow:
    """Per-vessel store of timestamped items within the window range.

    Items are kept in per-vessel deques ordered by timestamp (append order;
    the tracker output per vessel is monotone).  ``slide_to(Q)`` evicts
    everything with ``timestamp <= Q - omega`` and returns the evicted items.
    """

    def __init__(self, spec: WindowSpec):
        self.spec = spec
        self._items: dict[int, deque] = {}
        self.query_time: int | None = None

    def add(self, items: Iterable[ItemT], key=lambda item: item.mmsi) -> None:
        """Insert fresh items, grouped by the vessel key."""
        for item in items:
            self._items.setdefault(key(item), deque()).append(item)

    def slide_to(self, query_time: int) -> list:
        """Advance the window to ``query_time``; return expired items."""
        self.query_time = query_time
        horizon = query_time - self.spec.range_seconds
        expired: list = []
        empty_keys = []
        for vessel_key, items in self._items.items():
            while items and items[0].timestamp <= horizon:
                expired.append(items.popleft())
            if not items:
                empty_keys.append(vessel_key)
        for vessel_key in empty_keys:
            del self._items[vessel_key]
        return expired

    def contents(self, vessel_key: int | None = None) -> list:
        """Current window contents, for one vessel or the whole fleet."""
        if vessel_key is not None:
            return list(self._items.get(vessel_key, ()))
        everything: list = []
        for items in self._items.values():
            everything.extend(items)
        return everything

    def vessel_keys(self) -> list[int]:
        """Vessels that currently have items in the window."""
        return list(self._items)

    def __len__(self) -> int:
        return sum(len(items) for items in self._items.values())
