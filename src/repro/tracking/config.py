"""Mobility-tracking parameters (Table 3 of the paper).

===============================================  =======================
Parameter                                        Paper value
===============================================  =======================
Minimum speed v_min for asserting movement       1 knot (~1.852 km/h)
Rate of speed change alpha                       25 %
Minimum gap period Delta-T                       10 minutes
Turn threshold Delta-theta                       5, 10, **15**, 20 degrees
Radius r for long-term stops                     200 meters
Minimal number m of inspected positions          10
===============================================  =======================
"""

from dataclasses import dataclass

from repro.geo.units import knots_to_mps


@dataclass(frozen=True)
class TrackingParameters:
    """Calibrated thresholds of the mobility tracker.

    The defaults reproduce Table 3.  ``turn_threshold_degrees`` is the
    Delta-theta knob swept in Figures 8 and 9.
    """

    #: Speed below which a vessel is considered halted (knots).
    min_speed_knots: float = 1.0
    #: Relative speed change (percent) that flags acceleration/deceleration.
    speed_change_percent: float = 25.0
    #: Silence longer than this marks a communication gap (seconds).
    gap_period_seconds: int = 600
    #: Heading change (degrees) that flags a turn, instantaneous or smooth.
    turn_threshold_degrees: float = 15.0
    #: Radius (meters) within which consecutive pauses form a long-term stop.
    stop_radius_meters: float = 200.0
    #: Speed (knots) below which a vessel counts as moving "too slowly" for
    #: the slow-motion event.  Higher than v_min: a trawler fishing at 3-4
    #: knots is in slow motion but not paused.
    slow_speed_knots: float = 5.0
    #: Number of latest positions inspected for long-lasting events.
    inspected_positions: int = 10
    #: Factor over the recent mean speed beyond which a point is off-course.
    #: An off-course position incurs "a very abrupt change in velocity (both
    #: in speed and heading)"; this bounds the speed part of that test.
    outlier_speed_factor: float = 5.0
    #: Minimum implied speed (knots) for the off-course test to trigger, so
    #: that GPS jitter on an anchored vessel is not flagged as an outlier.
    outlier_min_speed_knots: float = 20.0
    #: Heading deviation (degrees) from the recent mean course that, combined
    #: with the abrupt speed change, marks an off-course position.
    outlier_heading_degrees: float = 60.0
    #: Upper bound on consecutive discarded outliers per vessel: if this many
    #: successive positions all look off-course, the course genuinely changed
    #: and the tracker re-accepts input rather than dropping a real manoeuvre.
    max_consecutive_outliers: int = 2

    def __post_init__(self) -> None:
        if self.min_speed_knots <= 0:
            raise ValueError("min_speed_knots must be positive")
        if not 0 < self.speed_change_percent:
            raise ValueError("speed_change_percent must be positive")
        if self.gap_period_seconds <= 0:
            raise ValueError("gap_period_seconds must be positive")
        if not 0 < self.turn_threshold_degrees <= 180:
            raise ValueError("turn_threshold_degrees must be in (0, 180]")
        if self.stop_radius_meters <= 0:
            raise ValueError("stop_radius_meters must be positive")
        if self.inspected_positions < 2:
            raise ValueError("inspected_positions must be at least 2")

    @property
    def min_speed_mps(self) -> float:
        """v_min converted to meters per second."""
        return knots_to_mps(self.min_speed_knots)

    @property
    def outlier_min_speed_mps(self) -> float:
        """Outlier speed floor converted to meters per second."""
        return knots_to_mps(self.outlier_min_speed_knots)

    @property
    def slow_speed_mps(self) -> float:
        """Slow-motion threshold converted to meters per second."""
        return knots_to_mps(self.slow_speed_knots)
