"""The Mobility Tracker: online detection of trajectory events (Section 3.1).

The tracker maintains, per vessel, the instantaneous velocity vector derived
from its two most recent positions plus a bounded history of the last *m*
accepted positions.  Each incoming tuple is examined once:

* **instantaneous** events — *pause* (speed below v_min), *speed change*
  (relative deviation above alpha %), *turn* (heading change above
  Delta-theta), and *off-course* outliers (abrupt deviation from the mean
  velocity of the previous m positions, discarded as noise) — cost O(1);
* **long-lasting** events — *gap in reporting* (silence above Delta-T),
  *smooth turn* (cumulative heading drift above Delta-theta), *long-term
  stop* (m consecutive pause/turn events inside radius r, reported as their
  centroid with total duration), and *slow motion* (m consecutive low-speed
  reports along a path, reported as their median) — cost O(m).

Everything runs in main memory without index support.
"""

import math
from collections import deque
from collections.abc import Iterable

from repro import obs
from repro.ais.stream import PositionalTuple
from repro.geo.haversine import (
    haversine_meters,
    heading_difference_degrees,
    initial_bearing_degrees,
    signed_heading_change_degrees,
)
from repro.tracking.config import TrackingParameters
from repro.tracking.types import (
    MovementEvent,
    MovementEventType,
    TrackerStatistics,
    VelocityVector,
)

_EPSILON_SPEED = 1e-9


class _VesselState:
    """Mutable per-vessel bookkeeping kept by the tracker."""

    __slots__ = (
        "last",
        "velocity",
        "recent_speeds",
        "recent_headings",
        "cumulative_turn",
        "stop_run",
        "stop_active",
        "slow_run",
        "consecutive_outliers",
        "traveled_meters",
    )

    def __init__(self, history_length: int):
        self.last: PositionalTuple | None = None
        self.velocity: VelocityVector | None = None
        # Speeds/headings of the last m accepted transitions, for the
        # off-course mean-velocity test.
        self.recent_speeds: deque[float] = deque(maxlen=history_length)
        self.recent_headings: deque[float] = deque(maxlen=history_length)
        # Signed cumulative heading change for the smooth-turn detector.
        self.cumulative_turn = 0.0
        # Run of consecutive pause/turn positions within the stop radius.
        self.stop_run: list[PositionalTuple] = []
        self.stop_active = False
        # Run of consecutive low-speed positions for slow-motion detection.
        self.slow_run: list[tuple[PositionalTuple, float]] = []
        self.consecutive_outliers = 0
        # Cumulative traveled distance over accepted transitions (the
        # "traveled distance from a given origin" feature of Section 3.1).
        self.traveled_meters = 0.0


class MobilityTracker:
    """Detect trajectory events over a cleaned positional stream.

    Parameters
    ----------
    parameters:
        Tracking thresholds; defaults reproduce Table 3 of the paper.

    Usage::

        tracker = MobilityTracker()
        for position in stream:
            events = tracker.process(position)

    Call :meth:`finalize` at end-of-stream to close any open long-term
    stops.  The tracker is deliberately stateful and single-threaded, like
    the paper's main-memory C++ module; parallelism is obtained by
    partitioning the fleet across tracker instances.
    """

    backend_name = "scalar"

    def __init__(self, parameters: TrackingParameters | None = None):
        self.parameters = parameters or TrackingParameters()
        self.statistics = TrackerStatistics()
        self._vessels: dict[int, _VesselState] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def process(self, position: PositionalTuple) -> list[MovementEvent]:
        """Examine one positional tuple; return the events it triggered."""
        self.statistics.positions_seen += 1
        state = self._vessels.get(position.mmsi)
        if state is None:
            state = _VesselState(self.parameters.inspected_positions)
            self._vessels[position.mmsi] = state

        if state.last is None:
            state.last = position
            return []

        dt = position.timestamp - state.last.timestamp
        if dt <= 0:
            # The positional stream is append-only per vessel; a stale or
            # duplicated timestamp carries no new motion information.
            self.statistics.positions_out_of_sequence += 1
            return []

        events: list[MovementEvent] = []
        if dt > self.parameters.gap_period_seconds:
            events.extend(self._handle_gap(state, position))
            state.last = position
            return self._count(events)

        distance = haversine_meters(
            state.last.lon, state.last.lat, position.lon, position.lat
        )
        speed = distance / dt
        if distance > 1.0:
            heading = initial_bearing_degrees(
                state.last.lon, state.last.lat, position.lon, position.lat
            )
        elif state.velocity is not None:
            # Sub-meter displacement: bearing is GPS noise, keep the course.
            heading = state.velocity.heading_degrees
        else:
            heading = 0.0
        velocity_now = VelocityVector(speed, heading)

        if self._is_off_course(state, velocity_now):
            state.consecutive_outliers += 1
            if state.consecutive_outliers <= self.parameters.max_consecutive_outliers:
                self.statistics.positions_discarded_as_outliers += 1
                events.append(
                    self._event(MovementEventType.OFF_COURSE, position, velocity_now)
                )
                # The point is dropped: per-vessel state keeps the previous
                # position so the distorted segment never enters the synopsis.
                return self._count(events)
            # Too many successive "outliers": the course genuinely changed.
            state.consecutive_outliers = 0
        else:
            state.consecutive_outliers = 0

        events.extend(self._instantaneous_events(state, position, velocity_now))
        events.extend(self._smooth_turn(state, position, velocity_now, events))
        events.extend(self._stop_detector(state, position, velocity_now, events))
        events.extend(self._slow_motion_detector(state, position, velocity_now))

        state.recent_speeds.append(speed)
        state.recent_headings.append(heading)
        state.velocity = velocity_now
        state.last = position
        state.traveled_meters += distance
        return self._count(events)

    def process_batch(
        self, positions: Iterable[PositionalTuple]
    ) -> list[MovementEvent]:
        """Process a batch of tuples (one window slide worth of arrivals)."""
        with obs.span("tracking.process_batch"):
            seen_before = self.statistics.positions_seen
            events: list[MovementEvent] = []
            for position in positions:
                events.extend(self.process(position))
            obs.count(
                "tracking.positions", self.statistics.positions_seen - seen_before
            )
            obs.count("tracking.movement_events", len(events))
            return events

    def process_batch_tagged(
        self, indexed_positions: list
    ) -> list[tuple[tuple[int, int], MovementEvent]]:
        """Batch entry point for the shard runtime.

        Takes ``(global_index, position)`` pairs, returns
        ``((global_index, k), event)`` tagged events with ``k``
        enumerating each position's events in emission order, so the
        supervisor can splice per-shard outputs back into the exact
        order a single-process tracker would have produced.
        """
        tagged: list[tuple[tuple[int, int], MovementEvent]] = []
        for global_index, position in indexed_positions:
            for k, event in enumerate(self.process(position)):
                tagged.append(((global_index, k), event))
        return tagged

    def finalize(self) -> list[MovementEvent]:
        """Close open long-lasting events at end-of-stream."""
        events: list[MovementEvent] = []
        for state in self._vessels.values():
            events.extend(self._finalize_stop_run(state))
            state.slow_run.clear()
        return self._count(events)

    def vessel_count(self) -> int:
        """Number of vessels with tracked state."""
        return len(self._vessels)

    def current_velocity(self, mmsi: int) -> VelocityVector | None:
        """Latest velocity vector of a vessel, if any."""
        state = self._vessels.get(mmsi)
        return state.velocity if state else None

    def traveled_distance_meters(self, mmsi: int) -> float:
        """Cumulative distance sailed since the vessel was first seen.

        Sums the Haversine lengths of all accepted transitions (discarded
        off-course outliers contribute nothing).  Section 3.1 lists this
        "traveled distance from a given origin" as a planned tracker
        feature; it supports aggregates like per-trip distance at query
        time without touching the archive.
        """
        state = self._vessels.get(mmsi)
        return state.traveled_meters if state else 0.0

    # ------------------------------------------------------------------
    # detectors
    # ------------------------------------------------------------------

    def _handle_gap(
        self, state: _VesselState, position: PositionalTuple
    ) -> list[MovementEvent]:
        """Communication gap: close runs, report gap start and end points."""
        assert state.last is not None
        events = self._finalize_stop_run(state)
        state.slow_run.clear()
        state.cumulative_turn = 0.0
        velocity = state.velocity or VelocityVector(0.0, 0.0)
        events.append(
            MovementEvent(
                MovementEventType.GAP_START,
                position.mmsi,
                state.last.lon,
                state.last.lat,
                state.last.timestamp,
                speed_mps=velocity.speed_mps,
                heading_degrees=velocity.heading_degrees,
                duration_seconds=position.timestamp - state.last.timestamp,
            )
        )
        events.append(
            MovementEvent(
                MovementEventType.GAP_END,
                position.mmsi,
                position.lon,
                position.lat,
                position.timestamp,
            )
        )
        # Stale motion features must not leak across the silence.
        state.velocity = None
        state.recent_speeds.clear()
        state.recent_headings.clear()
        # The course during the silence is unknown; the straight-line
        # distance is the lower bound on what was sailed.
        state.traveled_meters += haversine_meters(
            state.last.lon, state.last.lat, position.lon, position.lat
        )
        return events

    def _is_off_course(self, state: _VesselState, now: VelocityVector) -> bool:
        """Abrupt deviation from the mean velocity of the last m positions."""
        params = self.parameters
        if len(state.recent_speeds) < 3:
            return False
        mean_speed = sum(state.recent_speeds) / len(state.recent_speeds)
        speed_jump = now.speed_mps > params.outlier_speed_factor * max(
            mean_speed, params.min_speed_mps
        )
        if not speed_jump or now.speed_mps < params.outlier_min_speed_mps:
            return False
        if mean_speed < params.min_speed_mps:
            # Halted vessel: any such jump is a positioning glitch; heading
            # against a jittering anchor course is meaningless.
            return True
        mean_heading = _circular_mean_degrees(state.recent_headings)
        deviation = heading_difference_degrees(now.heading_degrees, mean_heading)
        return deviation > params.outlier_heading_degrees

    def _instantaneous_events(
        self,
        state: _VesselState,
        position: PositionalTuple,
        now: VelocityVector,
    ) -> list[MovementEvent]:
        params = self.parameters
        events: list[MovementEvent] = []

        if now.speed_mps <= params.min_speed_mps:
            events.append(self._event(MovementEventType.PAUSE, position, now))

        previous = state.velocity
        if previous is not None:
            denominator = max(now.speed_mps, _EPSILON_SPEED)
            ratio = abs(now.speed_mps - previous.speed_mps) / denominator
            both_halted = (
                now.speed_mps <= params.min_speed_mps
                and previous.speed_mps <= params.min_speed_mps
            )
            if ratio > params.speed_change_percent / 100.0 and not both_halted:
                events.append(
                    self._event(MovementEventType.SPEED_CHANGE, position, now)
                )

            both_moving = (
                now.speed_mps > params.min_speed_mps
                and previous.speed_mps > params.min_speed_mps
            )
            if both_moving:
                change = heading_difference_degrees(
                    now.heading_degrees, previous.heading_degrees
                )
                if change > params.turn_threshold_degrees:
                    events.append(self._event(MovementEventType.TURN, position, now))
        return events

    def _smooth_turn(
        self,
        state: _VesselState,
        position: PositionalTuple,
        now: VelocityVector,
        detected: list[MovementEvent],
    ) -> list[MovementEvent]:
        """Accumulate small signed heading changes into smooth turns."""
        params = self.parameters
        previous = state.velocity
        moving = (
            previous is not None
            and now.speed_mps > params.min_speed_mps
            and previous.speed_mps > params.min_speed_mps
        )
        if not moving:
            state.cumulative_turn = 0.0
            return []
        if any(e.event_type is MovementEventType.TURN for e in detected):
            # A sharp turn was already reported at this point; restart the
            # accumulation from the new course.
            state.cumulative_turn = 0.0
            return []
        assert previous is not None
        change = signed_heading_change_degrees(
            previous.heading_degrees, now.heading_degrees
        )
        # A sign flip means the drift reversed; restart from this change so
        # that alternating jitter does not accumulate.
        if state.cumulative_turn * change < 0:
            state.cumulative_turn = change
        else:
            state.cumulative_turn += change
        if abs(state.cumulative_turn) > params.turn_threshold_degrees:
            state.cumulative_turn = 0.0
            return [self._event(MovementEventType.SMOOTH_TURN, position, now)]
        return []

    def _stop_detector(
        self,
        state: _VesselState,
        position: PositionalTuple,
        now: VelocityVector,
        detected: list[MovementEvent],
    ) -> list[MovementEvent]:
        """Aggregate consecutive pause/turn points into long-term stops."""
        params = self.parameters
        qualifies = any(
            e.event_type in (MovementEventType.PAUSE, MovementEventType.TURN)
            for e in detected
        )
        events: list[MovementEvent] = []
        if qualifies and state.stop_run:
            anchor = state.stop_run[0]
            within = (
                haversine_meters(anchor.lon, anchor.lat, position.lon, position.lat)
                <= params.stop_radius_meters
            )
        else:
            within = True

        if qualifies and within:
            state.stop_run.append(position)
            if not state.stop_active and len(state.stop_run) >= params.inspected_positions:
                state.stop_active = True
                lon, lat = _centroid(state.stop_run)
                events.append(
                    MovementEvent(
                        MovementEventType.STOP_START,
                        position.mmsi,
                        lon,
                        lat,
                        state.stop_run[0].timestamp,
                        speed_mps=now.speed_mps,
                    )
                )
        else:
            events.extend(self._finalize_stop_run(state))
            if qualifies:
                state.stop_run.append(position)
        return events

    def _finalize_stop_run(self, state: _VesselState) -> list[MovementEvent]:
        """Close the current stop run, emitting its centroid if it matured."""
        events: list[MovementEvent] = []
        if state.stop_active and state.stop_run:
            lon, lat = _centroid(state.stop_run)
            first = state.stop_run[0]
            last = state.stop_run[-1]
            events.append(
                MovementEvent(
                    MovementEventType.STOP_END,
                    first.mmsi,
                    lon,
                    lat,
                    last.timestamp,
                    duration_seconds=last.timestamp - first.timestamp,
                )
            )
        state.stop_run.clear()
        state.stop_active = False
        return events

    def _slow_motion_detector(
        self,
        state: _VesselState,
        position: PositionalTuple,
        now: VelocityVector,
    ) -> list[MovementEvent]:
        """m consecutive low-speed reports along a path -> slow motion."""
        params = self.parameters
        if now.speed_mps > params.slow_speed_mps:
            state.slow_run.clear()
            return []
        state.slow_run.append((position, now.speed_mps))
        if len(state.slow_run) < params.inspected_positions:
            return []
        run_points = [p for p, _ in state.slow_run]
        anchor = run_points[0]
        extent = max(
            haversine_meters(anchor.lon, anchor.lat, p.lon, p.lat)
            for p in run_points
        )
        first_ts = run_points[0].timestamp
        last_ts = run_points[-1].timestamp
        state.slow_run.clear()
        if extent <= params.stop_radius_meters:
            # Confined low-speed run: that is a stop, not slow motion; the
            # stop detector reports it.
            return []
        median_point = _median_position(run_points)
        return [
            MovementEvent(
                MovementEventType.SLOW_MOTION,
                position.mmsi,
                median_point.lon,
                median_point.lat,
                median_point.timestamp,
                speed_mps=now.speed_mps,
                duration_seconds=last_ts - first_ts,
            )
        ]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _event(
        self,
        event_type: MovementEventType,
        position: PositionalTuple,
        velocity: VelocityVector,
    ) -> MovementEvent:
        return MovementEvent(
            event_type,
            position.mmsi,
            position.lon,
            position.lat,
            position.timestamp,
            speed_mps=velocity.speed_mps,
            heading_degrees=velocity.heading_degrees,
        )

    def _count(self, events: list[MovementEvent]) -> list[MovementEvent]:
        for event in events:
            self.statistics.count_event(event.event_type)
        return events


def _centroid(points: list[PositionalTuple]) -> tuple[float, float]:
    """Plain coordinate centroid; adequate over a stop radius of ~200 m."""
    n = len(points)
    return (sum(p.lon for p in points) / n, sum(p.lat for p in points) / n)


def _median_position(points: list[PositionalTuple]) -> PositionalTuple:
    """The temporally middle point of a run (the paper's representative)."""
    return points[len(points) // 2]


def _circular_mean_degrees(headings: Iterable[float]) -> float:
    """Mean of angles in degrees, correct across the 0/360 wrap."""
    sum_sin = 0.0
    sum_cos = 0.0
    count = 0
    for heading in headings:
        radians = math.radians(heading)
        sum_sin += math.sin(radians)
        sum_cos += math.cos(radians)
        count += 1
    if count == 0 or (abs(sum_sin) < 1e-12 and abs(sum_cos) < 1e-12):
        return 0.0
    return math.degrees(math.atan2(sum_sin, sum_cos)) % 360.0
