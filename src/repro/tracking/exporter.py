"""The Trajectory Exporter: map-ready output of synopses (Figure 1).

"Once new trajectory events are detected per vessel upon each window slide,
the annotated critical points can be readily emitted and visualized on maps
through a Trajectory Exporter, e.g., as KML polylines (for trajectories) and
placemarks (for vessel locations)." — Section 2.

Both KML and GeoJSON are plain-text formats generated here without external
dependencies.
"""

from collections import defaultdict
from xml.sax.saxutils import escape

from repro.tracking.types import CriticalPoint


class TrajectoryExporter:
    """Serialize critical-point synopses to KML or GeoJSON."""

    def group_by_vessel(
        self, points: list[CriticalPoint]
    ) -> dict[int, list[CriticalPoint]]:
        """Split a mixed point list into per-vessel timestamp-ordered tracks."""
        tracks: dict[int, list[CriticalPoint]] = defaultdict(list)
        for point in points:
            tracks[point.mmsi].append(point)
        for track in tracks.values():
            track.sort(key=lambda p: p.timestamp)
        return dict(tracks)

    def to_kml(self, points: list[CriticalPoint]) -> str:
        """KML document: one polyline per vessel plus annotated placemarks."""
        tracks = self.group_by_vessel(points)
        parts = [
            '<?xml version="1.0" encoding="UTF-8"?>',
            '<kml xmlns="http://www.opengis.net/kml/2.2">',
            "<Document>",
            "<name>Vessel trajectory synopses</name>",
        ]
        for mmsi, track in sorted(tracks.items()):
            coordinates = " ".join(f"{p.lon:.6f},{p.lat:.6f},0" for p in track)
            parts.append("<Placemark>")
            parts.append(f"<name>vessel {mmsi}</name>")
            parts.append(
                f"<LineString><coordinates>{coordinates}</coordinates></LineString>"
            )
            parts.append("</Placemark>")
            for point in track:
                annotations = ", ".join(
                    sorted(a.value for a in point.annotations)
                )
                parts.append("<Placemark>")
                parts.append(f"<name>{escape(annotations)}</name>")
                parts.append(
                    "<description>"
                    + escape(
                        f"mmsi={mmsi} t={point.timestamp} "
                        f"speed={point.speed_knots:.1f}kn"
                    )
                    + "</description>"
                )
                parts.append(
                    "<Point><coordinates>"
                    f"{point.lon:.6f},{point.lat:.6f},0"
                    "</coordinates></Point>"
                )
                parts.append("</Placemark>")
        parts.append("</Document>")
        parts.append("</kml>")
        return "\n".join(parts)

    def to_geojson(self, points: list[CriticalPoint]) -> dict:
        """GeoJSON FeatureCollection mirroring the KML structure.

        Returns the collection as a plain dict ready for ``json.dumps``.
        """
        tracks = self.group_by_vessel(points)
        features = []
        for mmsi, track in sorted(tracks.items()):
            features.append(
                {
                    "type": "Feature",
                    "geometry": {
                        "type": "LineString",
                        "coordinates": [[p.lon, p.lat] for p in track],
                    },
                    "properties": {"mmsi": mmsi, "kind": "synopsis"},
                }
            )
            for point in track:
                features.append(
                    {
                        "type": "Feature",
                        "geometry": {
                            "type": "Point",
                            "coordinates": [point.lon, point.lat],
                        },
                        "properties": {
                            "mmsi": mmsi,
                            "kind": "critical_point",
                            "timestamp": point.timestamp,
                            "annotations": sorted(
                                a.value for a in point.annotations
                            ),
                            "speed_knots": round(point.speed_knots, 2),
                            "duration_seconds": point.duration_seconds,
                        },
                    }
                )
        return {"type": "FeatureCollection", "features": features}
