"""Trajectory detection: the paper's first main component (Section 3).

The Mobility Tracker consumes the cleaned positional stream and maintains
one velocity vector per vessel, detecting *instantaneous* trajectory
events (pause, speed change, turn, off-course outliers) in O(1) per tuple
and *long-lasting* events (communication gap, smooth turn, long-term stop,
slow motion) in O(m) over the last m positions.  Three interchangeable
kernels implement that contract — the scalar reference
:class:`MobilityTracker`, the batch/columnar :class:`ColumnarTracker`
(the default), and its numpy variant — selected by name through
:func:`create_tracker`; all emit byte-identical event streams.  The
:class:`Compressor` filters those events at each window slide and emits
annotated *critical points* — the ~6 % of input locations that suffice to
reconstruct each vessel's course.
"""

from repro.tracking.backends import (
    DEFAULT_BACKEND,
    available_backends,
    backend_name,
    create_tracker,
)
from repro.tracking.columnar import ColumnarTracker, NumpyColumnarTracker
from repro.tracking.compressor import Compressor
from repro.tracking.config import TrackingParameters
from repro.tracking.exporter import TrajectoryExporter
from repro.tracking.tracker import MobilityTracker
from repro.tracking.types import (
    CriticalPoint,
    MovementEvent,
    MovementEventType,
    VelocityVector,
)
from repro.tracking.window import SlidingWindow, WindowSpec

__all__ = [
    "DEFAULT_BACKEND",
    "ColumnarTracker",
    "Compressor",
    "CriticalPoint",
    "MobilityTracker",
    "MovementEvent",
    "MovementEventType",
    "NumpyColumnarTracker",
    "SlidingWindow",
    "TrackingParameters",
    "TrajectoryExporter",
    "VelocityVector",
    "WindowSpec",
    "available_backends",
    "backend_name",
    "create_tracker",
]
