"""Data types produced by the trajectory detection component.

The tracker emits :class:`MovementEvent` records (the paper's *trajectory
events*); the compressor turns them into :class:`CriticalPoint` records —
annotated locations that survive compression and feed both map display and
complex event recognition.
"""

import enum
from dataclasses import dataclass, field

from repro.geo.units import mps_to_knots


class MovementEventType(enum.Enum):
    """Kinds of trajectory events (Section 3.1).

    ``PAUSE``, ``SPEED_CHANGE``, ``TURN`` and ``OFF_COURSE`` are
    instantaneous; the rest are long-lasting.  ``STOP_START`` / ``STOP_END``
    bracket the durative ``stopped`` movement event consumed by RTEC;
    ``GAP_START`` is reported at the location where a communication gap began
    and ``GAP_END`` when the vessel resumed reporting.
    """

    PAUSE = "pause"
    SPEED_CHANGE = "speed_change"
    TURN = "turn"
    OFF_COURSE = "off_course"
    GAP_START = "gap_start"
    GAP_END = "gap_end"
    SMOOTH_TURN = "smooth_turn"
    STOP_START = "stop_start"
    STOP_END = "stop_end"
    SLOW_MOTION = "slow_motion"

    @property
    def is_instantaneous(self) -> bool:
        """Whether this is one of the paper's instantaneous event kinds."""
        return self in (
            MovementEventType.PAUSE,
            MovementEventType.SPEED_CHANGE,
            MovementEventType.TURN,
            MovementEventType.OFF_COURSE,
        )


#: Event kinds that directly yield critical points.  Instantaneous pauses and
#: off-course positions never do: a pause only matters once it aggregates
#: into a long-term stop, and off-course positions are discarded as noise.
CRITICAL_EVENT_TYPES = frozenset(
    {
        MovementEventType.SPEED_CHANGE,
        MovementEventType.TURN,
        MovementEventType.GAP_START,
        MovementEventType.GAP_END,
        MovementEventType.SMOOTH_TURN,
        MovementEventType.STOP_START,
        MovementEventType.STOP_END,
        MovementEventType.SLOW_MOTION,
    }
)


@dataclass(frozen=True)
class VelocityVector:
    """Instantaneous velocity: speed in m/s plus heading in degrees."""

    speed_mps: float
    heading_degrees: float

    @property
    def speed_knots(self) -> float:
        """Speed converted to knots."""
        return mps_to_knots(self.speed_mps)


@dataclass(frozen=True)
class MovementEvent:
    """One detected trajectory event for one vessel.

    ``timestamp``/``lon``/``lat`` locate the event; for aggregated events
    (long-term stop, slow motion) they are the representative point (centroid
    or median) and ``duration_seconds`` covers the aggregated run.
    """

    event_type: MovementEventType
    mmsi: int
    lon: float
    lat: float
    timestamp: int
    speed_mps: float = 0.0
    heading_degrees: float = 0.0
    duration_seconds: int = 0

    @property
    def speed_knots(self) -> float:
        """Speed at the event, in knots."""
        return mps_to_knots(self.speed_mps)


@dataclass(frozen=True)
class CriticalPoint:
    """A location retained by the compressor, with its annotations.

    One physical point may carry several annotations (e.g. a speed change
    coinciding with a turn); the compressor merges simultaneous events of the
    same vessel into one critical point.
    """

    mmsi: int
    lon: float
    lat: float
    timestamp: int
    annotations: frozenset[MovementEventType]
    speed_mps: float = 0.0
    heading_degrees: float = 0.0
    duration_seconds: int = 0

    def has(self, event_type: MovementEventType) -> bool:
        """Whether this point carries the given annotation."""
        return event_type in self.annotations

    @property
    def speed_knots(self) -> float:
        """Speed at the point, in knots."""
        return mps_to_knots(self.speed_mps)

    def as_timed_point(self) -> tuple[float, float, int]:
        """The bare (lon, lat, timestamp) triple, for interpolation."""
        return (self.lon, self.lat, self.timestamp)


@dataclass
class TrackerStatistics:
    """Counters for tracker observability and the compression study."""

    positions_seen: int = 0
    positions_discarded_as_outliers: int = 0
    positions_out_of_sequence: int = 0
    events_by_type: dict[MovementEventType, int] = field(default_factory=dict)

    def count_event(self, event_type: MovementEventType) -> None:
        """Increment the per-type event counter."""
        self.events_by_type[event_type] = self.events_by_type.get(event_type, 0) + 1
