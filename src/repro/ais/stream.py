"""Positional tuples and stream replay.

The decoded, cleaned stream consists of append-only tuples
``(MMSI, Lon, Lat, tau)`` (Section 2).  Experiments replay a recorded stream
"little by little, reading small chunks periodically according to window
specifications" (Section 5): the window keeps pace with the *reported*
timestamps, not wall-clock simulation time.  :class:`StreamReplayer`
implements that batching.

AIS messages "may be delayed, intermittent, or conflicting"; RTEC copes with
events arriving after the query time at which they occurred (Section 4.2).
:class:`DelayModel` perturbs arrival times to generate such streams.
"""

import heapq
import random
from collections.abc import Iterable, Iterator
from typing import NamedTuple


class PositionalTuple(NamedTuple):
    """One cleaned position report: the system's fundamental stream unit."""

    mmsi: int
    lon: float
    lat: float
    timestamp: int  # seconds, discrete and totally ordered per vessel


class TimedArrival(NamedTuple):
    """A positional tuple paired with the time it reached the system.

    ``arrival`` equals ``position.timestamp`` for in-order streams; a delay
    model pushes it later, producing the out-of-order arrivals of Figure 5.
    """

    arrival: int
    position: PositionalTuple


class DelayModel:
    """Random transmission delays over a positional stream.

    Parameters
    ----------
    delay_probability:
        Fraction of messages that arrive late.
    max_delay_seconds:
        Upper bound on the (uniform) delay of a late message.
    seed:
        Seed for the internal RNG, for reproducible experiments.
    """

    def __init__(
        self,
        delay_probability: float = 0.0,
        max_delay_seconds: int = 0,
        seed: int = 0,
    ):
        if not 0.0 <= delay_probability <= 1.0:
            raise ValueError(f"delay_probability out of range: {delay_probability}")
        if max_delay_seconds < 0:
            raise ValueError(f"negative max_delay_seconds: {max_delay_seconds}")
        self.delay_probability = delay_probability
        self.max_delay_seconds = max_delay_seconds
        self._rng = random.Random(seed)

    def apply(self, positions: Iterable[PositionalTuple]) -> list[TimedArrival]:
        """Assign arrival times, re-sorted into arrival order."""
        arrivals = []
        for position in positions:
            delay = 0
            if (
                self.max_delay_seconds > 0
                and self._rng.random() < self.delay_probability
            ):
                delay = self._rng.randint(1, self.max_delay_seconds)
            arrivals.append(TimedArrival(position.timestamp + delay, position))
        arrivals.sort(key=lambda item: (item.arrival, item.position.timestamp))
        return arrivals


class StreamReplayer:
    """Replay a positional stream in per-slide batches.

    Items are grouped by arrival time into consecutive half-open intervals
    ``(Q - slide, Q]``; each batch is handed to the window operator at query
    time ``Q``.  This mirrors the paper's simulation driver: "we replay this
    stream and the window keeps in pace with the reported timestamps".
    """

    def __init__(self, arrivals: list[TimedArrival], slide_seconds: int):
        if slide_seconds <= 0:
            raise ValueError(f"slide must be positive, got {slide_seconds}")
        self._arrivals = sorted(arrivals, key=lambda item: item.arrival)
        self.slide_seconds = slide_seconds

    def batches(
        self, start_after: int | None = None
    ) -> Iterator[tuple[int, list[PositionalTuple]]]:
        """Yield ``(query_time, positions)`` batches in arrival order.

        Query times are consecutive multiples of the slide step starting from
        the first slide boundary at or after the earliest arrival.  Empty
        batches (no arrivals in a slide) are yielded too, since the window
        still slides and expired tuples must still be evicted.

        ``start_after`` skips every slide with ``query_time <= start_after``
        — the replay cursor for drivers resuming a recorded stream from a
        checkpointed query time (see docs/RUNTIME.md): slides at or before
        the cursor are already reflected in the restored state, and the
        remaining slide boundaries land exactly where an uninterrupted
        replay would have put them.
        """
        if not self._arrivals:
            return
        first = self._arrivals[0].arrival
        slide = self.slide_seconds
        # First query time: the smallest multiple of the slide >= first.
        query_time = ((first + slide - 1) // slide) * slide
        if query_time == first == 0:
            query_time = slide
        index = 0
        total = len(self._arrivals)
        while index < total:
            batch: list[PositionalTuple] = []
            while index < total and self._arrivals[index].arrival <= query_time:
                batch.append(self._arrivals[index].position)
                index += 1
            if start_after is None or query_time > start_after:
                yield query_time, batch
            query_time += slide


def merge_streams(
    streams: Iterable[Iterable[PositionalTuple]],
) -> list[PositionalTuple]:
    """Merge per-vessel streams into one stream ordered by timestamp.

    Each input stream must already be timestamp-ordered (true per vessel by
    construction); the merge is a k-way heap merge.
    """
    iterators = [iter(stream) for stream in streams]
    merged = heapq.merge(*iterators, key=lambda p: p.timestamp)
    return list(merged)
