"""The Data Scanner of Figure 1.

"A Data Scanner decodes each AIS message, identifies those four attributes
[MMSI, Lon, Lat, tau], and cleans them from distortions caused during
transmission (e.g., discard messages with bad checksum)." — Section 2.

The scanner accepts raw ``(receive_time, sentence)`` pairs, validates the
NMEA framing and checksum, reassembles multi-fragment sentence groups
(long type-19 reports are commonly split in two on the wire), decodes the
payload, filters to position-report types 1/2/3/18/19, rejects
sentinel/out-of-range coordinates, and emits
:class:`~repro.ais.stream.PositionalTuple` values.  Counters of every
rejection cause are kept for observability — including fragments that
never completed, which are *counted*, never silently lost.
"""

from dataclasses import dataclass, field

from repro import obs
from repro.ais.messages import decode_payload
from repro.ais.nmea import (
    AivdmSentence,
    ChecksumError,
    NmeaFormatError,
    unwrap_aivdm,
)
from repro.ais.stream import PositionalTuple


@dataclass
class ScannerStatistics:
    """Counters describing what the scanner did with its input."""

    accepted: int = 0
    bad_checksum: int = 0
    bad_format: int = 0
    bad_payload: int = 0
    unsupported_type: int = 0
    invalid_position: int = 0
    #: Multi-fragment groups discarded incomplete (orphaned, superseded,
    #: or still pending at :meth:`DataScanner.flush`), in sentences.
    fragmented_dropped: int = 0
    #: Multi-fragment groups successfully reassembled into one message.
    reassembled: int = 0
    rejection_causes: dict[str, int] = field(default_factory=dict)

    @property
    def rejected(self) -> int:
        """Total number of discarded sentences."""
        return (
            self.bad_checksum
            + self.bad_format
            + self.bad_payload
            + self.unsupported_type
            + self.invalid_position
            + self.fragmented_dropped
        )

    @property
    def total(self) -> int:
        """Total number of sentences seen (pending fragments excluded)."""
        return self.accepted + self.rejected


class FragmentAssembler:
    """Reassembly buffer for multi-fragment AIVDM sentence groups.

    Fragments of one message share ``(channel, message_id,
    fragment_count)``; the assembler holds partial groups until every
    fragment has arrived, then hands back a joined single-fragment
    sentence.  A bounded number of partial groups is kept: the oldest is
    discarded (its sentences counted) when ``max_pending`` is exceeded,
    so a stream of orphans cannot grow memory without bound.
    """

    def __init__(self, max_pending: int = 64):
        self.max_pending = max_pending
        #: key -> {fragment_number: AivdmSentence}; dict order doubles as
        #: arrival order, which is what the eviction policy needs.
        self._pending: dict[tuple, dict[int, AivdmSentence]] = {}
        self.dropped_sentences = 0

    def add(self, parsed: AivdmSentence) -> AivdmSentence | None:
        """Buffer one fragment; the reassembled sentence once complete.

        A repeated fragment number supersedes the stale group (the old
        sentences count as dropped): sequential message ids are only two
        bits on the wire, so collisions simply mean the old group died.
        """
        key = (parsed.channel, parsed.message_id, parsed.fragment_count)
        group = self._pending.get(key)
        if group is not None and parsed.fragment_number in group:
            self.dropped_sentences += len(group)
            obs.count("ais.fragments.dropped", len(group))
            del self._pending[key]
            group = None
        if group is None:
            group = self._pending[key] = {}
        group[parsed.fragment_number] = parsed
        if len(group) < parsed.fragment_count:
            self._evict_overflow()
            return None
        del self._pending[key]
        ordered = [group[i] for i in range(1, parsed.fragment_count + 1)]
        return AivdmSentence(
            payload="".join(fragment.payload for fragment in ordered),
            fill_bits=ordered[-1].fill_bits,
            channel=parsed.channel,
        )

    def _evict_overflow(self) -> None:
        while len(self._pending) > self.max_pending:
            oldest = next(iter(self._pending))
            evicted = len(self._pending.pop(oldest))
            self.dropped_sentences += evicted
            obs.count("ais.fragments.dropped", evicted)

    def flush(self) -> int:
        """Drop all pending partial groups; returns sentences discarded."""
        dropped = sum(len(group) for group in self._pending.values())
        self._pending.clear()
        self.dropped_sentences += dropped
        if dropped:
            obs.count("ais.fragments.dropped", dropped)
        return dropped


class DataScanner:
    """Decode and clean raw AIVDM sentences into positional tuples."""

    def __init__(self, max_pending_fragments: int = 64) -> None:
        self.statistics = ScannerStatistics()
        self._assembler = FragmentAssembler(max_pending_fragments)

    def scan(self, receive_time: int, sentence: str) -> PositionalTuple | None:
        """Process one sentence; return its positional tuple or ``None``.

        The timestamp of the emitted tuple is the receiver timestamp (AIS
        messages only carry the second-of-minute, so receivers stamp full
        timestamps, which is what the dataset of Section 5 records).  For
        multi-fragment messages that is the final fragment's receive time.
        """
        stats = self.statistics
        try:
            parsed = unwrap_aivdm(sentence)
        except ChecksumError:
            stats.bad_checksum += 1
            return None
        except NmeaFormatError:
            stats.bad_format += 1
            return None
        if parsed.is_fragmented:
            before = self._assembler.dropped_sentences
            parsed = self._assembler.add(parsed)
            stats.fragmented_dropped += (
                self._assembler.dropped_sentences - before
            )
            if parsed is None:
                return None
            stats.reassembled += 1
        try:
            report = decode_payload(parsed.payload, parsed.fill_bits)
        except ValueError:
            stats.bad_payload += 1
            return None
        if report is None:
            stats.unsupported_type += 1
            return None
        if not report.has_valid_position():
            stats.invalid_position += 1
            return None
        stats.accepted += 1
        return PositionalTuple(
            mmsi=report.mmsi,
            lon=report.lon,
            lat=report.lat,
            timestamp=receive_time,
        )

    def scan_many(
        self, sentences: list[tuple[int, str]]
    ) -> list[PositionalTuple]:
        """Scan a batch of ``(receive_time, sentence)`` pairs."""
        tuples = []
        for receive_time, sentence in sentences:
            position = self.scan(receive_time, sentence)
            if position is not None:
                tuples.append(position)
        return tuples

    def flush(self) -> int:
        """End-of-stream: count still-pending fragments as dropped.

        Returns the number of sentences discarded; they show up in
        ``statistics.fragmented_dropped`` like every other loss.
        """
        dropped = self._assembler.flush()
        self.statistics.fragmented_dropped += dropped
        return dropped
