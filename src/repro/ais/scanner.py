"""The Data Scanner of Figure 1.

"A Data Scanner decodes each AIS message, identifies those four attributes
[MMSI, Lon, Lat, tau], and cleans them from distortions caused during
transmission (e.g., discard messages with bad checksum)." — Section 2.

The scanner accepts raw ``(receive_time, sentence)`` pairs, validates the
NMEA framing and checksum, decodes the payload, filters to position-report
types 1/2/3/18/19, rejects sentinel/out-of-range coordinates, and emits
:class:`~repro.ais.stream.PositionalTuple` values.  Counters of every
rejection cause are kept for observability.
"""

from dataclasses import dataclass, field

from repro.ais.messages import decode_payload
from repro.ais.nmea import ChecksumError, NmeaFormatError, unwrap_aivdm
from repro.ais.stream import PositionalTuple


@dataclass
class ScannerStatistics:
    """Counters describing what the scanner did with its input."""

    accepted: int = 0
    bad_checksum: int = 0
    bad_format: int = 0
    bad_payload: int = 0
    unsupported_type: int = 0
    invalid_position: int = 0
    rejection_causes: dict[str, int] = field(default_factory=dict)

    @property
    def rejected(self) -> int:
        """Total number of discarded sentences."""
        return (
            self.bad_checksum
            + self.bad_format
            + self.bad_payload
            + self.unsupported_type
            + self.invalid_position
        )

    @property
    def total(self) -> int:
        """Total number of sentences seen."""
        return self.accepted + self.rejected


class DataScanner:
    """Decode and clean raw AIVDM sentences into positional tuples."""

    def __init__(self) -> None:
        self.statistics = ScannerStatistics()

    def scan(self, receive_time: int, sentence: str) -> PositionalTuple | None:
        """Process one sentence; return its positional tuple or ``None``.

        The timestamp of the emitted tuple is the receiver timestamp (AIS
        messages only carry the second-of-minute, so receivers stamp full
        timestamps, which is what the dataset of Section 5 records).
        """
        stats = self.statistics
        try:
            parsed = unwrap_aivdm(sentence)
        except ChecksumError:
            stats.bad_checksum += 1
            return None
        except NmeaFormatError:
            stats.bad_format += 1
            return None
        try:
            report = decode_payload(parsed.payload, parsed.fill_bits)
        except ValueError:
            stats.bad_payload += 1
            return None
        if report is None:
            stats.unsupported_type += 1
            return None
        if not report.has_valid_position():
            stats.invalid_position += 1
            return None
        stats.accepted += 1
        return PositionalTuple(
            mmsi=report.mmsi,
            lon=report.lon,
            lat=report.lat,
            timestamp=receive_time,
        )

    def scan_many(
        self, sentences: list[tuple[int, str]]
    ) -> list[PositionalTuple]:
        """Scan a batch of ``(receive_time, sentence)`` pairs."""
        tuples = []
        for receive_time, sentence in sentences:
            position = self.scan(receive_time, sentence)
            if position is not None:
                tuples.append(position)
        return tuples
