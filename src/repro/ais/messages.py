"""Binary layout of the AIS message types consumed by the system.

The paper considers AIS messages of types 1, 2, 3 (Class A position reports),
18 and 19 (Class B position reports) — Section 2.  This module encodes and
decodes those layouts per ITU-R M.1371: positions in 1/10000 arc-minute,
speed over ground in 1/10 knot, course over ground in 1/10 degree.

Only the fields the surveillance system uses (MMSI, longitude, latitude, plus
speed/course metadata useful for validation) are surfaced; remaining layout
bits are encoded as defaults and skipped on decode, keeping the wire format
faithful so that corrupt-message tests exercise realistic payloads.
"""

from dataclasses import dataclass

from repro.ais.sixbit import BitReader, BitWriter, bits_to_payload, payload_to_bits

#: Message types carrying position reports that the Data Scanner accepts.
POSITION_REPORT_TYPES = frozenset({1, 2, 3, 18, 19})

#: Sentinel "not available" values from the AIS specification.
LON_NOT_AVAILABLE = 181.0
LAT_NOT_AVAILABLE = 91.0
SPEED_NOT_AVAILABLE = 102.3
COURSE_NOT_AVAILABLE = 360.0

_LON_SCALE = 600_000  # 1/10000 arc-minute
_LAT_SCALE = 600_000


@dataclass(frozen=True)
class PositionReport:
    """Decoded AIS position report (any of types 1, 2, 3, 18, 19)."""

    message_type: int
    mmsi: int
    lon: float
    lat: float
    speed_knots: float
    course_degrees: float
    second_of_minute: int

    def has_valid_position(self) -> bool:
        """Whether lon/lat carry an actual fix (not the sentinel values)."""
        return (
            -180.0 <= self.lon <= 180.0
            and -90.0 <= self.lat <= 90.0
        )


def encode_position_report(report: PositionReport) -> tuple[str, int]:
    """Encode a position report into an armored payload.

    Returns ``(payload, fill_bits)`` ready for AIVDM framing.
    """
    if report.message_type not in POSITION_REPORT_TYPES:
        raise ValueError(f"unsupported message type: {report.message_type}")
    if report.message_type in (1, 2, 3):
        bits = _encode_class_a(report)
    elif report.message_type == 18:
        bits = _encode_class_b(report, extended=False)
    else:
        bits = _encode_class_b(report, extended=True)
    return bits_to_payload(bits)


def decode_payload(payload: str, fill_bits: int = 0) -> PositionReport | None:
    """Decode an armored payload into a :class:`PositionReport`.

    Returns ``None`` for message types the system does not consume (the Data
    Scanner ignores them) and raises ``ValueError`` on malformed payloads of
    a supported type.
    """
    bits = payload_to_bits(payload, fill_bits)
    if len(bits) < 6:
        raise ValueError("payload too short to carry a message type")
    reader = BitReader(bits)
    message_type = reader.read_uint(6)
    if message_type not in POSITION_REPORT_TYPES:
        return None
    if message_type in (1, 2, 3):
        return _decode_class_a(message_type, reader)
    if message_type == 18:
        return _decode_class_b(message_type, reader, extended=False)
    return _decode_class_b(message_type, reader, extended=True)


def _encode_common_header(writer: BitWriter, report: PositionReport) -> None:
    writer.write_uint(report.message_type, 6)
    writer.write_uint(0, 2)  # repeat indicator
    writer.write_uint(report.mmsi, 30)


def _encode_class_a(report: PositionReport) -> list[int]:
    """Types 1/2/3: 168-bit Class A position report."""
    writer = BitWriter()
    _encode_common_header(writer, report)
    writer.write_uint(15, 4)  # navigation status: not defined
    writer.write_int(-128, 8)  # rate of turn: not available
    writer.write_uint(_encode_speed(report.speed_knots), 10)
    writer.write_uint(0, 1)  # position accuracy
    writer.write_int(round(report.lon * _LON_SCALE), 28)
    writer.write_int(round(report.lat * _LAT_SCALE), 27)
    writer.write_uint(_encode_course(report.course_degrees), 12)
    writer.write_uint(511, 9)  # true heading: not available
    writer.write_uint(report.second_of_minute % 64, 6)
    writer.write_uint(0, 2)  # maneuver indicator
    writer.write_uint(0, 3)  # spare
    writer.write_uint(0, 1)  # RAIM
    writer.write_uint(0, 19)  # radio status
    return writer.bits()


def _decode_class_a(message_type: int, reader: BitReader) -> PositionReport:
    reader.skip(2)  # repeat indicator
    mmsi = reader.read_uint(30)
    reader.skip(4)  # navigation status
    reader.skip(8)  # rate of turn
    speed = _decode_speed(reader.read_uint(10))
    reader.skip(1)  # position accuracy
    lon = reader.read_int(28) / _LON_SCALE
    lat = reader.read_int(27) / _LAT_SCALE
    course = _decode_course(reader.read_uint(12))
    reader.skip(9)  # true heading
    second = reader.read_uint(6)
    # Remaining: maneuver (2) + spare (3) + RAIM (1) + radio (19); tolerate
    # truncation there since none of it is consumed downstream.
    return PositionReport(message_type, mmsi, lon, lat, speed, course, second)


def _encode_class_b(report: PositionReport, extended: bool) -> list[int]:
    """Type 18 (168-bit) or type 19 (312-bit) Class B position report."""
    writer = BitWriter()
    _encode_common_header(writer, report)
    writer.write_uint(0, 8)  # regional reserved
    writer.write_uint(_encode_speed(report.speed_knots), 10)
    writer.write_uint(0, 1)  # position accuracy
    writer.write_int(round(report.lon * _LON_SCALE), 28)
    writer.write_int(round(report.lat * _LAT_SCALE), 27)
    writer.write_uint(_encode_course(report.course_degrees), 12)
    writer.write_uint(511, 9)  # true heading: not available
    writer.write_uint(report.second_of_minute % 64, 6)
    if not extended:
        writer.write_uint(0, 2)  # regional reserved
        writer.write_uint(1, 1)  # CS unit: carrier-sense Class B
        writer.write_uint(0, 1)  # display flag
        writer.write_uint(0, 1)  # DSC flag
        writer.write_uint(0, 1)  # band flag
        writer.write_uint(0, 1)  # message-22 flag
        writer.write_uint(0, 1)  # assigned-mode flag
        writer.write_uint(0, 1)  # RAIM
        writer.write_uint(0, 20)  # radio status
    else:
        writer.write_uint(0, 4)  # regional reserved
        for _ in range(20):
            writer.write_uint(0, 6)  # ship name: 20 chars of '@'
        writer.write_uint(0, 8)  # ship type: not available
        writer.write_uint(0, 9)  # dimension to bow
        writer.write_uint(0, 9)  # dimension to stern
        writer.write_uint(0, 6)  # dimension to port
        writer.write_uint(0, 6)  # dimension to starboard
        writer.write_uint(0, 4)  # EPFD type
        writer.write_uint(0, 1)  # RAIM
        writer.write_uint(0, 1)  # data-terminal-equipment flag
        writer.write_uint(0, 1)  # assigned-mode flag
        writer.write_uint(0, 4)  # spare
    return writer.bits()


def _decode_class_b(
    message_type: int, reader: BitReader, extended: bool
) -> PositionReport:
    reader.skip(2)  # repeat indicator
    mmsi = reader.read_uint(30)
    reader.skip(8)  # regional reserved
    speed = _decode_speed(reader.read_uint(10))
    reader.skip(1)  # position accuracy
    lon = reader.read_int(28) / _LON_SCALE
    lat = reader.read_int(27) / _LAT_SCALE
    course = _decode_course(reader.read_uint(12))
    reader.skip(9)  # true heading
    second = reader.read_uint(6)
    del extended  # trailing fields are not consumed downstream
    return PositionReport(message_type, mmsi, lon, lat, speed, course, second)


def _encode_speed(speed_knots: float) -> int:
    if speed_knots < 0:
        raise ValueError(f"negative speed: {speed_knots}")
    # 1023 = not available, 1022 = 102.2 knots or higher.
    return min(1022, round(speed_knots * 10))


def _decode_speed(raw: int) -> float:
    if raw == 1023:
        return SPEED_NOT_AVAILABLE
    return raw / 10.0


def _encode_course(course_degrees: float) -> int:
    # 3600 = not available.
    return round((course_degrees % 360.0) * 10) % 3600


def _decode_course(raw: int) -> float:
    if raw >= 3600:
        return COURSE_NOT_AVAILABLE
    return raw / 10.0
