"""NMEA 0183 framing for AIS: the ``!AIVDM`` sentence.

An AIVDM sentence looks like::

    !AIVDM,1,1,,A,13u?etPv2;0n:dDPwUM1U1Cb069D,0*24

with fields: fragment count, fragment number, sequential message id, radio
channel, armored payload, fill bits — followed by ``*`` and a two-hex-digit
XOR checksum over everything between ``!`` and ``*``.

The Data Scanner discards sentences with bad checksums ("clean them from
distortions caused during transmission — e.g., discard messages with bad
checksum", Section 2), so checksum handling is implemented faithfully.
"""

from dataclasses import dataclass


class NmeaFormatError(ValueError):
    """The sentence does not have the AIVDM structure."""


class ChecksumError(ValueError):
    """The sentence checksum does not match its contents."""


@dataclass(frozen=True)
class AivdmSentence:
    """Parsed fields of one AIVDM sentence (possibly one fragment of many).

    Long messages (e.g. the 312-bit type 19) may be split across sentences;
    ``fragment_count``/``fragment_number`` carry the 1-based framing and
    ``message_id`` the sequential id shared by fragments of one message
    (empty for single-fragment sentences).  ``fill_bits`` is only
    meaningful on the final fragment.
    """

    payload: str
    fill_bits: int
    channel: str
    fragment_count: int = 1
    fragment_number: int = 1
    message_id: str = ""

    @property
    def is_fragmented(self) -> bool:
        """Whether this sentence is one piece of a multi-sentence message."""
        return self.fragment_count > 1


def nmea_checksum(body: str) -> str:
    """XOR checksum of a sentence body, as two uppercase hex digits."""
    value = 0
    for char in body:
        value ^= ord(char)
    return f"{value:02X}"


def wrap_aivdm(payload: str, fill_bits: int, channel: str = "A") -> str:
    """Frame an armored payload as a single-fragment AIVDM sentence."""
    body = f"AIVDM,1,1,,{channel},{payload},{fill_bits}"
    return f"!{body}*{nmea_checksum(body)}"


def wrap_aivdm_fragments(
    payload: str,
    fill_bits: int,
    channel: str = "A",
    message_id: int = 1,
    fragments: int = 2,
) -> list[str]:
    """Frame one armored payload as a multi-fragment sentence group.

    The payload is split into ``fragments`` near-equal chunks; every
    fragment carries the shared ``message_id`` and only the last carries
    the fill bits, per NMEA convention.  Receivers reassemble by
    concatenating the payloads in fragment order.
    """
    if fragments < 1:
        raise ValueError(f"fragment count must be positive: {fragments}")
    if fragments > len(payload):
        raise ValueError(
            f"cannot split a {len(payload)}-char payload into {fragments} "
            "non-empty fragments"
        )
    chunk = -(-len(payload) // fragments)  # ceil division
    sentences = []
    for number in range(1, fragments + 1):
        piece = payload[(number - 1) * chunk : number * chunk]
        fill = fill_bits if number == fragments else 0
        body = (
            f"AIVDM,{fragments},{number},{message_id},{channel},{piece},{fill}"
        )
        sentences.append(f"!{body}*{nmea_checksum(body)}")
    return sentences


def unwrap_aivdm(sentence: str) -> AivdmSentence:
    """Parse and validate a single-fragment AIVDM sentence.

    Raises :class:`NmeaFormatError` on structural problems and
    :class:`ChecksumError` when the checksum does not match.
    """
    sentence = sentence.strip()
    if not sentence.startswith("!"):
        raise NmeaFormatError("sentence must start with '!'")
    star = sentence.rfind("*")
    if star == -1 or star + 3 != len(sentence):
        raise NmeaFormatError("missing or malformed checksum suffix")
    body = sentence[1:star]
    declared = sentence[star + 1 :].upper()
    if nmea_checksum(body) != declared:
        raise ChecksumError(
            f"checksum mismatch: computed {nmea_checksum(body)}, declared {declared}"
        )
    fields = body.split(",")
    if len(fields) != 7 or fields[0] not in ("AIVDM", "AIVDO"):
        raise NmeaFormatError(f"not an AIVDM sentence: {body!r}")
    try:
        fragment_count = int(fields[1])
        fragment_number = int(fields[2])
        fill_bits = int(fields[6])
    except ValueError as exc:
        raise NmeaFormatError(f"non-numeric framing field in {body!r}") from exc
    if fragment_count < 1 or not 1 <= fragment_number <= fragment_count:
        raise NmeaFormatError(
            f"inconsistent fragment framing: {fragment_number}/{fragment_count}"
        )
    payload = fields[5]
    if not payload:
        raise NmeaFormatError("empty payload")
    return AivdmSentence(
        payload=payload,
        fill_bits=fill_bits,
        channel=fields[4],
        fragment_count=fragment_count,
        fragment_number=fragment_number,
        message_id=fields[3],
    )
