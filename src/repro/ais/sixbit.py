"""Bit-vector packing and the AIS 6-bit ASCII payload armor.

AIVDM payloads encode each group of 6 bits as one printable character: the
6-bit value 0..63 maps to ASCII 48..87 for values below 40 and 96..119 for
values 40 and above (ITU-R M.1371 table armoring).
"""


class BitWriter:
    """Append-only big-endian bit buffer for composing AIS payloads."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def __len__(self) -> int:
        return len(self._bits)

    def write_uint(self, value: int, width: int) -> None:
        """Append an unsigned integer using ``width`` bits (big-endian)."""
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} unsigned bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_int(self, value: int, width: int) -> None:
        """Append a signed integer (two's complement) using ``width`` bits."""
        bound = 1 << (width - 1)
        if value < -bound or value >= bound:
            raise ValueError(f"value {value} does not fit in {width} signed bits")
        self.write_uint(value & ((1 << width) - 1), width)

    def bits(self) -> list[int]:
        """The accumulated bits as a list of 0/1 integers."""
        return list(self._bits)


class BitReader:
    """Sequential reader over a bit vector produced by :class:`BitWriter`."""

    def __init__(self, bits: list[int]):
        self._bits = bits
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return len(self._bits) - self._pos

    def read_uint(self, width: int) -> int:
        """Read an unsigned integer of ``width`` bits."""
        if width > self.remaining:
            raise ValueError(
                f"cannot read {width} bits, only {self.remaining} remaining"
            )
        value = 0
        for _ in range(width):
            value = (value << 1) | self._bits[self._pos]
            self._pos += 1
        return value

    def read_int(self, width: int) -> int:
        """Read a signed (two's complement) integer of ``width`` bits."""
        value = self.read_uint(width)
        if value >= (1 << (width - 1)):
            value -= 1 << width
        return value

    def skip(self, width: int) -> None:
        """Discard ``width`` bits."""
        self.read_uint(width)


def bits_to_payload(bits: list[int]) -> tuple[str, int]:
    """Armor a bit vector into a 6-bit ASCII payload string.

    Returns ``(payload, fill_bits)`` where ``fill_bits`` is the number of
    padding zero bits appended to reach a multiple of six (reported in the
    AIVDM sentence so the decoder can strip them).
    """
    fill = (-len(bits)) % 6
    padded = bits + [0] * fill
    chars = []
    for i in range(0, len(padded), 6):
        value = 0
        for bit in padded[i : i + 6]:
            value = (value << 1) | bit
        chars.append(_value_to_char(value))
    return "".join(chars), fill


def payload_to_bits(payload: str, fill_bits: int = 0) -> list[int]:
    """Strip the 6-bit ASCII armor back into a bit vector."""
    bits: list[int] = []
    for char in payload:
        value = _char_to_value(char)
        for shift in range(5, -1, -1):
            bits.append((value >> shift) & 1)
    if fill_bits:
        if fill_bits > len(bits):
            raise ValueError("fill_bits exceeds payload length")
        bits = bits[: len(bits) - fill_bits]
    return bits


def _value_to_char(value: int) -> str:
    if not 0 <= value <= 63:
        raise ValueError(f"6-bit value out of range: {value}")
    if value < 40:
        return chr(value + 48)
    return chr(value + 56)


def _char_to_value(char: str) -> int:
    code = ord(char)
    if 48 <= code <= 87:
        return code - 48
    if 96 <= code <= 119:
        return code - 56
    raise ValueError(f"invalid 6-bit ASCII character: {char!r}")
