"""AIS substrate: message encoding/decoding and the stream Data Scanner.

The Automatic Identification System relays VHF messages wrapped in NMEA 0183
``!AIVDM`` sentences whose payload is a 6-bit-ASCII-armored bit vector.  The
paper's system consumes message types 1, 2, 3 (Class A position reports),
18 and 19 (Class B), extracting ``(MMSI, Lon, Lat, tau)`` tuples and dropping
corrupt messages (bad checksum, out-of-range coordinates) before tracking.

This package implements that substrate from scratch:

* :mod:`repro.ais.sixbit` — bit-level packing and the 6-bit ASCII armor;
* :mod:`repro.ais.messages` — binary layout of the supported message types;
* :mod:`repro.ais.nmea` — AIVDM sentence framing and checksums;
* :mod:`repro.ais.scanner` — the Data Scanner of Figure 1 (decode + clean);
* :mod:`repro.ais.stream` — positional tuples and stream replay with the
  delay / out-of-order behaviour discussed in Sections 2 and 4.2.
"""

from repro.ais.messages import PositionReport, decode_payload, encode_position_report
from repro.ais.nmea import (
    AivdmSentence,
    ChecksumError,
    NmeaFormatError,
    nmea_checksum,
    unwrap_aivdm,
    wrap_aivdm,
    wrap_aivdm_fragments,
)
from repro.ais.scanner import DataScanner, FragmentAssembler, ScannerStatistics
from repro.ais.stream import DelayModel, PositionalTuple, StreamReplayer

__all__ = [
    "AivdmSentence",
    "ChecksumError",
    "DataScanner",
    "DelayModel",
    "FragmentAssembler",
    "NmeaFormatError",
    "PositionReport",
    "PositionalTuple",
    "ScannerStatistics",
    "StreamReplayer",
    "decode_payload",
    "encode_position_report",
    "nmea_checksum",
    "unwrap_aivdm",
    "wrap_aivdm",
    "wrap_aivdm_fragments",
]
