"""Polygonal areas: protected zones, forbidden-fishing zones, shallow waters,
port areas.

The complex event definitions (Section 4) rely on the atemporal ``close``
predicate — whether the Haversine distance between a vessel position and an
*Area* is below a threshold — and trip segmentation (Section 3.2) tests
whether a long-term stop falls inside a port polygon.  Both are served here.

Polygons are simple (non self-intersecting) rings of (lon, lat) vertices.
For the small areas used in maritime surveillance (ports, marine parks), a
local equirectangular approximation is accurate to well under a meter, which
is far below GPS noise.
"""

import math
from dataclasses import dataclass

from repro.geo.haversine import EARTH_RADIUS_METERS, haversine_meters


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned (lon, lat) bounding box."""

    min_lon: float
    min_lat: float
    max_lon: float
    max_lat: float

    def contains(self, lon: float, lat: float) -> bool:
        """Whether a point lies inside (or on the edge of) the box."""
        return (
            self.min_lon <= lon <= self.max_lon
            and self.min_lat <= lat <= self.max_lat
        )

    def expanded(self, margin_meters: float) -> "BoundingBox":
        """A box grown by ``margin_meters`` on every side.

        Used as a cheap pre-filter before exact distance-to-polygon tests.
        """
        lat_margin = math.degrees(margin_meters / EARTH_RADIUS_METERS)
        mid_lat = math.radians((self.min_lat + self.max_lat) / 2.0)
        cos_lat = max(0.01, math.cos(mid_lat))
        lon_margin = lat_margin / cos_lat
        return BoundingBox(
            self.min_lon - lon_margin,
            self.min_lat - lat_margin,
            self.max_lon + lon_margin,
            self.max_lat + lat_margin,
        )

    @property
    def center(self) -> tuple[float, float]:
        """Center (lon, lat) of the box."""
        return (
            (self.min_lon + self.max_lon) / 2.0,
            (self.min_lat + self.max_lat) / 2.0,
        )


class GeoPolygon:
    """A named polygonal area on the Earth's surface.

    Parameters
    ----------
    name:
        Identifier of the area (e.g. a port name or ``protected_03``).
    vertices:
        Ring of (lon, lat) pairs.  The closing edge back to the first vertex
        is implicit; at least three vertices are required.
    """

    def __init__(self, name: str, vertices: list[tuple[float, float]]):
        if len(vertices) < 3:
            raise ValueError(
                f"polygon {name!r} needs at least 3 vertices, got {len(vertices)}"
            )
        self.name = name
        self.vertices = [(float(lon), float(lat)) for lon, lat in vertices]
        lons = [v[0] for v in self.vertices]
        lats = [v[1] for v in self.vertices]
        self.bbox = BoundingBox(min(lons), min(lats), max(lons), max(lats))
        # Reference latitude for the local equirectangular projection.
        self._ref_lat = math.radians((self.bbox.min_lat + self.bbox.max_lat) / 2.0)
        self._cos_ref = math.cos(self._ref_lat)

    def __repr__(self) -> str:
        return f"GeoPolygon({self.name!r}, {len(self.vertices)} vertices)"

    def _project(self, lon: float, lat: float) -> tuple[float, float]:
        """Project (lon, lat) to local planar meters around the polygon."""
        x = math.radians(lon) * self._cos_ref * EARTH_RADIUS_METERS
        y = math.radians(lat) * EARTH_RADIUS_METERS
        return x, y

    def contains(self, lon: float, lat: float) -> bool:
        """Even-odd (ray casting) point-in-polygon test."""
        if not self.bbox.contains(lon, lat):
            return False
        inside = False
        n = len(self.vertices)
        x, y = lon, lat
        for i in range(n):
            x1, y1 = self.vertices[i]
            x2, y2 = self.vertices[(i + 1) % n]
            if (y1 > y) != (y2 > y):
                x_cross = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
                if x < x_cross:
                    inside = not inside
        return inside

    def distance_meters(self, lon: float, lat: float) -> float:
        """Distance from a point to the polygon, 0 if the point is inside.

        Exact enough for the ``close`` predicate: minimum over the distances
        to the boundary segments, computed in a local planar projection.
        """
        if self.contains(lon, lat):
            return 0.0
        px, py = self._project(lon, lat)
        best = math.inf
        n = len(self.vertices)
        for i in range(n):
            ax, ay = self._project(*self.vertices[i])
            bx, by = self._project(*self.vertices[(i + 1) % n])
            best = min(best, _point_segment_distance(px, py, ax, ay, bx, by))
        return best

    def is_close(self, lon: float, lat: float, threshold_meters: float) -> bool:
        """The paper's ``close(Lon, Lat, Area)`` predicate.

        True when the Haversine distance between the point and the area is
        less than the threshold (points inside the area are at distance 0).
        """
        if not self.bbox.expanded(threshold_meters).contains(lon, lat):
            return False
        return self.distance_meters(lon, lat) < threshold_meters

    @property
    def centroid(self) -> tuple[float, float]:
        """Area-weighted centroid (lon, lat) of the polygon ring."""
        area2 = 0.0
        cx = 0.0
        cy = 0.0
        n = len(self.vertices)
        for i in range(n):
            x1, y1 = self.vertices[i]
            x2, y2 = self.vertices[(i + 1) % n]
            cross = x1 * y2 - x2 * y1
            area2 += cross
            cx += (x1 + x2) * cross
            cy += (y1 + y2) * cross
        if abs(area2) < 1e-15:
            # Degenerate ring: fall back to the vertex mean.
            return (
                sum(v[0] for v in self.vertices) / n,
                sum(v[1] for v in self.vertices) / n,
            )
        return cx / (3.0 * area2), cy / (3.0 * area2)

    def area_square_meters(self) -> float:
        """Approximate surface area via the shoelace formula in local meters."""
        pts = [self._project(lon, lat) for lon, lat in self.vertices]
        area2 = 0.0
        n = len(pts)
        for i in range(n):
            x1, y1 = pts[i]
            x2, y2 = pts[(i + 1) % n]
            area2 += x1 * y2 - x2 * y1
        return abs(area2) / 2.0

    @classmethod
    def rectangle(
        cls,
        name: str,
        center_lon: float,
        center_lat: float,
        width_meters: float,
        height_meters: float,
    ) -> "GeoPolygon":
        """Axis-aligned rectangular area centered at a point.

        A convenient constructor for the synthetic world model (ports,
        protected areas).
        """
        half_h = math.degrees((height_meters / 2.0) / EARTH_RADIUS_METERS)
        cos_lat = max(0.01, math.cos(math.radians(center_lat)))
        half_w = math.degrees((width_meters / 2.0) / EARTH_RADIUS_METERS) / cos_lat
        return cls(
            name,
            [
                (center_lon - half_w, center_lat - half_h),
                (center_lon + half_w, center_lat - half_h),
                (center_lon + half_w, center_lat + half_h),
                (center_lon - half_w, center_lat + half_h),
            ],
        )


def _point_segment_distance(
    px: float, py: float, ax: float, ay: float, bx: float, by: float
) -> float:
    """Euclidean distance from point P to segment AB in planar coordinates."""
    abx = bx - ax
    aby = by - ay
    norm2 = abx * abx + aby * aby
    if norm2 == 0.0:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * abx + (py - ay) * aby) / norm2
    t = min(1.0, max(0.0, t))
    cx = ax + t * abx
    cy = ay + t * aby
    return math.hypot(px - cx, py - cy)


def nearest_area(
    polygons: list[GeoPolygon], lon: float, lat: float
) -> tuple[GeoPolygon | None, float]:
    """The polygon nearest to a point, with its distance in meters."""
    best: GeoPolygon | None = None
    best_distance = math.inf
    for polygon in polygons:
        distance = polygon.distance_meters(lon, lat)
        if distance < best_distance:
            best = polygon
            best_distance = distance
    return best, best_distance


def point_distance_meters(p1: tuple[float, float], p2: tuple[float, float]) -> float:
    """Haversine distance between two (lon, lat) tuples."""
    return haversine_meters(p1[0], p1[1], p2[0], p2[1])
