"""Geographic primitives used across the maritime surveillance system.

The paper abstracts vessels as 2-dimensional point entities and measures
everything with Haversine distances (Section 3, footnote 2).  This package
provides those primitives from scratch: great-circle distances and bearings,
point-in-polygon tests, distances from points to polygonal areas, and the
linear interpolation used both by the mobility tracker and by the trajectory
approximation-error study (Figure 8).
"""

from repro.geo.haversine import (
    EARTH_RADIUS_METERS,
    destination_point,
    haversine_meters,
    initial_bearing_degrees,
    heading_difference_degrees,
)
from repro.geo.interpolate import interpolate_position, synchronize_track
from repro.geo.polygon import BoundingBox, GeoPolygon
from repro.geo.units import (
    KNOT_IN_METERS_PER_SECOND,
    knots_to_mps,
    mps_to_knots,
)

__all__ = [
    "EARTH_RADIUS_METERS",
    "KNOT_IN_METERS_PER_SECOND",
    "BoundingBox",
    "GeoPolygon",
    "destination_point",
    "haversine_meters",
    "heading_difference_degrees",
    "initial_bearing_degrees",
    "interpolate_position",
    "knots_to_mps",
    "mps_to_knots",
    "synchronize_track",
]
