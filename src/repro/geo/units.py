"""Unit conversions for maritime quantities.

Speeds in the AIS world are reported in knots; the mobility tracker works in
meters and seconds internally (Haversine distances over timestamp deltas).
"""

#: One international knot, in meters per second (1 knot = 1.852 km/h).
KNOT_IN_METERS_PER_SECOND = 1852.0 / 3600.0


def knots_to_mps(knots: float) -> float:
    """Convert a speed in knots to meters per second."""
    return knots * KNOT_IN_METERS_PER_SECOND


def mps_to_knots(mps: float) -> float:
    """Convert a speed in meters per second to knots."""
    return mps / KNOT_IN_METERS_PER_SECOND
