"""Great-circle geometry on a spherical Earth.

All distances in the paper are Haversine distances (Section 3, footnote 2):
between any two consecutive AIS positions a vessel's course evolves in a very
small area, which can be locally approximated with a Euclidean plane using
Haversine distances.  Coordinates are WGS84-style (longitude, latitude) pairs
in decimal degrees; distances are returned in meters.
"""

import math

#: Mean Earth radius in meters (IUGG mean radius R1).
EARTH_RADIUS_METERS = 6_371_008.8


def haversine_meters(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance in meters between two (lon, lat) points.

    >>> round(haversine_meters(23.6, 37.9, 23.6, 37.9))
    0
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    )
    # Clamp against floating-point drift before the sqrt.
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_METERS * math.asin(math.sqrt(a))


def initial_bearing_degrees(
    lon1: float, lat1: float, lon2: float, lat2: float
) -> float:
    """Initial great-circle bearing from point 1 to point 2, in [0, 360).

    0 degrees is true north, 90 degrees is east.  For identical points the
    bearing is undefined; 0.0 is returned by convention.
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dlambda = math.radians(lon2 - lon1)
    y = math.sin(dlambda) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(
        dlambda
    )
    if x == 0.0 and y == 0.0:
        return 0.0
    theta = math.degrees(math.atan2(y, x)) % 360.0
    # A tiny negative angle can round to exactly 360.0 under the modulo.
    return 0.0 if theta == 360.0 else theta


def heading_difference_degrees(heading1: float, heading2: float) -> float:
    """Smallest absolute angular difference between two headings, in [0, 180].

    Used by the turn detector: a change in heading of more than the threshold
    angle (in either direction) marks a turning point.
    """
    diff = abs(heading1 - heading2) % 360.0
    if diff > 180.0:
        diff = 360.0 - diff
    return diff


def signed_heading_change_degrees(heading_from: float, heading_to: float) -> float:
    """Signed smallest rotation from ``heading_from`` to ``heading_to``.

    Positive values are clockwise (starboard) turns.  The result lies in
    (-180, 180].  The smooth-turn detector accumulates these signed changes so
    that alternating jitter cancels out while a consistent drift adds up.
    """
    diff = (heading_to - heading_from) % 360.0
    if diff > 180.0:
        diff -= 360.0
    return diff


def destination_point(
    lon: float, lat: float, bearing_degrees: float, distance_meters: float
) -> tuple[float, float]:
    """Destination (lon, lat) after moving along a great circle.

    Inverse of :func:`haversine_meters` + :func:`initial_bearing_degrees`;
    used by the fleet simulator to advance vessels.
    """
    delta = distance_meters / EARTH_RADIUS_METERS
    theta = math.radians(bearing_degrees)
    phi1 = math.radians(lat)
    lambda1 = math.radians(lon)
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(
        delta
    ) * math.cos(theta)
    sin_phi2 = min(1.0, max(-1.0, sin_phi2))
    phi2 = math.asin(sin_phi2)
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * math.sin(phi2)
    lambda2 = lambda1 + math.atan2(y, x)
    lon2 = math.degrees(lambda2)
    # Normalize longitude to (-180, 180].
    lon2 = ((lon2 + 180.0) % 360.0) - 180.0
    return lon2, math.degrees(phi2)
