"""Linear interpolation along timestamped tracks.

Two consumers in the paper:

* the mobility tracker assumes linear interpolation between successive
  position samples (Section 3, footnote 2);
* the approximation-error study (Figure 8) aligns a compressed trajectory
  with the original by interpolating, at each discarded timestamp, between
  the adjacent *retained* critical points, assuming constant velocity —
  producing a time-synchronized pair of sequences for the RMSE.
"""

from bisect import bisect_right
from collections.abc import Sequence

TimedPoint = tuple[float, float, int]  # (lon, lat, timestamp-seconds)


def interpolate_position(
    p_before: TimedPoint, p_after: TimedPoint, timestamp: int
) -> tuple[float, float]:
    """Position at ``timestamp`` on the segment between two timed points.

    Assumes constant velocity between the two points (linear interpolation in
    lon/lat, adequate over the short inter-report distances of AIS traces).
    Timestamps outside the segment clamp to the nearer endpoint.
    """
    lon1, lat1, t1 = p_before
    lon2, lat2, t2 = p_after
    if t2 <= t1 or timestamp <= t1:
        return lon1, lat1
    if timestamp >= t2:
        return lon2, lat2
    fraction = (timestamp - t1) / (t2 - t1)
    return lon1 + fraction * (lon2 - lon1), lat1 + fraction * (lat2 - lat1)


def synchronize_track(
    reference_timestamps: Sequence[int], compressed: Sequence[TimedPoint]
) -> list[tuple[float, float]]:
    """Resample a compressed track at the reference timestamps.

    For each reference timestamp, interpolates between the pair of adjacent
    compressed points (the critical points retained immediately before and
    after it), exactly as in the paper's RMSE estimation.  Timestamps before
    the first or after the last compressed point clamp to the respective
    endpoint.

    Raises ``ValueError`` when the compressed track is empty or its
    timestamps are not strictly increasing.
    """
    if not compressed:
        raise ValueError("cannot synchronize against an empty compressed track")
    times = [p[2] for p in compressed]
    if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
        raise ValueError("compressed track timestamps must be strictly increasing")

    synchronized: list[tuple[float, float]] = []
    for timestamp in reference_timestamps:
        # Index of the first compressed point strictly after the timestamp.
        idx = bisect_right(times, timestamp)
        if idx == 0:
            lon, lat, _ = compressed[0]
            synchronized.append((lon, lat))
        elif idx == len(compressed):
            lon, lat, _ = compressed[-1]
            synchronized.append((lon, lat))
        else:
            synchronized.append(
                interpolate_position(compressed[idx - 1], compressed[idx], timestamp)
            )
    return synchronized
