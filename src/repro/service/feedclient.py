"""A reconnecting, resuming feed subscriber (the client half of RESUME).

:class:`ResumableFeedReader` is the consumer-side counterpart of the
feed hub's replay ring (:mod:`repro.service.feed`): it subscribes over
any registered transport, performs the ``RESUME <last-seq>`` handshake
(as the first line on TCP/WebSocket, or via ``GET /feed?resume=<n>``
when the transport exposes ``set_feed_resume``), tracks the highest
sequence number seen, and on *any* disconnect — eviction, network fault,
server failover — re-dials with deterministic capped backoff and resumes
from where it left off.  Replay overlap is deduplicated by sequence
number, so the payload stream the caller iterates is gapless and
duplicate-free: byte-identical to an uninterrupted subscription as long
as the hub's ring still holds the lines missed while away.

Used by ``examples/live_feed.py --resume``, the partition drill
(``benchmarks/harness.py --partition-drill``) and the feed-resume tests.
"""

import asyncio

from repro import obs
from repro.resilience.retry import BackoffPolicy
from repro.service.protocol import format_resume, parse_stamped_line
from repro.transport.base import TransportError
from repro.transport.registry import create_transport

#: Re-dial schedule after a lost subscription: 0.05 s doubling to a 1 s
#: cap; the generator ends once ``max_attempts`` *consecutive* dials
#: fail (a drained server is gone, not flaky).
RECONNECT_BACKOFF = BackoffPolicy(
    initial_seconds=0.05, multiplier=2.0, max_seconds=1.0, max_attempts=8
)


class ResumableFeedReader:
    """Iterate feed payload lines across disconnects, gaplessly."""

    def __init__(
        self,
        transport_name: str,
        host: str,
        port: int,
        policy: BackoffPolicy = RECONNECT_BACKOFF,
    ):
        self.transport_name = transport_name
        self.host = host
        self.port = port
        self.policy = policy
        #: Highest sequence number seen so far (0 = nothing yet); also
        #: what the next handshake asks to resume after.
        self.last_seq = 0
        #: Successful re-subscriptions after the initial connect.
        self.reconnects = 0
        self._stop = False

    def stop(self) -> None:
        """Make :meth:`lines` finish after the current line."""
        self._stop = True

    async def _connect(self):
        transport = create_transport(self.transport_name)
        if hasattr(transport, "set_feed_resume"):
            # HTTP (and chaos-wrapped HTTP): the handshake rides the
            # request line, because the chunked feed is send-only.
            transport.set_feed_resume(self.last_seq)
            return await transport.connect(self.host, self.port, "feed")
        session = await transport.connect(self.host, self.port, "feed")
        await session.send(format_resume(self.last_seq))
        return session

    async def lines(self):
        """Async generator of payload lines, resuming across disconnects.

        Unstamped lines (published before the handshake registered) and
        sequence numbers at or below ``last_seq`` (replay overlap) are
        skipped — both reappear, stamped and in order, from the ring.
        """
        failed_dials = 0
        connected_before = False
        while not self._stop:
            try:
                session = await self._connect()
            except (TransportError, ConnectionError, OSError):
                failed_dials += 1
                if failed_dials >= self.policy.max_attempts:
                    return
                await asyncio.sleep(self.policy.delay_for(failed_dials))
                continue
            failed_dials = 0
            if connected_before:
                self.reconnects += 1
                obs.count("service.feedclient.reconnects")
            connected_before = True
            try:
                while not self._stop:
                    try:
                        line = await session.receive()
                    except (TransportError, ConnectionError, OSError):
                        break
                    if line is None:
                        break
                    parsed = parse_stamped_line(line)
                    if parsed is None:
                        continue
                    seq, payload = parsed
                    if seq <= self.last_seq:
                        continue
                    self.last_seq = seq
                    yield payload
            finally:
                await session.close()
