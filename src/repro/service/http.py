"""Minimal stdlib HTTP/1.1 API over asyncio streams.

Four read-only endpoints, enough for health checks, Prometheus scrapes
and operational queries — deliberately not a web framework:

* ``GET /healthz`` — liveness plus pipeline/runtime vitals;
* ``GET /metrics`` — the observability registry in Prometheus text
  exposition format (:func:`repro.obs.render_prometheus`);
* ``GET /vessels/{mmsi}`` — last-known velocity-vector snapshot;
* ``GET /vessels`` — all tracked MMSIs;
* ``GET /alerts?since=N&type=kind,kind`` — recent complex events from
  the alert ring, optionally filtered to a comma-separated set of CE
  kinds (e.g. ``type=rendezvous,darkShip`` for just the pairwise feed);
  filtered-out entries are counted on the registry, never silently
  dropped;
* ``GET /deadletter?limit=N`` — recently quarantined malformed
  sentences with their classified rejection reasons.

Connections are ``Connection: close``; every response carries a
Content-Length so ``curl`` and the smoke tests behave.
"""

import asyncio
import json
from urllib.parse import parse_qs, unquote, urlsplit

from repro import obs
from repro.maritime.definitions import ALL_CE_NAMES
from repro.obs.registry import render_prometheus


class HttpApi:
    """The query/metrics endpoint server."""

    def __init__(self, supervisor, host: str, port: int):
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("ascii", errors="replace").split()
            if len(parts) != 3:
                await self._respond(writer, 400, {"error": "malformed request"})
                return
            method, target, _version = parts
            # Drain headers; the API is GET-only so bodies are ignored.
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            if method != "GET":
                await self._respond(
                    writer, 405, {"error": f"method {method} not allowed"}
                )
                return
            obs.count("service.http.requests")
            status, payload, content_type = self._route(target)
            await self._respond(writer, status, payload, content_type)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _route(self, target: str):
        split = urlsplit(target)
        path = unquote(split.path).rstrip("/") or "/"
        query = parse_qs(split.query)
        if path == "/healthz":
            return 200, self.supervisor.health(), "application/json"
        if path == "/metrics":
            text = render_prometheus(obs.get_registry())
            return 200, text, "text/plain; version=0.0.4; charset=utf-8"
        if path == "/vessels":
            return (
                200,
                {"vessels": self.supervisor.vessels.mmsis()},
                "application/json",
            )
        if path.startswith("/vessels/"):
            return self._vessel(path.removeprefix("/vessels/"))
        if path == "/alerts":
            return self._alerts(query)
        if path == "/deadletter":
            return self._deadletter(query)
        return 404, {"error": f"no such endpoint: {path}"}, "application/json"

    def _deadletter(self, query: dict):
        try:
            limit = int(query.get("limit", ["50"])[0])
        except ValueError:
            return 400, {"error": "limit must be an integer"}, "application/json"
        if limit < 0:
            return 400, {"error": "limit must be >= 0"}, "application/json"
        return (
            200,
            self.supervisor.deadletter.snapshot(limit),
            "application/json",
        )

    def _vessel(self, raw_mmsi: str):
        try:
            mmsi = int(raw_mmsi)
        except ValueError:
            return 400, {"error": f"invalid mmsi: {raw_mmsi}"}, "application/json"
        snapshot = self.supervisor.vessels.get(mmsi)
        if snapshot is None:
            return 404, {"error": f"vessel {mmsi} not seen"}, "application/json"
        return 200, snapshot.to_dict(), "application/json"

    def _alerts(self, query: dict):
        try:
            since = int(query.get("since", ["0"])[0])
        except ValueError:
            return 400, {"error": "since must be an integer"}, "application/json"
        raw_types = query.get("type", [None])[0]
        kinds: set[str] | None = None
        if raw_types is not None:
            kinds = {
                part.strip() for part in raw_types.split(",") if part.strip()
            }
            unknown = sorted(kinds - set(ALL_CE_NAMES))
            if not kinds or unknown:
                return (
                    400,
                    {
                        "error": "type must name known CE kinds",
                        "unknown": unknown,
                        "known": sorted(ALL_CE_NAMES),
                    },
                    "application/json",
                )
        ring = self.supervisor.alert_ring
        entries = ring.since(since)
        if kinds is not None:
            kept = [entry for entry in entries if entry["kind"] in kinds]
            # The filter is an explicit drop: account for it so feed
            # consumers can audit what their subscription excluded.
            obs.count("service.http.alerts_filtered", len(entries) - len(kept))
            entries = kept
        return (
            200,
            {"alerts": entries, "last_seq": ring.last_seq},
            "application/json",
        )

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        content_type: str = "application/json",
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed"}
        if isinstance(payload, str):
            body = payload.encode()
        else:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        writer.write(head.encode("ascii") + body)
        await writer.drain()
