"""The subscription feed: one JSON line per slide, slow consumers evicted.

Every completed slide publishes one JSON line (alerts + fresh critical
points, see :mod:`repro.service.protocol`) to every connected subscriber.
Each subscriber owns a bounded outbound queue drained by its own writer
task; a subscriber whose queue fills up — it stopped reading, or its link
is too slow — is evicted (connection closed, ``service.feed.evicted``
incremented) so one stuck client can never stall the pipeline or grow
memory. The paper's monitor is push-based for exactly this surface:
"critical points and complex events are emitted as they happen".

Message framing is delegated to a pluggable
:class:`~repro.transport.base.Transport`: the default newline-over-TCP
wire is byte-compatible with the pre-transport feed, while WebSocket
subscribers get one text frame per line and HTTP subscribers a chunked
``GET /feed`` stream (``ServiceConfig.feed_transport``).
"""

import asyncio

from repro import obs
from repro.transport.base import Transport, TransportError, TransportSession
from repro.transport.tcp import CLIENT_READ_LIMIT, TcpTransport


class _Subscriber:
    """One connected feed client with its bounded outbound queue."""

    def __init__(self, session: TransportSession, queue_size: int):
        self.session = session
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.task: asyncio.Task | None = None
        self.evicted = False

    async def run(self) -> None:
        """Drain the queue into the transport until closed or evicted."""
        try:
            while True:
                line = await self.queue.get()
                if line is None:
                    break
                await self.session.send(line)
        except (TransportError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            await self.session.close()


class FeedHub:
    """Fan-out of feed lines to all live subscribers."""

    def __init__(
        self,
        host: str,
        port: int,
        queue_size: int = 256,
        transport: Transport | None = None,
    ):
        self.host = host
        self.port = port
        self.queue_size = queue_size
        self.transport = transport or TcpTransport()
        self._server: asyncio.base_events.Server | None = None
        self._subscribers: set[_Subscriber] = set()
        self.evicted_count = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=CLIENT_READ_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = await self.transport.accept(reader, writer, "feed")
        if session is None:
            obs.count("service.feed.handshake_failures")
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            return
        subscriber = _Subscriber(session, self.queue_size)
        self._subscribers.add(subscriber)
        obs.count("service.feed.subscribers")
        obs.set_gauge("service.feed.active_subscribers", len(self._subscribers))
        subscriber.task = asyncio.current_task()
        try:
            # The handler itself is the writer task; subscribers never
            # send application data, so the read side is ignored.
            await subscriber.run()
        finally:
            self._subscribers.discard(subscriber)
            obs.set_gauge(
                "service.feed.active_subscribers", len(self._subscribers)
            )

    def publish(self, line: str) -> None:
        """Queue one line to every subscriber (framing is per-transport)."""
        obs.count("service.feed.published")
        for subscriber in list(self._subscribers):
            if subscriber.evicted:
                continue
            try:
                subscriber.queue.put_nowait(line)
            except asyncio.QueueFull:
                self._evict(subscriber)

    def _evict(self, subscriber: _Subscriber) -> None:
        subscriber.evicted = True
        self.evicted_count += 1
        obs.count("service.feed.evicted")
        # Unblock the writer task; anything still queued is abandoned —
        # but counted, so eviction is never silent data loss.
        dropped = 0
        while not subscriber.queue.empty():
            subscriber.queue.get_nowait()
            dropped += 1
        if dropped:
            obs.count("service.feed.dropped_lines", dropped)
        subscriber.queue.put_nowait(None)
        self._subscribers.discard(subscriber)

    async def close(self) -> None:
        """Flush and disconnect every subscriber, then stop listening."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        tasks = []
        for subscriber in list(self._subscribers):
            try:
                subscriber.queue.put_nowait(None)
            except asyncio.QueueFull:
                self._evict(subscriber)
            # Await the writer task either way: an evicted subscriber's
            # task still has to finish closing its socket before close()
            # returns, or shutdown leaks a task mid-write.
            if subscriber.task is not None:
                tasks.append(subscriber.task)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._subscribers.clear()

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)
