"""The subscription feed: one JSON line per slide, slow consumers evicted.

Every completed slide publishes one JSON line (alerts + fresh critical
points, see :mod:`repro.service.protocol`) to every connected subscriber.
Each subscriber owns a bounded outbound queue drained by its own writer
task; a subscriber whose queue fills up — it stopped reading, or its link
is too slow — is evicted (connection closed, ``service.feed.evicted``
incremented) so one stuck client can never stall the pipeline or grow
memory. The paper's monitor is push-based for exactly this surface:
"critical points and complex events are emitted as they happen".

Message framing is delegated to a pluggable
:class:`~repro.transport.base.Transport`: the default newline-over-TCP
wire is byte-compatible with the pre-transport feed, while WebSocket
subscribers get one text frame per line and HTTP subscribers a chunked
``GET /feed`` stream (``ServiceConfig.feed_transport``).

**Resumable subscriptions** (docs/SERVICE.md): every published line gets
a monotonic sequence number backed by a bounded replay ring.  A
subscriber that opens with the ``RESUME <last-seq>`` handshake (sent as
its first line on TCP/WebSocket, or as ``GET /feed?resume=<n>`` over
HTTP) is switched to *stamped* delivery — ``<seq>\\t<payload>`` — and
first receives every ring-held line after ``last-seq``, so a client that
reconnects after an eviction or a network fault resumes gapless.  Lines
evicted from the ring before the resume are counted
(``service.feed.resume_gap_lines``), never silently skipped.
Subscribers that send nothing get the classic unstamped feed, byte for
byte — resumability is strictly opt-in so the byte-identity contract of
the plain feed is untouched.
"""

import asyncio
import contextlib
from collections import deque

from repro import obs
from repro.service.protocol import format_stamped_line, parse_resume
from repro.transport.base import Transport, TransportError, TransportSession
from repro.transport.tcp import CLIENT_READ_LIMIT, TcpTransport


#: Queue marker that wakes the writer to check its replay buffer.
_NUDGE = object()


class _Subscriber:
    """One connected feed client with its bounded outbound queue."""

    def __init__(self, session: TransportSession, queue_size: int):
        self.session = session
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.task: asyncio.Task | None = None
        #: Reader task awaiting an optional ``RESUME`` handshake line.
        self.watcher: asyncio.Task | None = None
        #: True once the subscriber resumed: lines arrive seq-stamped.
        self.stamped = False
        #: Stamped ring-replay lines, sent ahead of anything queued.  A
        #: separate staging buffer (bounded by the ring size) so a resume
        #: gap larger than the live queue can still be recovered.
        self.replay: deque[str] = deque()
        self.evicted = False

    async def run(self) -> None:
        """Drain the replay buffer, then the queue, until closed/evicted."""
        try:
            while True:
                while self.replay:
                    await self.session.send(self.replay.popleft())
                line = await self.queue.get()
                if line is None:
                    break
                if line is _NUDGE:
                    continue
                await self.session.send(line)
        except (TransportError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            await self.session.close()


class FeedHub:
    """Fan-out of feed lines to all live subscribers."""

    def __init__(
        self,
        host: str,
        port: int,
        queue_size: int = 256,
        transport: Transport | None = None,
        replay_ring: int = 1024,
    ):
        if replay_ring < 1:
            raise ValueError(f"replay_ring must be >= 1: {replay_ring}")
        self.host = host
        self.port = port
        self.queue_size = queue_size
        self.transport = transport or TcpTransport()
        self._server: asyncio.base_events.Server | None = None
        self._subscribers: set[_Subscriber] = set()
        self.evicted_count = 0
        #: Sequence number the *next* published line will carry (1-based).
        self.next_seq = 1
        #: The replay ring: the last ``replay_ring`` published lines with
        #: their sequence numbers, the source of ``RESUME`` replays.
        self._ring: deque[tuple[int, str]] = deque(maxlen=replay_ring)
        self.resumed_count = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=CLIENT_READ_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = await self.transport.accept(reader, writer, "feed")
        if session is None:
            obs.count("service.feed.handshake_failures")
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            return
        subscriber = _Subscriber(session, self.queue_size)
        self._subscribers.add(subscriber)
        obs.count("service.feed.subscribers")
        obs.set_gauge("service.feed.active_subscribers", len(self._subscribers))
        subscriber.task = asyncio.current_task()
        resume_seq = getattr(session, "resume_seq", None)
        if resume_seq is not None:
            # HTTP carries the handshake in the request line itself
            # (``GET /feed?resume=<n>``) — the accept already parsed it.
            self._resume(subscriber, resume_seq)
        else:
            # TCP/WebSocket subscribers may send one ``RESUME <seq>``
            # line; a subscriber that never writes stays on the classic
            # unstamped feed (the watcher then idles until disconnect).
            subscriber.watcher = asyncio.ensure_future(
                self._watch_resume(subscriber)
            )
        try:
            # The handler itself is the writer task; aside from the
            # optional resume handshake, subscribers never send
            # application data.
            await subscriber.run()
        finally:
            if subscriber.watcher is not None:
                subscriber.watcher.cancel()
                with contextlib.suppress(asyncio.CancelledError, Exception):
                    await subscriber.watcher
            self._subscribers.discard(subscriber)
            obs.set_gauge(
                "service.feed.active_subscribers", len(self._subscribers)
            )

    async def _watch_resume(self, subscriber: _Subscriber) -> None:
        """Await one optional ``RESUME`` handshake line from a subscriber."""
        try:
            line = await subscriber.session.receive()
        except (TransportError, ConnectionResetError, OSError):
            return
        if line is None:
            return
        since_seq = parse_resume(line)
        if since_seq is None:
            obs.count("service.feed.bad_handshakes")
            return
        self._resume(subscriber, since_seq)

    def _resume(self, subscriber: _Subscriber, since_seq: int) -> None:
        """Switch a subscriber to stamped delivery, replaying the ring.

        Runs synchronously on the event loop, so the switch is atomic
        with respect to :meth:`publish`: no line can slip between the
        ring replay and the first live stamped line.
        """
        if subscriber.evicted:
            return
        subscriber.stamped = True
        self.resumed_count += 1
        obs.count("service.feed.resumed")
        # Anything still queued unstamped is superseded by the stamped
        # replay below (those lines are in the ring too) — dropping it
        # here is deduplication, not loss.
        while not subscriber.queue.empty():
            subscriber.queue.get_nowait()
        replay = [(seq, line) for seq, line in self._ring if seq > since_seq]
        oldest_available = replay[0][0] if replay else self.next_seq
        gap = max(0, oldest_available - since_seq - 1)
        if gap:
            # Lines the ring already evicted are gone for good; counted,
            # never silent (same contract as every shed in the tree).
            obs.count("service.feed.resume_gap_lines", gap)
        subscriber.replay.extend(
            format_stamped_line(seq, line) for seq, line in replay
        )
        if replay:
            # The writer may be parked on an empty queue; wake it so the
            # replay goes out before the next live slide.  The queue was
            # just drained in this same synchronous block, so it has room.
            subscriber.queue.put_nowait(_NUDGE)

    def publish(self, line: str) -> None:
        """Queue one line to every subscriber (framing is per-transport)."""
        obs.count("service.feed.published")
        seq = self.next_seq
        self.next_seq += 1
        self._ring.append((seq, line))
        for subscriber in list(self._subscribers):
            if subscriber.evicted:
                continue
            try:
                subscriber.queue.put_nowait(
                    format_stamped_line(seq, line)
                    if subscriber.stamped
                    else line
                )
            except asyncio.QueueFull:
                self._evict(subscriber)

    def _evict(self, subscriber: _Subscriber) -> None:
        subscriber.evicted = True
        self.evicted_count += 1
        obs.count("service.feed.evicted")
        # An unsent replay is abandoned uncounted — those lines are still
        # in the ring, recoverable by the next RESUME.
        subscriber.replay.clear()
        # Unblock the writer task; anything still queued is abandoned —
        # but counted, so eviction is never silent data loss.
        dropped = 0
        while not subscriber.queue.empty():
            line = subscriber.queue.get_nowait()
            if line is _NUDGE:
                continue
            dropped += 1
        if dropped:
            obs.count("service.feed.dropped_lines", dropped)
        subscriber.queue.put_nowait(None)
        self._subscribers.discard(subscriber)

    async def close(self) -> None:
        """Flush and disconnect every subscriber, then stop listening."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        tasks = []
        for subscriber in list(self._subscribers):
            try:
                subscriber.queue.put_nowait(None)
            except asyncio.QueueFull:
                self._evict(subscriber)
            # Await the writer task either way: an evicted subscriber's
            # task still has to finish closing its socket before close()
            # returns, or shutdown leaks a task mid-write.
            if subscriber.task is not None:
                tasks.append(subscriber.task)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._subscribers.clear()

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)
