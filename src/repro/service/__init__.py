"""The live service layer: always-on surveillance over real sockets.

The paper's system is an *online* monitor — AIVDM sentences arrive over
the wire and critical points / complex events are emitted as they happen
(Sections 2–4).  This package wraps the batch pipeline (single-process or
the sharded runtime of docs/RUNTIME.md) behind three stdlib-only asyncio
surfaces:

* :mod:`repro.service.ingest` — a TCP listener for raw ``!AIVDM`` lines
  from many concurrent feeds, with a bounded queue and counted
  oldest-first load-shedding;
* :mod:`repro.service.feed` — a newline-delimited-JSON subscription feed
  publishing each slide's alerts and critical points, evicting slow
  consumers;
* :mod:`repro.service.http` — ``/healthz``, Prometheus ``/metrics``,
  ``/vessels/{mmsi}`` and ``/alerts?since=``.

:class:`ServiceSupervisor` owns the assembly and the graceful drain;
:mod:`repro.service.replay` is the offline twin the parity tests compare
against, byte for byte.  Wire formats: docs/SERVICE.md.
"""

from repro.service.batcher import SlideBatcher
from repro.service.config import ServiceConfig
from repro.service.feed import FeedHub
from repro.service.feedclient import ResumableFeedReader
from repro.service.http import HttpApi
from repro.service.ingest import IngestQueue, IngestServer
from repro.service.protocol import (
    alert_to_dict,
    format_ingest_line,
    format_resume,
    format_stamped_line,
    parse_ingest_line,
    parse_resume,
    parse_stamped_line,
    point_to_dict,
    slide_feed_line,
)
from repro.service.quarantine import DeadLetterBuffer
from repro.service.replay import offline_feed_lines
from repro.service.state import AlertRing, VesselSnapshot, VesselStateStore
from repro.service.supervisor import ServiceSupervisor, run_service

__all__ = [
    "AlertRing",
    "DeadLetterBuffer",
    "FeedHub",
    "HttpApi",
    "IngestQueue",
    "IngestServer",
    "ResumableFeedReader",
    "ServiceConfig",
    "ServiceSupervisor",
    "SlideBatcher",
    "VesselSnapshot",
    "VesselStateStore",
    "alert_to_dict",
    "format_ingest_line",
    "format_resume",
    "format_stamped_line",
    "offline_feed_lines",
    "parse_ingest_line",
    "parse_resume",
    "parse_stamped_line",
    "point_to_dict",
    "run_service",
    "slide_feed_line",
]
