"""Ingest listener: many feed clients, one bounded queue, explicit shedding.

The listener accepts raw ``!AIVDM`` lines (optionally timestamp-prefixed,
see :mod:`repro.service.protocol`) from any number of concurrent
connections and pushes them into one :class:`IngestQueue` shared with the
slide batcher.  Line framing is delegated to a pluggable
:class:`~repro.transport.base.Transport` (newline TCP by default,
WebSocket or HTTP-forward via ``ServiceConfig.ingest_transport``).  The queue is strictly bounded: when producers outrun the
pipeline the *oldest* buffered sentence is dropped — fresh positions are
worth more than stale ones for surveillance — and every shed sentence is
counted in the observability registry (``service.ingest.shed``).  Nothing
is ever lost silently.
"""

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field

from repro import obs
from repro.resilience.faults import fault_point
from repro.service.protocol import parse_ingest_line
from repro.transport.base import Transport, TransportError
from repro.transport.tcp import CLIENT_READ_LIMIT, TcpTransport

#: One buffered sentence: (receive_time, sentence, enqueue_perf_counter).
IngestItem = tuple[int, str, float]


@dataclass
class ConnectionStats:
    """Per-connection ingest accounting, kept for the lifetime of the server."""

    peer: str
    lines: int = 0
    bytes: int = 0
    opened_at: float = field(default_factory=time.time)
    closed: bool = False


class IngestQueue:
    """Bounded FIFO between socket readers and the pipeline.

    ``put`` never blocks: beyond ``capacity`` the oldest item is shed and
    counted.  ``get`` awaits the next item and returns ``None`` once the
    queue is both closed and drained — the batcher's end-of-stream signal.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive: {capacity}")
        self.capacity = capacity
        self._items: deque[IngestItem] = deque()
        self._ready = asyncio.Event()
        self._closed = False
        self.shed_count = 0
        self.put_count = 0

    def put(self, receive_time: int, sentence: str) -> None:
        """Enqueue one sentence, shedding the oldest on overflow."""
        if self._closed:
            # A draining service refuses new input — counted, not silent.
            obs.count("service.ingest.dropped_after_close")
            return
        self._items.append((receive_time, sentence, time.perf_counter()))
        self.put_count += 1
        if len(self._items) > self.capacity:
            self._items.popleft()
            self.shed_count += 1
            obs.count("service.ingest.shed")
        self._ready.set()

    async def get(self) -> IngestItem | None:
        """The next buffered item, or ``None`` at end-of-stream."""
        while True:
            if self._items:
                item = self._items.popleft()
                if not self._items:
                    self._ready.clear()
                return item
            if self._closed:
                return None
            await self._ready.wait()

    def close(self) -> None:
        """No more puts; pending items still drain through ``get``."""
        self._closed = True
        self._ready.set()

    def __len__(self) -> int:
        return len(self._items)


class IngestServer:
    """The ``!AIVDM`` line listener feeding the shared ingest queue."""

    def __init__(
        self,
        queue: IngestQueue,
        host: str,
        port: int,
        clock=None,
        transport: Transport | None = None,
    ):
        self.queue = queue
        self.host = host
        self.port = port
        self._clock = clock or (lambda: int(time.time()))
        self.transport = transport or TcpTransport()
        self._server: asyncio.base_events.Server | None = None
        self.connections: list[ConnectionStats] = []

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=CLIENT_READ_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        stats = ConnectionStats(peer=str(peername))
        self.connections.append(stats)
        obs.count("service.ingest.connections")
        session = await self.transport.accept(reader, writer, "ingest")
        if session is None:
            # Handshake failure (bad upgrade request, truncated head):
            # counted so a misconfigured client is visible, then closed.
            obs.count("service.ingest.handshake_failures")
            stats.closed = True
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            return
        try:
            while True:
                try:
                    line = await session.receive()
                except TransportError:
                    # A protocol violation mid-stream is indistinguishable
                    # from a corrupted link: counted, connection dropped.
                    obs.count("service.ingest.protocol_errors")
                    break
                if line is None:
                    break
                spec = fault_point("service.ingest.socket")
                if spec is not None and spec.kind == "drop":
                    # Injected connection drop: sever mid-stream, exactly
                    # like an upstream feed dying.  The client sees EOF
                    # and is expected to reconnect and resend.
                    obs.count("service.ingest.injected_drops")
                    break
                stats.lines += 1
                stats.bytes += len(line) + 1
                parsed = parse_ingest_line(line, self._clock())
                if parsed is None:
                    # Blank/comment/garbled lines are skipped by design,
                    # but never invisibly: operators distinguish a quiet
                    # feed from one sending junk by this counter.
                    obs.count("service.ingest.ignored")
                    continue
                obs.count("service.ingest.lines")
                self.queue.put(*parsed)
        finally:
            stats.closed = True
            await session.close()

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def open_connections(self) -> int:
        return sum(1 for stats in self.connections if not stats.closed)
