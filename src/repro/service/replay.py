"""Offline twin of the live service, for byte-identical parity checks.

:func:`offline_feed_lines` pushes a recorded sentence stream through the
exact components the live path uses — :class:`~repro.ais.scanner.DataScanner`,
:class:`~repro.ais.stream.StreamReplayer` batching and the same pipeline
system — and serializes each slide with the same
:func:`~repro.service.protocol.slide_feed_line`.  The soak tests assert
that a stream ingested over real TCP sockets yields *these bytes*,
shard-for-shard; the acceptance criterion of the live subsystem is that
the network added nothing and lost nothing (anything shed is counted).
"""

from repro.ais.scanner import DataScanner
from repro.ais.stream import StreamReplayer, TimedArrival
from repro.pipeline.config import SystemConfig
from repro.pipeline.system import SurveillanceSystem
from repro.service.protocol import slide_feed_line


def offline_feed_lines(
    sentences: list[tuple[int, str]],
    world,
    specs,
    config: SystemConfig | None = None,
    shards: int = 1,
) -> list[str]:
    """Feed lines an offline replay of ``sentences`` produces.

    ``shards > 1`` replays on the process-parallel runtime — its output
    is deterministic and identical to the single-process system's, so the
    live-vs-offline comparison composes with the shard count.
    """
    config = config or SystemConfig()
    scanner = DataScanner()
    positions = scanner.scan_many(sentences)
    scanner.flush()
    if shards > 1:
        from repro.runtime import ParallelSurveillanceSystem

        system = ParallelSurveillanceSystem(world, specs, config, shards=shards)
    else:
        system = SurveillanceSystem(world, specs, config)
    lines = []
    try:
        replayer = StreamReplayer(
            [TimedArrival(p.timestamp, p) for p in positions],
            config.window.slide_seconds,
        )
        for query_time, batch in replayer.batches():
            report = system.process_slide(batch, query_time)
            lines.append(slide_feed_line(report, "slide"))
        final = system.finalize()
        if final is not None:
            lines.append(slide_feed_line(final, "finalize"))
    finally:
        if hasattr(system, "close"):
            system.close()
        system.database.close()
    return lines
