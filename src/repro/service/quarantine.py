"""Dead-letter quarantine for malformed AIVDM sentences.

The scanner's rejection *counters* say how much was dropped but not
*what*: a mis-speaking upstream feed (wrong talker, broken checksums, a
proxy mangling payloads) used to be invisible beyond a number.  The
:class:`DeadLetterBuffer` keeps the most recent rejected sentences with
their classified reason so an operator can ``curl /deadletter`` and see
the actual bytes — bounded, so a hostile or broken feed cannot grow it
without limit (the oldest entries are evicted, and evictions are
counted too).
"""

import time
from collections import Counter, deque
from dataclasses import dataclass

from repro import obs

#: Classification reasons, mirroring the scanner's rejection counters.
REASONS = (
    "bad_checksum",
    "bad_format",
    "bad_payload",
    "unsupported_type",
    "invalid_position",
)


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined sentence."""

    receive_time: int
    sentence: str
    reason: str
    quarantined_at: float

    def to_dict(self) -> dict:
        return {
            "receive_time": self.receive_time,
            "sentence": self.sentence,
            "reason": self.reason,
            "quarantined_at": self.quarantined_at,
        }


class DeadLetterBuffer:
    """Bounded ring of recently rejected sentences, by reason."""

    def __init__(self, capacity: int, clock=time.time):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._letters: deque[DeadLetter] = deque(maxlen=capacity)
        self._by_reason: Counter = Counter()
        self.total = 0
        self.evicted = 0

    def quarantine(self, receive_time: int, sentence: str, reason: str) -> None:
        """Record one rejected sentence under its classified reason."""
        if len(self._letters) == self.capacity:
            self.evicted += 1
            obs.count("service.deadletter.evicted")
        self._letters.append(
            DeadLetter(receive_time, sentence, reason, self._clock())
        )
        self._by_reason[reason] += 1
        self.total += 1
        obs.count("service.deadletter.quarantined")
        obs.count(f"service.deadletter.{reason}")

    def recent(self, limit: int = 50) -> list[dict]:
        """The newest quarantined sentences, newest first."""
        letters = list(self._letters)[-limit:]
        return [letter.to_dict() for letter in reversed(letters)]

    def __len__(self) -> int:
        return len(self._letters)

    def snapshot(self, limit: int = 50) -> dict:
        """The ``/deadletter`` payload."""
        return {
            "total": self.total,
            "held": len(self._letters),
            "capacity": self.capacity,
            "evicted": self.evicted,
            "by_reason": dict(self._by_reason),
            "recent": self.recent(limit),
        }
