"""The service supervisor: one object that owns the whole live deployment.

:class:`ServiceSupervisor` assembles the three network surfaces (ingest
listener, subscription feed, HTTP API) around one embedded pipeline —
the single-process :class:`~repro.pipeline.system.SurveillanceSystem` or,
with ``shards > 1``, the process-parallel
:class:`~repro.runtime.ParallelSurveillanceSystem`, whose own supervisor
already handles worker crash-restart with exactly-once checkpoint
recovery (docs/RUNTIME.md); this layer surfaces its restart counts on
``/healthz`` and keeps serving through recoveries.

Shutdown is graceful by contract: :meth:`drain_and_stop` stops accepting
ingest, drains everything already buffered through the pipeline, flushes
the final partial slide plus the end-of-stream ``finalize`` (open stops
close, the synopsis archives into the MOD), publishes the last feed
lines, disconnects subscribers, and only then closes the MOD and the
sharded runtime.
"""

import asyncio
import signal

from repro import obs
from repro.pipeline.config import SystemConfig
from repro.pipeline.system import SurveillanceSystem
from repro.service.batcher import SlideBatcher
from repro.service.config import ServiceConfig
from repro.service.feed import FeedHub
from repro.service.http import HttpApi
from repro.service.ingest import IngestQueue, IngestServer
from repro.service.protocol import slide_feed_line
from repro.service.state import AlertRing, VesselStateStore


def build_system(world, specs, config: SystemConfig, service: ServiceConfig):
    """The embedded pipeline for a service configuration."""
    if service.shards > 1:
        from repro.runtime import ParallelSurveillanceSystem

        return ParallelSurveillanceSystem(
            world,
            specs,
            config,
            shards=service.shards,
            checkpoint_dir=service.checkpoint_dir,
        )
    return SurveillanceSystem(world, specs, config)


class ServiceSupervisor:
    """Lifecycle owner of the live service.

    Parameters
    ----------
    world, specs, config:
        Exactly as for :class:`~repro.pipeline.system.SurveillanceSystem`.
    service:
        Network and backpressure knobs (:class:`ServiceConfig`).
    system_factory:
        Test hook: replaces :func:`build_system` to wrap or slow the
        embedded pipeline (the load-shedding soak test injects delays).
    """

    def __init__(
        self,
        world,
        specs,
        config: SystemConfig | None = None,
        service: ServiceConfig | None = None,
        system_factory=None,
    ):
        self.config = config or SystemConfig()
        self.service = service or ServiceConfig()
        factory = system_factory or build_system
        self.system = factory(world, specs, self.config, self.service)
        self.vessels = VesselStateStore()
        self.alert_ring = AlertRing(self.service.alert_ring_size)
        self.queue = IngestQueue(self.service.ingest_queue_size)
        self.ingest = IngestServer(
            self.queue, self.service.host, self.service.ingest_port
        )
        self.feed = FeedHub(
            self.service.host,
            self.service.feed_port,
            self.service.subscriber_queue_size,
        )
        self.http = HttpApi(self, self.service.host, self.service.http_port)
        self.batcher = SlideBatcher(
            self.system,
            self.queue,
            slide_seconds=self.config.window.slide_seconds,
            on_report=self._on_report,
            on_position=lambda position: self.vessels.update([position]),
            record_ingest=self.service.record_ingest,
        )
        self._batcher_task: asyncio.Task | None = None
        self._stopped = False

    # ------------------------------------------------------------------
    # slide fan-out
    # ------------------------------------------------------------------

    def _on_report(self, report, kind: str) -> None:
        """Publish one completed slide to every query/streaming surface."""
        self.feed.publish(slide_feed_line(report, kind))
        self.alert_ring.append(report.query_time, report.alerts)
        obs.count("service.alerts_published", len(report.alerts))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind all three servers and start the batcher."""
        await self.ingest.start()
        await self.feed.start()
        await self.http.start()
        self._batcher_task = asyncio.ensure_future(self.batcher.run())
        obs.set_gauge("service.up", 1)

    async def drain_and_stop(self) -> None:
        """Graceful shutdown: drain ingest, flush the final slide, close."""
        if self._stopped:
            return
        self._stopped = True
        # 1. Stop accepting new feeds; buffered sentences keep flowing.
        await self.ingest.stop()
        self.queue.close()
        # 2. The batcher returns once the queue is drained; then flush the
        #    last partial slide and the end-of-stream finalize.
        if self._batcher_task is not None:
            await self._batcher_task
        await self.batcher.drain()
        # 3. Disconnect subscribers after the final lines are queued.
        await self.feed.close()
        await self.http.stop()
        # 4. Release the pipeline: sharded workers and checkpoints first,
        #    then the MOD connection (staging flushed by finalize above).
        if hasattr(self.system, "close"):
            self.system.close()
        self.system.database.close()
        obs.set_gauge("service.up", 0)

    async def serve_until(self, stop_event: asyncio.Event) -> None:
        """Serve until ``stop_event`` fires, then drain gracefully."""
        await stop_event.wait()
        await self.drain_and_stop()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` payload."""
        payload = {
            "status": "draining" if self._stopped else "ok",
            "slides": self.batcher.slides_processed,
            "queue_depth": len(self.queue),
            "ingested": self.queue.put_count,
            "shed": self.queue.shed_count,
            "pipeline_errors": self.batcher.pipeline_errors,
            "vessels": len(self.vessels),
            "alerts_last_seq": self.alert_ring.last_seq,
            "feed_subscribers": self.feed.subscriber_count,
            "feed_evicted": self.feed.evicted_count,
            "shards": self.service.shards,
            "scanner": {
                "accepted": self.batcher.scanner.statistics.accepted,
                "rejected": self.batcher.scanner.statistics.rejected,
                "reassembled": self.batcher.scanner.statistics.reassembled,
                "fragmented_dropped": (
                    self.batcher.scanner.statistics.fragmented_dropped
                ),
            },
            "ports": self.ports(),
        }
        if hasattr(self.system, "restart_count"):
            payload["runtime_restarts"] = self.system.restart_count()
        return payload

    def ports(self) -> dict:
        """Actual bound ports (resolves ephemeral ``0`` requests)."""
        return {
            "ingest": self.ingest.port,
            "feed": self.feed.port,
            "http": self.http.port,
        }


async def run_service(
    world,
    specs,
    config: SystemConfig | None = None,
    service: ServiceConfig | None = None,
    announce=print,
) -> ServiceSupervisor:
    """Run a service until SIGINT/SIGTERM; returns after graceful drain.

    This is what ``python -m repro --serve`` calls: it installs signal
    handlers, prints the bound ports, and blocks until a signal triggers
    the drain-and-stop sequence.
    """
    supervisor = ServiceSupervisor(world, specs, config, service)
    await supervisor.start()
    ports = supervisor.ports()
    announce(
        f"live service up: ingest={ports['ingest']} feed={ports['feed']} "
        f"http={ports['http']} (slide={supervisor.config.window.slide_seconds}s, "
        f"shards={supervisor.service.shards})"
    )
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except NotImplementedError:  # non-Unix event loops
            signal.signal(signum, lambda *_: stop_event.set())
    await supervisor.serve_until(stop_event)
    announce(
        f"service drained: {supervisor.batcher.slides_processed} slides, "
        f"{supervisor.queue.put_count} sentences ingested, "
        f"{supervisor.queue.shed_count} shed"
    )
    return supervisor
