"""The service supervisor: one object that owns the whole live deployment.

:class:`ServiceSupervisor` assembles the three network surfaces (ingest
listener, subscription feed, HTTP API) around one embedded pipeline —
the single-process :class:`~repro.pipeline.system.SurveillanceSystem` or,
with ``shards > 1``, the process-parallel
:class:`~repro.runtime.ParallelSurveillanceSystem`, whose own supervisor
already handles worker crash-restart with exactly-once checkpoint
recovery (docs/RUNTIME.md); this layer surfaces its restart counts on
``/healthz`` and keeps serving through recoveries.

On top of that sits the durability layer (docs/RESILIENCE.md), active
when :attr:`~repro.service.config.ServiceConfig.wal_dir` is set:

* every post-shedding sentence is journaled to a write-ahead log before
  processing, and :meth:`start` *replays* a previous incarnation's
  journal through a fresh pipeline before accepting live traffic — the
  restarted service republishes byte-identical slides and resumes
  mid-slide;
* MOD writes run behind a retry + circuit-breaker guard with a
  WAL-backed spill queue, so archival failures degrade instead of
  stalling recognition;
* a slide watchdog detects a wedged pipeline slide and hard-kills the
  shard workers, converting the stall into an ordinary checkpointed
  worker restart.

Shutdown is graceful by contract, but with a deadline:
:meth:`drain_and_stop` stops accepting ingest, drains everything already
buffered through the pipeline, flushes the final partial slide plus the
end-of-stream ``finalize``, publishes the last feed lines, disconnects
subscribers, and only then closes the MOD and the sharded runtime.  If
the pipeline wedges past ``drain_timeout_seconds`` the drain is
force-aborted (counted, journal preserved for replay) instead of hanging
the host's shutdown forever.
"""

import asyncio
import signal
from pathlib import Path

from repro import obs
from repro.pipeline.config import SystemConfig
from repro.pipeline.system import SurveillanceSystem
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.guard import GuardedDatabase, SpillQueue
from repro.resilience.retry import BackoffPolicy
from repro.resilience.wal import IngestJournal
from repro.resilience.watchdog import SlideWatchdog
from repro.service.batcher import SlideBatcher
from repro.service.config import ServiceConfig
from repro.service.feed import FeedHub
from repro.service.http import HttpApi
from repro.service.ingest import IngestQueue, IngestServer
from repro.service.protocol import slide_feed_line
from repro.service.quarantine import DeadLetterBuffer
from repro.service.state import AlertRing, VesselStateStore
from repro.transport.registry import create_transport


def build_system(world, specs, config: SystemConfig, service: ServiceConfig):
    """The embedded pipeline for a service configuration."""
    if service.shards > 1:
        from repro.runtime import ParallelSurveillanceSystem

        return ParallelSurveillanceSystem(
            world,
            specs,
            config,
            shards=service.shards,
            checkpoint_dir=service.checkpoint_dir,
        )
    return SurveillanceSystem(world, specs, config)


class ServiceSupervisor:
    """Lifecycle owner of the live service.

    Parameters
    ----------
    world, specs, config:
        Exactly as for :class:`~repro.pipeline.system.SurveillanceSystem`.
    service:
        Network, backpressure and durability knobs
        (:class:`ServiceConfig`).
    system_factory:
        Test hook: replaces :func:`build_system` to wrap or slow the
        embedded pipeline (the load-shedding soak test injects delays).
    """

    def __init__(
        self,
        world,
        specs,
        config: SystemConfig | None = None,
        service: ServiceConfig | None = None,
        system_factory=None,
    ):
        self.config = config or SystemConfig()
        self.service = service or ServiceConfig()
        factory = system_factory or build_system
        self.system = factory(world, specs, self.config, self.service)
        self.vessels = VesselStateStore()
        self.alert_ring = AlertRing(self.service.alert_ring_size)
        self.queue = IngestQueue(self.service.ingest_queue_size)
        self.ingest = IngestServer(
            self.queue,
            self.service.host,
            self.service.ingest_port,
            transport=create_transport(self.service.ingest_transport),
        )
        self.feed = FeedHub(
            self.service.host,
            self.service.feed_port,
            self.service.subscriber_queue_size,
            transport=create_transport(self.service.feed_transport),
            replay_ring=self.service.feed_replay_ring,
        )
        self.http = HttpApi(self, self.service.host, self.service.http_port)
        self.deadletter = DeadLetterBuffer(self.service.deadletter_capacity)
        self.journal = self._build_journal()
        self.guard = self._guard_database()
        self.watchdog = self._build_watchdog()
        self.batcher = SlideBatcher(
            self.system,
            self.queue,
            slide_seconds=self.config.window.slide_seconds,
            on_report=self._on_report,
            on_position=lambda position: self.vessels.update([position]),
            record_ingest=self.service.record_ingest,
            journal=self.journal,
            deadletter=self.deadletter,
            watchdog=self.watchdog,
            watermark_sources=self.service.watermark_sources,
        )
        #: Journal records replayed from a previous incarnation at start.
        self.recovered_records = (
            len(self.journal.recovered) if self.journal is not None else 0
        )
        self.forced_abort = False
        self._batcher_task: asyncio.Task | None = None
        self._watchdog_task: asyncio.Task | None = None
        self._stopped = False

    # ------------------------------------------------------------------
    # resilience assembly
    # ------------------------------------------------------------------

    def _build_journal(self) -> IngestJournal | None:
        if self.service.wal_dir is None:
            return None
        return IngestJournal(
            self.service.wal_dir,
            fsync=self.service.wal_fsync,
            segment_max_bytes=self.service.wal_segment_bytes,
            retention_segments=self.service.wal_retention_segments,
        )

    def _guard_database(self) -> GuardedDatabase | None:
        """Put the MOD behind retry + breaker + spill, transparently.

        The pipeline looks ``system.database`` up at call time, so
        swapping the attribute for the guard covers every staging write
        and reconstruction pass without touching the pipeline itself.
        """
        if not hasattr(self.system, "database"):
            return None
        if self.service.wal_dir is not None:
            spill = SpillQueue(
                Path(self.service.wal_dir) / "spill",
                fsync=self.service.wal_fsync,
            )
        else:
            spill = SpillQueue()
        guard = GuardedDatabase(
            self.system.database,
            breaker=CircuitBreaker(
                name="mod",
                failure_threshold=self.service.mod_failure_threshold,
                recovery_seconds=self.service.mod_recovery_seconds,
            ),
            policy=BackoffPolicy(
                initial_seconds=self.service.mod_retry_initial_seconds,
                multiplier=2.0,
                max_seconds=1.0,
                max_attempts=self.service.mod_retry_attempts,
            ),
            spill=spill,
        )
        self.system.database = guard
        return guard

    def _build_watchdog(self) -> SlideWatchdog | None:
        if self.service.watchdog_timeout_seconds <= 0:
            return None
        return SlideWatchdog(
            self.service.watchdog_timeout_seconds, on_stall=self._on_stall
        )

    def _on_stall(self, query_time, elapsed: float) -> None:
        """A pipeline slide overran its deadline: kill the shard workers
        so the stall becomes a WorkerCrash the checkpoint machinery
        recovers from (single-process systems have no such lever — the
        stall is counted and surfaced on ``/healthz`` instead)."""
        obs.count("service.watchdog.stalls")
        runtime = getattr(self.system, "supervisor", None)
        if runtime is not None and hasattr(runtime, "terminate_workers"):
            runtime.terminate_workers()

    # ------------------------------------------------------------------
    # slide fan-out
    # ------------------------------------------------------------------

    def _on_report(self, report, kind: str) -> None:
        """Publish one completed slide to every query/streaming surface."""
        self.feed.publish(slide_feed_line(report, kind))
        self.alert_ring.append(report.query_time, report.alerts)
        obs.count("service.alerts_published", len(report.alerts))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Recover the journal, bind all three servers, start the batcher.

        Recovery runs *before* the ingest listener binds, so replayed
        journal records and live traffic never interleave: the restarted
        pipeline deterministically reproduces the pre-crash slides, then
        live ingest continues the pending partial slide.
        """
        if self.journal is not None and self.journal.recovered:
            with obs.span("service.recovery"):
                await self.batcher.replay(self.journal.recovered)
        await self.ingest.start()
        await self.feed.start()
        await self.http.start()
        self._batcher_task = asyncio.ensure_future(self.batcher.run())
        if self.watchdog is not None:
            self._watchdog_task = asyncio.ensure_future(self._watch())
        obs.set_gauge("service.up", 1)

    async def _watch(self) -> None:
        interval = max(0.05, self.service.watchdog_timeout_seconds / 4)
        while True:
            await asyncio.sleep(interval)
            self.watchdog.check()

    async def _drain_pipeline(self) -> None:
        """Join the batcher, then flush the final slide and finalize."""
        if self._batcher_task is not None:
            try:
                await self._batcher_task
            except asyncio.CancelledError:
                raise
            except Exception:
                # The batcher loop died (e.g. an injected SimulatedCrash
                # escaped in a chaos run); drain what state remains.
                obs.count("service.batcher.crashed")
        await self.batcher.drain()

    async def drain_and_stop(self) -> None:
        """Graceful shutdown: drain ingest, flush the final slide, close.

        Bounded by ``drain_timeout_seconds``: a pipeline slide wedged on
        the executor thread used to hang shutdown forever (the batcher
        join had no deadline); now the drain is force-aborted, counted,
        and the journal is preserved so the next incarnation replays
        whatever the abort abandoned.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
        # 1. Stop accepting new feeds; buffered sentences keep flowing.
        await self.ingest.stop()
        self.queue.close()
        # 2. The batcher returns once the queue is drained; then flush the
        #    last partial slide and the end-of-stream finalize — all under
        #    the drain deadline.
        try:
            await asyncio.wait_for(
                self._drain_pipeline(),
                timeout=self.service.drain_timeout_seconds,
            )
        except asyncio.TimeoutError:
            self.forced_abort = True
            if self._batcher_task is not None:
                self._batcher_task.cancel()
            self.batcher.abort()
        # 3. Disconnect subscribers after the final lines are queued.
        await self.feed.close()
        await self.http.stop()
        # 4. Release the pipeline: sharded workers and checkpoints first,
        #    then the MOD connection (staging flushed by finalize above;
        #    closing the guard also closes the spill queue).
        if hasattr(self.system, "close"):
            self.system.close()
        self.system.database.close()
        obs.set_gauge("service.up", 0)

    async def serve_until(self, stop_event: asyncio.Event) -> None:
        """Serve until ``stop_event`` fires, then drain gracefully."""
        await stop_event.wait()
        await self.drain_and_stop()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def degraded_reasons(self) -> list[str]:
        """Why this service is ``degraded`` (empty = fully healthy).

        The service still serves while degraded — these are the "up but
        impaired" conditions a two-state health check could not express:
        an open (or probing) MOD breaker, a non-empty spill backlog, or
        a drain that had to be force-aborted.
        """
        reasons = []
        if self.guard is not None:
            breaker = self.guard.breaker
            if breaker.state != "closed":
                reasons.append(f"mod breaker {breaker.state}")
            if len(self.guard.spill) > 0:
                reasons.append(f"spill backlog of {len(self.guard.spill)}")
        if self.forced_abort:
            reasons.append("drain force-aborted")
        return reasons

    def health(self) -> dict:
        """The ``/healthz`` payload (``status``: ``ok|degraded|down``)."""
        reasons = self.degraded_reasons()
        if self._stopped:
            status = "down"
        elif reasons:
            status = "degraded"
        else:
            status = "ok"
        payload = {
            "status": status,
            "degraded_reasons": reasons,
            "slides": self.batcher.slides_processed,
            "queue_depth": len(self.queue),
            "ingested": self.queue.put_count,
            "shed": self.queue.shed_count,
            "pipeline_errors": self.batcher.pipeline_errors,
            "vessels": len(self.vessels),
            "alerts_last_seq": self.alert_ring.last_seq,
            "feed_subscribers": self.feed.subscriber_count,
            "feed_evicted": self.feed.evicted_count,
            "feed_resumed": self.feed.resumed_count,
            "feed_next_seq": self.feed.next_seq,
            "shards": self.service.shards,
            "transports": {
                "ingest": self.service.ingest_transport,
                "feed": self.service.feed_transport,
            },
            "scanner": {
                "accepted": self.batcher.scanner.statistics.accepted,
                "rejected": self.batcher.scanner.statistics.rejected,
                "reassembled": self.batcher.scanner.statistics.reassembled,
                "fragmented_dropped": (
                    self.batcher.scanner.statistics.fragmented_dropped
                ),
            },
            "recovered_records": self.recovered_records,
            "forced_abort": self.forced_abort,
            "deadletter": {
                "total": self.deadletter.total,
                "held": len(self.deadletter),
            },
            "ports": self.ports(),
        }
        if self.service.watermark_sources > 0:
            payload["watermarks"] = {
                "sources": self.service.watermark_sources,
                "clocks": self.batcher.watermark_clocks,
            }
        if self.journal is not None:
            payload["wal"] = self.journal.snapshot()
        if self.guard is not None:
            payload["mod_guard"] = self.guard.snapshot()
        if self.watchdog is not None:
            payload["watchdog"] = self.watchdog.snapshot()
        if hasattr(self.system, "restart_count"):
            payload["runtime_restarts"] = self.system.restart_count()
        return payload

    def ports(self) -> dict:
        """Actual bound ports (resolves ephemeral ``0`` requests)."""
        return {
            "ingest": self.ingest.port,
            "feed": self.feed.port,
            "http": self.http.port,
        }


async def run_service(
    world,
    specs,
    config: SystemConfig | None = None,
    service: ServiceConfig | None = None,
    announce=print,
) -> ServiceSupervisor:
    """Run a service until SIGINT/SIGTERM; returns after graceful drain.

    This is what ``python -m repro --serve`` calls: it installs signal
    handlers, prints the bound ports, and blocks until a signal triggers
    the drain-and-stop sequence.
    """
    supervisor = ServiceSupervisor(world, specs, config, service)
    await supervisor.start()
    if supervisor.recovered_records:
        announce(
            f"recovered {supervisor.recovered_records} journaled sentences "
            f"({supervisor.batcher.slides_processed} slides republished)"
        )
    ports = supervisor.ports()
    announce(
        f"live service up: ingest={ports['ingest']} feed={ports['feed']} "
        f"http={ports['http']} (slide={supervisor.config.window.slide_seconds}s, "
        f"shards={supervisor.service.shards})"
    )
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except NotImplementedError:  # non-Unix event loops
            signal.signal(signum, lambda *_: stop_event.set())
    await supervisor.serve_until(stop_event)
    announce(
        f"service drained: {supervisor.batcher.slides_processed} slides, "
        f"{supervisor.queue.put_count} sentences ingested, "
        f"{supervisor.queue.shed_count} shed"
    )
    return supervisor
