"""Query-side state of the live service.

The HTTP API answers two questions the streaming pipeline itself never
materializes: "where is vessel X right now?" (:class:`VesselStateStore`,
the last-known velocity-vector snapshot derived from consecutive scanned
positions) and "what happened recently?" (:class:`AlertRing`, a bounded
ring of recognized complex events addressable by a monotone sequence
number, so pollers can resume with ``/alerts?since=<seq>``).
"""

from dataclasses import dataclass

from repro.ais.stream import PositionalTuple
from repro.geo.haversine import haversine_meters, initial_bearing_degrees
from repro.geo.units import mps_to_knots
from repro.maritime.recognizer import Alert
from repro.service.protocol import alert_to_dict


@dataclass
class VesselSnapshot:
    """Last-known kinematic state of one vessel."""

    mmsi: int
    lon: float
    lat: float
    timestamp: int
    speed_mps: float = 0.0
    heading_degrees: float = 0.0
    positions_seen: int = 0

    def to_dict(self) -> dict:
        return {
            "mmsi": self.mmsi,
            "lon": self.lon,
            "lat": self.lat,
            "timestamp": self.timestamp,
            "speed_mps": self.speed_mps,
            "speed_knots": mps_to_knots(self.speed_mps),
            "heading_degrees": self.heading_degrees,
            "positions_seen": self.positions_seen,
        }


class VesselStateStore:
    """Per-MMSI last-known position and velocity vector.

    Velocity is derived from the two most recent positions (great-circle
    distance over elapsed time, initial bearing as heading) — the same
    derivation the Mobility Tracker applies, kept separate here so the
    store works identically over the single-process and sharded systems.
    """

    def __init__(self) -> None:
        self._snapshots: dict[int, VesselSnapshot] = {}

    def update(self, positions: list[PositionalTuple]) -> None:
        """Fold one batch of scanned positions into the snapshots."""
        for position in positions:
            snapshot = self._snapshots.get(position.mmsi)
            if snapshot is None:
                self._snapshots[position.mmsi] = VesselSnapshot(
                    mmsi=position.mmsi,
                    lon=position.lon,
                    lat=position.lat,
                    timestamp=position.timestamp,
                    positions_seen=1,
                )
                continue
            dt = position.timestamp - snapshot.timestamp
            if dt > 0:
                meters = haversine_meters(
                    snapshot.lon, snapshot.lat, position.lon, position.lat
                )
                snapshot.speed_mps = meters / dt
                snapshot.heading_degrees = initial_bearing_degrees(
                    snapshot.lon, snapshot.lat, position.lon, position.lat
                )
            snapshot.lon = position.lon
            snapshot.lat = position.lat
            snapshot.timestamp = max(snapshot.timestamp, position.timestamp)
            snapshot.positions_seen += 1

    def get(self, mmsi: int) -> VesselSnapshot | None:
        """Snapshot of one vessel, or ``None`` if never seen."""
        return self._snapshots.get(mmsi)

    def mmsis(self) -> list[int]:
        """All vessels seen so far, sorted."""
        return sorted(self._snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)


class AlertRing:
    """Bounded ring of recent alerts with monotone sequence numbers.

    ``since(n)`` returns every retained alert with sequence > ``n`` —
    clients poll with the ``last_seq`` of their previous response.  The
    ring never blocks the pipeline: old alerts simply fall off.
    """

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive: {capacity}")
        self.capacity = capacity
        self._entries: list[dict] = []
        self._next_seq = 1

    def append(self, query_time: int, alerts: tuple[Alert, ...]) -> None:
        """Record one slide's alerts."""
        for alert in alerts:
            entry = {"seq": self._next_seq, "query_time": query_time}
            entry.update(alert_to_dict(alert))
            self._entries.append(entry)
            self._next_seq += 1
        if len(self._entries) > self.capacity:
            del self._entries[: len(self._entries) - self.capacity]

    def since(self, seq: int = 0) -> list[dict]:
        """Retained alerts with sequence number greater than ``seq``."""
        if not self._entries or seq >= self._entries[-1]["seq"]:
            return []
        # Entries are seq-ordered; find the cut by simple scan from the
        # back (polling gaps are short in practice).
        index = len(self._entries)
        while index > 0 and self._entries[index - 1]["seq"] > seq:
            index -= 1
        return list(self._entries[index:])

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest alert ever appended (0 if none)."""
        return self._next_seq - 1

    def __len__(self) -> int:
        return len(self._entries)
