"""The slide batcher: from ingest queue to pipeline slides.

This is the live twin of :class:`repro.ais.stream.StreamReplayer` and
follows its batching contract *exactly* — query times are consecutive
multiples of the window slide starting at the first boundary at or after
the earliest arrival, a slide's batch holds every arrival with
``arrival <= query_time``, and empty slides still run (the window slides
and expired tuples must still be evicted).  The soak-parity tests lean on
this: a TCP-ingested stream must produce *byte-identical* feed output to
an offline replay of the same sentences.

Pipeline slides execute on a worker thread (``run_in_executor``) so the
event loop keeps reading sockets while a slide is being processed —
that's what lets the bounded ingest queue shed (with counters) instead of
the whole service seizing up when producers outrun the pipeline.
"""

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.ais.scanner import DataScanner
from repro.pipeline.metrics import SlideReport


class SlideBatcher:
    """Consume the ingest queue, drive the pipeline, publish slide results."""

    def __init__(
        self,
        system,
        queue,
        slide_seconds: int,
        on_report=None,
        on_position=None,
        record_ingest: bool = False,
    ):
        if slide_seconds <= 0:
            raise ValueError(f"slide must be positive, got {slide_seconds}")
        self.system = system
        self.queue = queue
        self.slide_seconds = slide_seconds
        self.scanner = DataScanner()
        self._on_report = on_report or (lambda report, kind: None)
        self._on_position = on_position or (lambda position: None)
        self._record_ingest = record_ingest
        #: Exactly the (receive_time, sentence) pairs handed to the
        #: scanner, post-shedding — the offline-parity replay input.
        self.ingested: list[tuple[int, str]] = []
        self._batch: list = []
        self._query_time: int | None = None
        self.slides_processed = 0
        self.pipeline_errors = 0
        # One dedicated worker: pipeline calls stay strictly serialized on
        # a single thread (the MOD's sqlite connection is single-owner).
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="pipeline-slide"
        )

    async def run(self) -> None:
        """Main loop; returns once the queue is closed and fully drained."""
        slide = self.slide_seconds
        while True:
            item = await self.queue.get()
            if item is None:
                break
            receive_time, sentence, enqueued_at = item
            obs.observe(
                "service.ingest.latency_seconds",
                time.perf_counter() - enqueued_at,
            )
            if self._record_ingest:
                self.ingested.append((receive_time, sentence))
            position = self.scanner.scan(receive_time, sentence)
            if position is None:
                continue
            self._on_position(position)
            arrival = receive_time
            if self._query_time is None:
                # First boundary at or after the earliest arrival — the
                # StreamReplayer rule, special case included.
                boundary = ((arrival + slide - 1) // slide) * slide
                if boundary == arrival == 0:
                    boundary = slide
                self._query_time = boundary
            while arrival > self._query_time:
                await self._process_slide()
                self._query_time += slide
            self._batch.append(position)

    async def drain(self) -> None:
        """Flush the last partial slide and run end-of-stream finalize."""
        if self._batch:
            await self._process_slide()
        dropped = self.scanner.flush()
        if dropped:
            obs.count("service.ingest.fragments_dropped_at_drain", dropped)
        if self._query_time is not None:
            report = await self._call_pipeline(self.system.finalize)
            if report is not None:
                self._on_report(report, "finalize")
        self._executor.shutdown(wait=True)

    async def _process_slide(self) -> None:
        batch, self._batch = self._batch, []
        report = await self._call_pipeline(
            self.system.process_slide, batch, self._query_time
        )
        if report is None:
            return
        self.slides_processed += 1
        obs.set_gauge("service.ingest.queue_depth", len(self.queue))
        self._on_report(report, "slide")

    async def _call_pipeline(self, fn, *args) -> SlideReport | None:
        """Run one pipeline call off-loop; errors are counted, not fatal.

        The embedded sharded runtime already restarts crashed workers and
        replays from checkpoints underneath this call; anything that still
        escapes is a slide lost to an unrecoverable fault, which the
        service survives and counts (``service.pipeline.errors``).
        """
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._executor, lambda: fn(*args)
            )
        except Exception:
            self.pipeline_errors += 1
            obs.count("service.pipeline.errors")
            return None
