"""The slide batcher: from ingest queue to pipeline slides.

This is the live twin of :class:`repro.ais.stream.StreamReplayer` and
follows its batching contract *exactly* — query times are consecutive
multiples of the window slide starting at the first boundary at or after
the earliest arrival, a slide's batch holds every arrival with
``arrival <= query_time``, and empty slides still run (the window slides
and expired tuples must still be evicted).  The soak-parity tests lean on
this: a TCP-ingested stream must produce *byte-identical* feed output to
an offline replay of the same sentences.

Durability hooks (all optional; see docs/RESILIENCE.md):

* every dequeued sentence is appended to the write-ahead ``journal``
  *before* it is scanned, and the journal is fsynced at each slide
  boundary — so the journal holds exactly the post-shedding stream the
  pipeline has consumed, which is what :meth:`SlideBatcher.replay` feeds
  back after a crash to reproduce every slide byte-for-byte;
* sentences the scanner rejects are classified and quarantined in the
  ``deadletter`` buffer instead of vanishing into a counter;
* the ``watchdog`` gets a beat when a pipeline slide starts and
  finishes, so a wedged slide is detected from the event loop.

Pipeline slides execute on a worker thread (``run_in_executor``) so the
event loop keeps reading sockets while a slide is being processed —
that's what lets the bounded ingest queue shed (with counters) instead of
the whole service seizing up when producers outrun the pipeline.
"""

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.ais.scanner import DataScanner
from repro.pipeline.metrics import SlideReport
from repro.resilience.faults import InjectedFault, SimulatedCrash, fault_point
from repro.service.quarantine import REASONS


class SlideBatcher:
    """Consume the ingest queue, drive the pipeline, publish slide results."""

    def __init__(
        self,
        system,
        queue,
        slide_seconds: int,
        on_report=None,
        on_position=None,
        record_ingest: bool = False,
        journal=None,
        deadletter=None,
        watchdog=None,
    ):
        if slide_seconds <= 0:
            raise ValueError(f"slide must be positive, got {slide_seconds}")
        self.system = system
        self.queue = queue
        self.slide_seconds = slide_seconds
        self.scanner = DataScanner()
        self._on_report = on_report or (lambda report, kind: None)
        self._on_position = on_position or (lambda position: None)
        self._record_ingest = record_ingest
        self.journal = journal
        self.deadletter = deadletter
        self.watchdog = watchdog
        #: Exactly the (receive_time, sentence) pairs handed to the
        #: scanner, post-shedding — the offline-parity replay input.
        self.ingested: list[tuple[int, str]] = []
        self._batch: list = []
        self._query_time: int | None = None
        self.slides_processed = 0
        self.pipeline_errors = 0
        self.replayed_records = 0
        self._aborted = False
        # One dedicated worker: pipeline calls stay strictly serialized on
        # a single thread (the MOD's sqlite connection is single-owner).
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="pipeline-slide"
        )

    async def replay(self, records: list[tuple[int, str]]) -> int:
        """Re-feed journal records recovered from a previous incarnation.

        Runs before any live traffic.  The records are *not* re-journaled
        (they are already durable) and every slide they complete is
        republished — at-least-once delivery: feed lines are deterministic
        and keyed by their ``query_time``, so a consumer that saw some of
        them before the crash deduplicates trivially.  The final partial
        slide stays pending, and live ingest continues it seamlessly.
        """
        for receive_time, sentence in records:
            await self._ingest(receive_time, sentence, journal=False)
        self.replayed_records += len(records)
        if records:
            obs.count("resilience.recovery.replayed_records", len(records))
        return len(records)

    async def run(self) -> None:
        """Main loop; returns once the queue is closed and fully drained."""
        while True:
            item = await self.queue.get()
            if item is None:
                break
            receive_time, sentence, enqueued_at = item
            obs.observe(
                "service.ingest.latency_seconds",
                time.perf_counter() - enqueued_at,
            )
            await self._ingest(receive_time, sentence, journal=True)

    async def _ingest(
        self, receive_time: int, sentence: str, journal: bool
    ) -> None:
        """One sentence through journal → scanner → batch → slides."""
        if journal and self.journal is not None:
            # Journal *before* scanning: anything the pipeline has seen is
            # on disk first (under `always` even fsynced; under `batch`
            # the slide-boundary sync below bounds the exposure).
            self.journal.append(receive_time, sentence)
        if self._record_ingest:
            self.ingested.append((receive_time, sentence))
        position = self._scan(receive_time, sentence)
        if position is None:
            return
        self._on_position(position)
        arrival = receive_time
        slide = self.slide_seconds
        if self._query_time is None:
            # First boundary at or after the earliest arrival — the
            # StreamReplayer rule, special case included.
            boundary = ((arrival + slide - 1) // slide) * slide
            if boundary == arrival == 0:
                boundary = slide
            self._query_time = boundary
        while arrival > self._query_time:
            await self._process_slide()
            self._query_time += slide
        self._batch.append(position)

    def _scan(self, receive_time: int, sentence: str):
        """Scan one sentence, quarantining anything the scanner rejects."""
        if self.deadletter is None:
            return self.scanner.scan(receive_time, sentence)
        stats = self.scanner.statistics
        before = {reason: getattr(stats, reason) for reason in REASONS}
        position = self.scanner.scan(receive_time, sentence)
        if position is None:
            for reason in REASONS:
                if getattr(stats, reason) > before[reason]:
                    self.deadletter.quarantine(receive_time, sentence, reason)
                    break
        return position

    async def drain(self) -> None:
        """Flush the last partial slide and run end-of-stream finalize."""
        if self._batch:
            await self._process_slide()
        dropped = self.scanner.flush()
        if dropped:
            obs.count("service.ingest.fragments_dropped_at_drain", dropped)
        if self._query_time is not None:
            report = await self._call_pipeline(self.system.finalize)
            if report is not None:
                self._on_report(report, "finalize")
        self._executor.shutdown(wait=True)
        if self.journal is not None:
            # A clean drain means every journaled sentence made it through
            # finalize into the MOD: the journal's obligation is met.
            self.journal.truncate_all()

    def abort(self) -> None:
        """Forced shutdown: the drain deadline passed with a slide still
        wedged on the executor.  Nothing further is flushed; the journal
        keeps its segments so the next incarnation replays them."""
        self._aborted = True
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.journal is not None:
            self.journal.close()
        obs.count("service.drain.forced_aborts")

    async def _process_slide(self) -> None:
        if self.journal is not None:
            # Slide boundary = the batch-policy durability point: every
            # sentence this slide consumed is on disk before the pipeline
            # (or an injected crash) can act on it.
            self.journal.sync()
        try:
            spec = fault_point("service.slide")
        except InjectedFault:
            # An injected slide error behaves like an unrecoverable
            # pipeline fault: the slide is lost and counted, service lives.
            self.pipeline_errors += 1
            obs.count("service.pipeline.errors")
            self._batch = []
            return
        if spec is not None and spec.kind == "crash":
            # The in-process stand-in for kill -9: abandon everything.
            raise SimulatedCrash("service.slide", spec.at)
        batch, self._batch = self._batch, []
        if self.watchdog is not None:
            self.watchdog.slide_started(self._query_time)
        report = await self._call_pipeline(
            self.system.process_slide, batch, self._query_time
        )
        if self.watchdog is not None:
            self.watchdog.slide_finished()
        if report is None:
            return
        self.slides_processed += 1
        obs.set_gauge("service.ingest.queue_depth", len(self.queue))
        self._on_report(report, "slide")

    async def _call_pipeline(self, fn, *args) -> SlideReport | None:
        """Run one pipeline call off-loop; errors are counted, not fatal.

        The embedded sharded runtime already restarts crashed workers and
        replays from checkpoints underneath this call; anything that still
        escapes is a slide lost to an unrecoverable fault, which the
        service survives and counts (``service.pipeline.errors``).
        """
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._executor, lambda: fn(*args)
            )
        except Exception:
            self.pipeline_errors += 1
            obs.count("service.pipeline.errors")
            return None
