"""The slide batcher: from ingest queue to pipeline slides.

This is the live twin of :class:`repro.ais.stream.StreamReplayer` and
follows its batching contract *exactly* — query times are consecutive
multiples of the window slide starting at the first boundary at or after
the earliest arrival, a slide's batch holds every arrival with
``arrival <= query_time``, and empty slides still run (the window slides
and expired tuples must still be evicted).  The soak-parity tests lean on
this: a TCP-ingested stream must produce *byte-identical* feed output to
an offline replay of the same sentences.

Durability hooks (all optional; see docs/RESILIENCE.md):

* every dequeued sentence is appended to the write-ahead ``journal``
  *before* it is scanned, and the journal is fsynced at each slide
  boundary — so the journal holds exactly the post-shedding stream the
  pipeline has consumed, which is what :meth:`SlideBatcher.replay` feeds
  back after a crash to reproduce every slide byte-for-byte;
* sentences the scanner rejects are classified and quarantined in the
  ``deadletter`` buffer instead of vanishing into a counter;
* the ``watchdog`` gets a beat when a pipeline slide starts and
  finishes, so a wedged slide is detected from the event loop.

Pipeline slides execute on a worker thread (``run_in_executor``) so the
event loop keeps reading sockets while a slide is being processed —
that's what lets the bounded ingest queue shed (with counters) instead of
the whole service seizing up when producers outrun the pipeline.

**Watermark mode** (``watermark_sources > 0``, docs/GATEWAY.md): when the
service is one shard of a gateway cluster, arrivals from different
gateway nodes interleave nondeterministically, so the arrival-driven
cadence above would smear sentences across slides differently on every
run.  Instead each gateway emits in-band ``!REPRO,WM,<source>`` watermark
lines; a slide at query time ``qt`` runs only once *every* source's
watermark has passed ``qt``, its batch is the pending positions with
``timestamp <= qt`` sorted by ``(timestamp, mmsi)``, and the slide grid
itself (first boundary at or after the earliest position) is unchanged —
which makes the cluster's slide cadence byte-identical to a single
node's, independent of arrival interleaving.
"""

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.ais.scanner import DataScanner
from repro.pipeline.metrics import SlideReport
from repro.resilience.faults import InjectedFault, SimulatedCrash, fault_point
from repro.service.protocol import parse_heartbeat, parse_watermark
from repro.service.quarantine import REASONS


class SlideBatcher:
    """Consume the ingest queue, drive the pipeline, publish slide results."""

    def __init__(
        self,
        system,
        queue,
        slide_seconds: int,
        on_report=None,
        on_position=None,
        record_ingest: bool = False,
        journal=None,
        deadletter=None,
        watchdog=None,
        watermark_sources: int = 0,
    ):
        if slide_seconds <= 0:
            raise ValueError(f"slide must be positive, got {slide_seconds}")
        self.system = system
        self.queue = queue
        self.slide_seconds = slide_seconds
        self.scanner = DataScanner()
        self._on_report = on_report or (lambda report, kind: None)
        self._on_position = on_position or (lambda position: None)
        self._record_ingest = record_ingest
        self.journal = journal
        self.deadletter = deadletter
        self.watchdog = watchdog
        self.watermark_sources = watermark_sources
        #: Latest watermark timestamp per source (watermark mode only).
        self._wm_clocks: dict[str, int] = {}
        self._wm_final: set[str] = set()
        #: Max over every position and watermark timestamp seen.
        self._max_ts: int | None = None
        #: Exactly the (receive_time, sentence) pairs handed to the
        #: scanner, post-shedding — the offline-parity replay input.
        self.ingested: list[tuple[int, str]] = []
        self._batch: list = []
        self._query_time: int | None = None
        #: True once the first slide ran — the grid anchor is then final.
        self._grid_locked = False
        self.slides_processed = 0
        self.pipeline_errors = 0
        self.replayed_records = 0
        self._aborted = False
        # One dedicated worker: pipeline calls stay strictly serialized on
        # a single thread (the MOD's sqlite connection is single-owner).
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="pipeline-slide"
        )

    async def replay(self, records: list[tuple[int, str]]) -> int:
        """Re-feed journal records recovered from a previous incarnation.

        Runs before any live traffic.  The records are *not* re-journaled
        (they are already durable) and every slide they complete is
        republished — at-least-once delivery: feed lines are deterministic
        and keyed by their ``query_time``, so a consumer that saw some of
        them before the crash deduplicates trivially.  The final partial
        slide stays pending, and live ingest continues it seamlessly.
        """
        for receive_time, sentence in records:
            await self._ingest(receive_time, sentence, journal=False)
        self.replayed_records += len(records)
        if records:
            obs.count("resilience.recovery.replayed_records", len(records))
        return len(records)

    async def run(self) -> None:
        """Main loop; returns once the queue is closed and fully drained."""
        while True:
            item = await self.queue.get()
            if item is None:
                break
            receive_time, sentence, enqueued_at = item
            obs.observe(
                "service.ingest.latency_seconds",
                time.perf_counter() - enqueued_at,
            )
            await self._ingest(receive_time, sentence, journal=True)

    async def _ingest(
        self, receive_time: int, sentence: str, journal: bool
    ) -> None:
        """One sentence through journal → scanner → batch → slides."""
        if parse_heartbeat(sentence) is not None:
            # A liveness probe from the gateway tier: counted, then
            # discarded *before* the journal and the watermark clocks —
            # heartbeats carry no data and must never perturb the slide
            # cadence or a replay (docs/RESILIENCE.md).
            obs.count("service.ingest.heartbeats")
            return
        if journal and self.journal is not None:
            # Journal *before* scanning: anything the pipeline has seen is
            # on disk first (under `always` even fsynced; under `batch`
            # the slide-boundary sync below bounds the exposure).
            self.journal.append(receive_time, sentence)
        watermark = parse_watermark(sentence)
        if watermark is not None:
            # Journaled (a replay must rebuild the source clocks) but
            # never scanned, recorded, or quarantined: watermarks are
            # control flow, not data.
            await self._handle_watermark(receive_time, *watermark)
            return
        if self._record_ingest:
            self.ingested.append((receive_time, sentence))
        position = self._scan(receive_time, sentence)
        if position is None:
            return
        self._on_position(position)
        arrival = receive_time
        slide = self.slide_seconds
        if self._max_ts is None or arrival > self._max_ts:
            self._max_ts = arrival
        boundary = ((arrival + slide - 1) // slide) * slide
        if boundary == arrival == 0:
            boundary = slide
        if self._query_time is None:
            # First boundary at or after the earliest arrival — the
            # StreamReplayer rule, special case included.
            self._query_time = boundary
            if self.watermark_sources > 0:
                # Watermarks may already be past this fresh boundary.
                await self._advance_watermarked()
        elif (
            self.watermark_sources > 0
            and not self._grid_locked
            and boundary < self._query_time
        ):
            # A cross-link straggler: another gateway's link delivered a
            # later position first, so the grid anchored too high.  Until
            # the first slide runs this is safe to repair — the straggler
            # source's clock is still at or below its timestamp, so the
            # watermark barrier cannot have released any slide at or past
            # this boundary.  The single node anchors at the earliest
            # timestamp; now this shard does too.
            self._query_time = boundary
        if self.watermark_sources > 0:
            # Watermark mode: arrivals never drive the cadence — slides
            # run from :meth:`_handle_watermark` once every source has
            # passed the boundary.
            self._batch.append(position)
            return
        while arrival > self._query_time:
            await self._process_slide()
            self._query_time += slide
        self._batch.append(position)

    async def _handle_watermark(
        self, receive_time: int, source: str, final: bool
    ) -> None:
        """Advance one source's clock and run every slide now unblocked."""
        if self.watermark_sources <= 0:
            # A legacy (non-clustered) service fed gateway traffic:
            # counted so the misconfiguration is visible, then ignored —
            # the arrival-driven cadence needs no watermarks.
            obs.count("service.ingest.watermarks_ignored")
            return
        obs.count("service.ingest.watermarks")
        known = self._wm_clocks.get(source)
        if known is None or receive_time > known:
            self._wm_clocks[source] = receive_time
        if final:
            self._wm_final.add(source)
        if self._max_ts is None or receive_time > self._max_ts:
            self._max_ts = receive_time
        await self._advance_watermarked()

    async def _advance_watermarked(self) -> None:
        """Run slides while every source's watermark has passed the
        boundary and at least one later timestamp proves the slide grid
        extends past it (the single-node cadence never runs a trailing
        slide with nothing after it — drain handles the last one)."""
        while True:
            qt = self._query_time
            if qt is None or len(self._wm_clocks) < self.watermark_sources:
                return
            live = [
                ts
                for src, ts in self._wm_clocks.items()
                if src not in self._wm_final
            ]
            # A source that sent its final watermark can never hold a
            # slide back; with every source final the low bound is +inf.
            if live and min(live) <= qt:
                return
            if self._max_ts is None or self._max_ts <= qt:
                return
            await self._process_slide()
            self._query_time = qt + self.slide_seconds

    @property
    def watermark_clocks(self) -> dict[str, int]:
        """Last watermark per source (health/diagnostics snapshot)."""
        return dict(self._wm_clocks)

    def _scan(self, receive_time: int, sentence: str):
        """Scan one sentence, quarantining anything the scanner rejects."""
        if self.deadletter is None:
            return self.scanner.scan(receive_time, sentence)
        stats = self.scanner.statistics
        before = {reason: getattr(stats, reason) for reason in REASONS}
        position = self.scanner.scan(receive_time, sentence)
        if position is None:
            for reason in REASONS:
                if getattr(stats, reason) > before[reason]:
                    self.deadletter.quarantine(receive_time, sentence, reason)
                    break
        return position

    async def drain(self) -> None:
        """Flush the last partial slide and run end-of-stream finalize."""
        if self.watermark_sources > 0:
            if self._query_time is not None:
                # The trailing slide runs even when this shard's batch is
                # empty: every shard must finalize at the same query time
                # for the fan-in merge to line up, and the single-node
                # trailing batch is never empty (its max-ts position is
                # in it).  After final watermarks the batch drains in one
                # slide; a forced stop mid-stream keeps sliding until
                # nothing is pending rather than stranding positions.
                await self._process_slide()
                while self._batch:
                    self._query_time += self.slide_seconds
                    await self._process_slide()
        elif self._batch:
            await self._process_slide()
        dropped = self.scanner.flush()
        if dropped:
            obs.count("service.ingest.fragments_dropped_at_drain", dropped)
        if self._query_time is not None:
            report = await self._call_pipeline(self.system.finalize)
            if report is not None:
                self._on_report(report, "finalize")
        self._executor.shutdown(wait=True)
        if self.journal is not None:
            # A clean drain means every journaled sentence made it through
            # finalize into the MOD: the journal's obligation is met.
            self.journal.truncate_all()

    def abort(self) -> None:
        """Forced shutdown: the drain deadline passed with a slide still
        wedged on the executor.  Nothing further is flushed; the journal
        keeps its segments so the next incarnation replays them."""
        self._aborted = True
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.journal is not None:
            self.journal.close()
        obs.count("service.drain.forced_aborts")

    async def _process_slide(self) -> None:
        self._grid_locked = True
        if self.journal is not None:
            # Slide boundary = the batch-policy durability point: every
            # sentence this slide consumed is on disk before the pipeline
            # (or an injected crash) can act on it.
            self.journal.sync()
        try:
            spec = fault_point("service.slide")
        except InjectedFault:
            # An injected slide error behaves like an unrecoverable
            # pipeline fault: the slide is lost and counted, service lives.
            self.pipeline_errors += 1
            obs.count("service.pipeline.errors")
            self._batch = []
            return
        if spec is not None and spec.kind == "crash":
            # The in-process stand-in for kill -9: abandon everything.
            raise SimulatedCrash("service.slide", spec.at)
        batch, self._batch = self._batch, []
        if self.watermark_sources > 0:
            # Only positions due at this boundary; later ones (already
            # delivered because another source lagged) wait for their
            # slide.  The (timestamp, mmsi) sort erases the arrival
            # interleaving across gateway links — per-vessel order is
            # already timestamped, so this is a pure determinism step.
            qt = self._query_time
            self._batch = [p for p in batch if p.timestamp > qt]
            batch = sorted(
                (p for p in batch if p.timestamp <= qt),
                key=lambda p: (p.timestamp, p.mmsi),
            )
        if self.watchdog is not None:
            self.watchdog.slide_started(self._query_time)
        report = await self._call_pipeline(
            self.system.process_slide, batch, self._query_time
        )
        if self.watchdog is not None:
            self.watchdog.slide_finished()
        if report is None:
            return
        self.slides_processed += 1
        obs.set_gauge("service.ingest.queue_depth", len(self.queue))
        self._on_report(report, "slide")

    async def _call_pipeline(self, fn, *args) -> SlideReport | None:
        """Run one pipeline call off-loop; errors are counted, not fatal.

        The embedded sharded runtime already restarts crashed workers and
        replays from checkpoints underneath this call; anything that still
        escapes is a slide lost to an unrecoverable fault, which the
        service survives and counts (``service.pipeline.errors``).
        """
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._executor, lambda: fn(*args)
            )
        except Exception:
            self.pipeline_errors += 1
            obs.count("service.pipeline.errors")
            return None
