"""Wire formats shared by the live service and its offline twin.

Three small, stable layers:

* **Ingest lines** — raw ``!AIVDM`` sentences, optionally prefixed with a
  receiver timestamp (``<epoch-seconds><TAB-or-space>!AIVDM...``), the
  convention of timestamped NMEA feed archives.  Without a prefix the
  server stamps the line with its own clock.
* **Feed lines** — newline-delimited JSON.  One ``slide`` object per
  completed window slide carrying the alerts and fresh critical points,
  and one final ``finalize`` object when the service drains.
* **JSON shapes** — :func:`alert_to_dict` / :func:`point_to_dict` define
  the only serialization of alerts and critical points; the soak-parity
  test compares the online and offline paths *byte for byte*, which only
  means something because both sides call these functions.

Everything here is pure and synchronous so the offline replay
(:mod:`repro.service.replay`) produces identical bytes without sockets.
"""

import json

from repro.maritime.recognizer import Alert
from repro.pipeline.metrics import SlideReport
from repro.tracking.types import CriticalPoint


def parse_ingest_line(line: str, default_time: int) -> tuple[int, str] | None:
    """Split one ingest line into ``(receive_time, sentence)``.

    Returns ``None`` for blank lines and ``#`` comments.  A leading
    integer field (separated by a tab or space) is the receiver
    timestamp; otherwise ``default_time`` (the server's clock) is used.
    """
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    if not line.startswith("!"):
        head, _, rest = line.replace("\t", " ").partition(" ")
        if rest:
            try:
                return int(head), rest.strip()
            except ValueError:
                pass
    return default_time, line


def format_ingest_line(receive_time: int, sentence: str) -> str:
    """The timestamped ingest form: ``<epoch-seconds>\\t<sentence>``."""
    return f"{receive_time}\t{sentence}"


#: Sentence prefix of an in-band watermark (``!REPRO,WM,<source>[,final]``).
#: Deliberately ``!``-prefixed so :func:`parse_ingest_line` passes it
#: through untouched, and deliberately not ``!AIVDM`` so the AIS scanner
#: would reject it — the batcher intercepts it first (docs/GATEWAY.md).
WATERMARK_PREFIX = "!REPRO,WM,"


def format_watermark(receive_time: int, source: str, final: bool = False) -> str:
    """One in-band watermark line: the source's clock has reached
    ``receive_time`` and no earlier sentence will follow from it."""
    suffix = ",final" if final else ""
    return format_ingest_line(receive_time, f"{WATERMARK_PREFIX}{source}{suffix}")


def parse_watermark(sentence: str) -> tuple[str, bool] | None:
    """``(source, final)`` if ``sentence`` is a watermark, else ``None``."""
    if not sentence.startswith(WATERMARK_PREFIX):
        return None
    body = sentence[len(WATERMARK_PREFIX):]
    source, sep, flag = body.partition(",")
    if not source:
        return None
    if sep and flag != "final":
        return None
    return source, bool(sep)


#: Sentence prefix of an in-band heartbeat (``!REPRO,HB,<source>,<seq>``).
#: Rides the same control-line channel as watermarks: ``!``-prefixed so
#: :func:`parse_ingest_line` passes it through, intercepted by the
#: batcher before the scanner.  Heartbeats are pure liveness probes — a
#: runtime counts and discards them, and they never advance watermark
#: clocks, so the slide cadence (and the byte-identity contract) is
#: untouched by however often the supervisor probes.
HEARTBEAT_PREFIX = "!REPRO,HB,"


def format_heartbeat(source: str, seq: int) -> str:
    """One in-band heartbeat line from ``source`` (timestamp 0: a probe
    carries no clock — it must never perturb the watermark grid)."""
    return format_ingest_line(0, f"{HEARTBEAT_PREFIX}{source},{seq}")


def parse_heartbeat(sentence: str) -> tuple[str, int] | None:
    """``(source, seq)`` if ``sentence`` is a heartbeat, else ``None``."""
    if not sentence.startswith(HEARTBEAT_PREFIX):
        return None
    source, sep, seq = sentence[len(HEARTBEAT_PREFIX):].partition(",")
    if not source or not sep:
        return None
    try:
        return source, int(seq)
    except ValueError:
        return None


#: First line a feed subscriber may send to opt into the resumable feed:
#: ``RESUME <last-seq>`` asks the hub to replay every line after
#: ``last-seq`` still held in its replay ring and to stamp every
#: subsequent line with its sequence number (``<seq>\\t<payload>``).
#: ``RESUME 0`` means "nothing seen yet" — replay the whole ring.
#: Subscribers that send nothing get the classic unstamped feed, byte
#: for byte (docs/SERVICE.md).
RESUME_PREFIX = "RESUME "


def format_resume(last_seq: int) -> str:
    """The resume handshake line: ``RESUME <last-seq>``."""
    if last_seq < 0:
        raise ValueError(f"last_seq must be >= 0: {last_seq}")
    return f"{RESUME_PREFIX}{last_seq}"


def parse_resume(line: str) -> int | None:
    """The ``last-seq`` of a ``RESUME`` handshake line, else ``None``."""
    if not line.startswith(RESUME_PREFIX):
        return None
    try:
        seq = int(line[len(RESUME_PREFIX):])
    except ValueError:
        return None
    return seq if seq >= 0 else None


def format_stamped_line(seq: int, payload: str) -> str:
    """A feed line stamped for resumable subscribers: ``<seq>\\t<payload>``."""
    return f"{seq}\t{payload}"


def parse_stamped_line(line: str) -> tuple[int, str] | None:
    """``(seq, payload)`` of a stamped feed line, else ``None``."""
    head, sep, payload = line.partition("\t")
    if not sep:
        return None
    try:
        seq = int(head)
    except ValueError:
        return None
    return (seq, payload) if seq > 0 else None


def alert_to_dict(alert: Alert) -> dict:
    """JSON shape of one recognized complex event."""
    return {
        "kind": alert.kind,
        "area": alert.area,
        "since": alert.since,
        "until": alert.until,
        "mmsi": alert.mmsi,
        "mmsi2": alert.mmsi2,
    }


def point_to_dict(point: CriticalPoint) -> dict:
    """JSON shape of one critical point (annotations sorted for stability)."""
    return {
        "mmsi": point.mmsi,
        "lon": point.lon,
        "lat": point.lat,
        "timestamp": point.timestamp,
        "annotations": sorted(a.value for a in point.annotations),
        "speed_knots": point.speed_knots,
        "heading_degrees": point.heading_degrees,
        "duration_seconds": point.duration_seconds,
    }


def _dumps(payload: dict) -> str:
    # Compact separators and sorted keys: the byte-identity contract.
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def point_sort_key(point: dict) -> tuple:
    """Canonical order of critical points within one feed line.

    A total order over the serialized dicts: vessels are disjoint across
    gateway-cluster shards, so sorting each shard's points and the
    single-node pipeline's points with the same key makes the fan-in
    merge byte-identical to the single node (docs/GATEWAY.md).  The
    serialized-dict tiebreaker keeps the key total even for two points of
    one vessel at the same instant.
    """
    return (point["mmsi"], point["timestamp"], _dumps(point))


def slide_feed_line(report: SlideReport, kind: str = "slide") -> str:
    """One feed line for a completed slide (or the ``finalize`` flush)."""
    return _dumps({
        "type": kind,
        "query_time": report.query_time,
        "raw_positions": report.raw_positions,
        "movement_events": report.movement_events,
        "recognized": report.recognized_complex_events,
        "alerts": [alert_to_dict(alert) for alert in report.alerts],
        "critical_points": sorted(
            (point_to_dict(point) for point in report.fresh_points),
            key=point_sort_key,
        ),
    })


def feed_lines_for(report: SlideReport | None, kind: str = "slide") -> list[str]:
    """Feed lines one report contributes (none for a ``None`` finalize)."""
    if report is None:
        return []
    return [slide_feed_line(report, kind)]
