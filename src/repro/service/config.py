"""Configuration of the live service layer."""

from dataclasses import dataclass


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of the network-facing service.

    Ports set to ``0`` bind ephemerally (the supervisor reports the actual
    port after :meth:`~repro.service.supervisor.ServiceSupervisor.start`),
    which is what the tests and the benchmark harness use.
    """

    host: str = "127.0.0.1"
    #: Raw ``!AIVDM`` line listener (10110 is the conventional
    #: NMEA-over-TCP port).
    ingest_port: int = 10110
    #: Newline-delimited-JSON subscription feed.
    feed_port: int = 10111
    #: HTTP query/metrics API.
    http_port: int = 10112
    #: Sentences buffered between the socket readers and the pipeline;
    #: beyond this the *oldest* buffered sentence is shed (and counted).
    ingest_queue_size: int = 8192
    #: Slide payload lines buffered per feed subscriber; a subscriber
    #: that falls this far behind is evicted rather than stalling the
    #: pipeline.
    subscriber_queue_size: int = 256
    #: Recent complex events kept for ``/alerts?since=``.
    alert_ring_size: int = 1024
    #: Worker shards; >1 embeds the process-parallel runtime
    #: (:class:`repro.runtime.ParallelSurveillanceSystem`).
    shards: int = 1
    #: Shard checkpoint directory (``None`` = private temporary dir).
    checkpoint_dir: str | None = None
    #: Keep a log of every ``(receive_time, sentence)`` actually handed
    #: to the scanner — lets tests replay exactly the post-shedding
    #: stream offline.  Off in production: it grows without bound.
    record_ingest: bool = False

    def __post_init__(self) -> None:
        if self.ingest_queue_size <= 0:
            raise ValueError(
                f"ingest queue must hold at least one sentence: "
                f"{self.ingest_queue_size}"
            )
        if self.subscriber_queue_size <= 0:
            raise ValueError(
                f"subscriber queue must hold at least one line: "
                f"{self.subscriber_queue_size}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1: {self.shards}")
