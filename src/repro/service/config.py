"""Configuration of the live service layer."""

from dataclasses import dataclass

from repro.resilience.wal import FSYNC_POLICIES
from repro.transport.registry import DEFAULT_TRANSPORT, available_transports


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of the network-facing service.

    Ports set to ``0`` bind ephemerally (the supervisor reports the actual
    port after :meth:`~repro.service.supervisor.ServiceSupervisor.start`),
    which is what the tests and the benchmark harness use.
    """

    host: str = "127.0.0.1"
    #: Raw ``!AIVDM`` line listener (10110 is the conventional
    #: NMEA-over-TCP port).
    ingest_port: int = 10110
    #: Newline-delimited-JSON subscription feed.
    feed_port: int = 10111
    #: HTTP query/metrics API.
    http_port: int = 10112
    #: Wire protocol of the ingest listener (``tcp`` | ``websocket`` |
    #: ``http``; see :mod:`repro.transport`).  The default is
    #: byte-compatible with the pre-transport newline-over-TCP wire.
    ingest_transport: str = DEFAULT_TRANSPORT
    #: Wire protocol of the subscription feed.
    feed_transport: str = DEFAULT_TRANSPORT
    #: Upstream watermark sources (gateway nodes).  ``0`` (the default)
    #: keeps the arrival-driven slide cadence of a single-feed service;
    #: ``N > 0`` switches the batcher to watermark-aligned slides: it
    #: advances a slide only once *every* source's watermark has passed
    #: the boundary, which is what keeps a sharded gateway deployment's
    #: slide grid byte-identical to a single node's (docs/GATEWAY.md).
    watermark_sources: int = 0
    #: Sentences buffered between the socket readers and the pipeline;
    #: beyond this the *oldest* buffered sentence is shed (and counted).
    ingest_queue_size: int = 8192
    #: Slide payload lines buffered per feed subscriber; a subscriber
    #: that falls this far behind is evicted rather than stalling the
    #: pipeline.
    subscriber_queue_size: int = 256
    #: Published feed lines kept (with sequence numbers) for ``RESUME``
    #: replays: how far back an evicted or disconnected subscriber can
    #: reconnect gapless (docs/SERVICE.md).
    feed_replay_ring: int = 1024
    #: Recent complex events kept for ``/alerts?since=``.
    alert_ring_size: int = 1024
    #: Worker shards; >1 embeds the process-parallel runtime
    #: (:class:`repro.runtime.ParallelSurveillanceSystem`).
    shards: int = 1
    #: Shard checkpoint directory (``None`` = private temporary dir).
    checkpoint_dir: str | None = None
    #: Keep a log of every ``(receive_time, sentence)`` actually handed
    #: to the scanner — lets tests replay exactly the post-shedding
    #: stream offline.  Off in production: it grows without bound.
    record_ingest: bool = False
    #: Write-ahead ingest journal directory (``None`` = no durability:
    #: a crash loses everything in flight, exactly the paper's
    #: main-memory behaviour).  With a directory, every post-shedding
    #: sentence is journaled before processing and a restarted service
    #: replays the journal to byte-identical output (docs/RESILIENCE.md).
    wal_dir: str | None = None
    #: WAL fsync policy: ``always`` | ``batch`` (fsync at each slide
    #: boundary) | ``never``.
    wal_fsync: str = "batch"
    #: WAL segment rotation threshold, bytes.
    wal_segment_bytes: int = 4 * 1024 * 1024
    #: Closed WAL segments kept on disk (0 = unlimited).  Bounds disk
    #: use at the cost of how far back a restart can replay.
    wal_retention_segments: int = 0
    #: Graceful-drain deadline; past it the supervisor force-aborts the
    #: in-flight pipeline slide instead of hanging on shutdown.
    drain_timeout_seconds: float = 30.0
    #: Malformed sentences kept for the ``/deadletter`` endpoint.
    deadletter_capacity: int = 256
    #: A pipeline slide running longer than this is declared stalled and
    #: the watchdog intervenes (0 = watchdog disabled).
    watchdog_timeout_seconds: float = 0.0
    #: MOD circuit breaker: consecutive write failures before opening.
    mod_failure_threshold: int = 3
    #: MOD circuit breaker: seconds open before admitting a probe.
    mod_recovery_seconds: float = 5.0
    #: MOD write retry budget (attempts, including the first).
    mod_retry_attempts: int = 3
    #: First MOD retry delay; doubles per attempt, capped at 1s.
    mod_retry_initial_seconds: float = 0.02

    def __post_init__(self) -> None:
        if self.ingest_queue_size <= 0:
            raise ValueError(
                f"ingest queue must hold at least one sentence: "
                f"{self.ingest_queue_size}"
            )
        if self.subscriber_queue_size <= 0:
            raise ValueError(
                f"subscriber queue must hold at least one line: "
                f"{self.subscriber_queue_size}"
            )
        if self.feed_replay_ring <= 0:
            raise ValueError(
                f"feed_replay_ring must hold at least one line: "
                f"{self.feed_replay_ring}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1: {self.shards}")
        for role, name in (
            ("ingest_transport", self.ingest_transport),
            ("feed_transport", self.feed_transport),
        ):
            if name not in available_transports():
                raise ValueError(
                    f"{role} must be one of {available_transports()}: {name!r}"
                )
        if self.watermark_sources < 0:
            raise ValueError(
                f"watermark_sources must be >= 0: {self.watermark_sources}"
            )
        if self.wal_fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"wal_fsync must be one of {FSYNC_POLICIES}: "
                f"{self.wal_fsync!r}"
            )
        if self.wal_segment_bytes <= 0:
            raise ValueError(
                f"wal_segment_bytes must be positive: {self.wal_segment_bytes}"
            )
        if self.drain_timeout_seconds <= 0:
            raise ValueError(
                f"drain_timeout_seconds must be positive: "
                f"{self.drain_timeout_seconds}"
            )
        if self.deadletter_capacity <= 0:
            raise ValueError(
                f"deadletter_capacity must be positive: "
                f"{self.deadletter_capacity}"
            )
        if self.watchdog_timeout_seconds < 0:
            raise ValueError(
                f"watchdog_timeout_seconds must be >= 0: "
                f"{self.watchdog_timeout_seconds}"
            )
