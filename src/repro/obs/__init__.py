"""Observability: metrics registry, tracing spans, pipeline reports.

Every perf claim in this repo should be backed by a number this package
produced.  It has three parts:

* :mod:`repro.obs.registry` — named counters, gauges and p50/p95/p99
  histograms owned by a :class:`MetricsRegistry`;
* :mod:`repro.obs.spans` — hierarchical ``with span("name")`` timing
  regions recorded into the registry;
* :mod:`repro.obs.report` — the machine-readable pipeline report behind
  ``--metrics-json`` and ``BENCH_pipeline.json``.

A process-wide default registry starts **disabled** so the instrumented
hot paths (tracker, compressor, RTEC engine, MOD) cost one branch per
batch when nobody is measuring.  Enable it globally::

    from repro import obs
    obs.enable()
    ...  # run the pipeline
    print(obs.get_registry().snapshot())

or scope a fresh registry to one run (what the bench harness does)::

    with obs.activate(obs.MetricsRegistry()) as registry:
        ...  # run
        report = build_pipeline_report(system, registry)

Module-level helpers (``span``, ``count``, ``observe``, ``set_gauge``)
always act on the *current* global registry.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.spans import NULL_SPAN, Span, _NullSpan

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "activate",
    "count",
    "disable",
    "enable",
    "get_registry",
    "is_enabled",
    "observe",
    "render_prometheus",
    "set_gauge",
    "set_registry",
    "span",
    "timed_span",
]

#: The process-wide default registry; disabled until someone opts in.
_REGISTRY = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The current global registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextmanager
def activate(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` (enabled) as the global one."""
    registry.enabled = True
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def enable() -> MetricsRegistry:
    """Turn on collection in the global registry."""
    _REGISTRY.enabled = True
    return _REGISTRY


def disable() -> MetricsRegistry:
    """Turn off collection in the global registry."""
    _REGISTRY.enabled = False
    return _REGISTRY


def is_enabled() -> bool:
    """Whether the global registry is collecting."""
    return _REGISTRY.enabled


def span(name: str) -> Span | _NullSpan:
    """Open a timing span on the global registry (no-op when disabled)."""
    return _REGISTRY.span(name)


def timed_span(name: str) -> Span | _NullSpan:
    """A span that *always* measures wall-clock, recording only if enabled.

    The pipeline's phase timings feed
    :class:`~repro.pipeline.metrics.PhaseTimings` unconditionally, so its
    spans must tick even with metrics off.
    """
    return _REGISTRY.span(name, always=True)


def count(name: str, amount: float = 1.0) -> None:
    """Increment a counter on the global registry (no-op when disabled)."""
    _REGISTRY.inc(name, amount)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the global registry (no-op when disabled)."""
    _REGISTRY.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the global registry (no-op when disabled)."""
    _REGISTRY.set_gauge(name, value)
