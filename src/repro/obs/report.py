"""Machine-readable pipeline reports built from a metrics registry.

The paper reports per-slide processing cost (Figures 6, 7, 10, 11),
throughput under scaled arrival rates (Figure 7) and compression ratio
(Figure 9).  :func:`build_pipeline_report` assembles exactly those numbers
from a :class:`~repro.obs.registry.MetricsRegistry` that observed a
:class:`~repro.pipeline.system.SurveillanceSystem` run, in the JSON layout
that ``--metrics-json`` and ``BENCH_pipeline.json`` share::

    {
      "schema": "repro.obs/pipeline-v1",
      "slides": 24,
      "phases": {"tracking": {"p50_ms": ..., "p95_ms": ..., ...}, ...},
      "tracking": {"backend": "array", "positions_per_sec": ...},
      "throughput": {"positions_per_sec": ..., "events_per_sec": ..., ...},
      "compression_ratio": 0.94,
      "metrics": {... full registry snapshot ...},
      "runtime": {... shards/restarts/stalls, only for sharded runs ...}
    }

``phases`` keys follow :data:`repro.pipeline.metrics.PHASES`;
``*_per_sec`` rates divide stream totals by the summed in-pipeline
processing time (not simulated time), i.e. they answer "how fast does this
machine chew through the stream", the Figure-7 question.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - types only
    from os import PathLike

    from repro.obs.registry import Histogram, MetricsRegistry

SCHEMA = "repro.obs/pipeline-v1"

#: Histogram-name prefix under which the pipeline records per-phase
#: per-slide seconds (see ``SurveillanceSystem.process_slide``).
PHASE_HISTOGRAM_PREFIX = "pipeline.phase."


def _phase_summary(histogram: Histogram) -> dict[str, float]:
    """Millisecond-denominated summary of one phase histogram."""
    summary = histogram.summary()
    return {
        "slides": summary["count"],
        "total_s": summary["total"],
        "mean_ms": summary["mean"] * 1e3,
        "p50_ms": summary["p50"] * 1e3,
        "p95_ms": summary["p95"] * 1e3,
        "p99_ms": summary["p99"] * 1e3,
        "max_ms": summary["max"] * 1e3,
    }


def build_pipeline_report(
    system: Any,
    registry: MetricsRegistry,
    config: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The standard observability report for one pipeline run.

    Parameters
    ----------
    system:
        The :class:`~repro.pipeline.system.SurveillanceSystem` that ran.
    registry:
        The (enabled) registry that collected the run's metrics.
    config:
        Optional run-configuration dict echoed verbatim into the report,
        so a ``BENCH_*.json`` records what produced it.
    """
    from repro.pipeline.metrics import PHASES

    phases: dict[str, dict[str, float]] = {}
    processing_seconds = 0.0
    for phase in PHASES:
        histogram = registry._histograms.get(PHASE_HISTOGRAM_PREFIX + phase)
        if histogram is None:
            continue
        phases[phase] = _phase_summary(histogram)
        processing_seconds += histogram.total

    counters = {name: c.value for name, c in registry._counters.items()}
    raw_positions = counters.get("pipeline.raw_positions", 0.0)
    movement_events = counters.get("pipeline.movement_events", 0.0)
    recognized = counters.get("pipeline.recognized_complex_events", 0.0)
    statistics = system.compressor.statistics

    def rate(total: float) -> float:
        return total / processing_seconds if processing_seconds > 0 else 0.0

    tracker = getattr(system, "tracker", None)
    if tracker is not None:
        backend = getattr(tracker, "backend_name", "scalar")
    else:  # the sharded runtime keeps its trackers in worker processes
        backend = getattr(system.config, "tracking_backend", "scalar")
    tracking_seconds = phases.get("tracking", {}).get("total_s", 0.0)

    report: dict[str, Any] = {
        "schema": SCHEMA,
        "config": dict(config or {}),
        "slides": system.timings.slides,
        "phases": phases,
        "tracking": {
            "backend": backend,
            "positions_per_sec": (
                raw_positions / tracking_seconds
                if tracking_seconds > 0
                else 0.0
            ),
        },
        "throughput": {
            "raw_positions": int(raw_positions),
            "movement_events": int(movement_events),
            "critical_points": statistics.critical_points,
            "recognized_complex_events": int(recognized),
            "processing_seconds": processing_seconds,
            "positions_per_sec": rate(raw_positions),
            "events_per_sec": rate(movement_events),
        },
        "compression_ratio": statistics.compression_ratio,
        "metrics": registry.snapshot(),
    }
    runtime = _runtime_summary(registry)
    if runtime:
        report["runtime"] = runtime
    return report


def _runtime_summary(registry: MetricsRegistry) -> dict[str, Any]:
    """Condense the process-parallel runtime's instruments, if any ran.

    Present only for :class:`repro.runtime.ParallelSurveillanceSystem`
    runs: shard count, supervisor restarts, backpressure stalls, and the
    per-shard tracking/recognition latency summaries recorded from the
    workers' own measurements (IPC excluded — the inclusive figures are
    the ``pipeline.phase.*`` histograms).
    """
    gauges = {name: g.value for name, g in registry._gauges.items()}
    if "runtime.shards" not in gauges:
        return {}
    counters = {name: c.value for name, c in registry._counters.items()}
    shards = int(gauges["runtime.shards"])
    per_shard: dict[str, dict[str, Any]] = {}
    for shard_id in range(shards):
        prefix = f"runtime.shard.{shard_id}."
        entry: dict[str, Any] = {}
        for phase in ("tracking", "recognition"):
            histogram = registry._histograms.get(prefix + phase)
            if histogram is not None:
                entry[phase] = _phase_summary(histogram)
        entry["restarts"] = int(counters.get(prefix + "restarts", 0))
        entry["backpressure_stalls"] = int(
            counters.get(prefix + "backpressure_stalls", 0)
        )
        per_shard[str(shard_id)] = entry
    return {
        "shards": shards,
        "restarts": int(counters.get("runtime.restarts", 0)),
        "backpressure_stalls": int(
            counters.get("runtime.backpressure_stalls", 0)
        ),
        "per_shard": per_shard,
    }


def write_report(report: dict[str, Any], path: str | PathLike[str]) -> None:
    """Write a report as indented JSON (trailing newline included)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
