"""Hierarchical timing spans.

A span measures the wall-clock duration of one block and records it into
its registry's span histograms under a *path*: spans opened inside another
span are children, and their path is ``parent-path + "/" + name``.  The
pipeline's per-slide phases therefore show up as, e.g.::

    pipeline.slide
    pipeline.slide/tracking
    pipeline.slide/tracking/tracking.process_batch

so one registry snapshot is simultaneously the Figure-10 phase breakdown
and a drill-down into each phase's interior.

Usage::

    with registry.span("tracking.process_batch"):
        events = tracker.process_batch(batch)

A disabled registry hands out :data:`NULL_SPAN`, a shared singleton whose
enter/exit do nothing at all — no clock reads, no allocation — so
instrumented hot paths cost one branch when metrics are off.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.registry import MetricsRegistry


class Span:
    """One open timing region; records its duration on exit.

    Attributes
    ----------
    name:
        The local name passed to ``span()``.
    path:
        Slash-joined ancestry, set on ``__enter__`` from the registry's
        span stack.
    seconds:
        Measured duration, available after ``__exit__`` (0.0 before).
    """

    __slots__ = ("registry", "name", "path", "parent", "seconds", "_started")

    def __init__(self, registry: MetricsRegistry, name: str):
        self.registry = registry
        self.name = name
        self.path = name
        self.parent: Span | None = None
        self.seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> Span:
        stack = self.registry._span_stack
        self.parent = stack[-1] if stack else None
        if self.parent is not None:
            self.path = f"{self.parent.path}/{self.name}"
        stack.append(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.seconds = time.perf_counter() - self._started
        stack = self.registry._span_stack
        if stack and stack[-1] is self:
            stack.pop()
        if self.registry.enabled:
            self.registry.record_span(self.path, self.seconds)

    def __repr__(self) -> str:
        return f"Span({self.path!r}, seconds={self.seconds:.6f})"


class _NullSpan:
    """The do-nothing span a disabled registry hands out."""

    __slots__ = ()
    name = ""
    path = ""
    parent = None
    seconds = 0.0

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: Shared no-op span; identity-comparable for tests.
NULL_SPAN = _NullSpan()
