"""The metrics registry: counters, gauges and quantile histograms.

The paper's whole evaluation (Figures 6-11) is built from *measured*
per-slide costs; this module is the measurement substrate.  A
:class:`MetricsRegistry` owns named instruments:

* :class:`Counter` — monotonically increasing totals (positions consumed,
  movement events detected, trips loaded);
* :class:`Gauge` — last-written values (current compression ratio, vessels
  tracked);
* :class:`Histogram` — streaming distributions with p50/p95/p99 quantiles
  (per-slide phase latencies).

Instruments are created on first use and live for the registry's lifetime.
A registry can be *disabled*: the convenience recorders (:meth:`inc`,
:meth:`set_gauge`, :meth:`observe`) and :meth:`span` become no-ops, so
instrumented hot paths pay only one attribute check.  The registry is
deliberately lock-free — like the paper's main-memory tracker it assumes a
single-threaded pipeline; use one registry per worker when partitioning.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.spans import Span, _NullSpan

#: Quantiles reported in snapshots, as (label, q) pairs.
SNAPSHOT_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

#: Quantiles exposed on Prometheus summaries (the ``quantile`` label).
PROMETHEUS_QUANTILES = (0.5, 0.95, 0.99)


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease: {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down; keeps the last write."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = value


@dataclass
class Histogram:
    """A streaming distribution with bounded memory.

    Exact ``count``/``total``/``min``/``max``; quantiles come from a
    deterministically decimated sample reservoir.  While fewer than
    ``capacity`` observations have arrived the quantiles are exact; beyond
    that, every other retained sample is dropped and only each
    ``stride``-th subsequent observation is kept, so memory stays bounded
    at ~``capacity`` floats without any randomness (benchmark runs stay
    reproducible).
    """

    name: str
    capacity: int = 4096
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))
    _samples: list[float] = field(default_factory=list, repr=False)
    _stride: int = field(default=1, repr=False)
    _phase: int = field(default=0, repr=False)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._phase += 1
        if self._phase >= self._stride:
            self._phase = 0
            self._samples.append(value)
            if len(self._samples) >= 2 * self.capacity:
                del self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) with linear interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    def summary(self) -> dict[str, float]:
        """Plain-dict summary: count, mean, min/max and the quantiles."""
        if self.count == 0:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0,
                    **{label: 0.0 for label, _ in SNAPSHOT_QUANTILES}}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            **{label: self.quantile(q) for label, q in SNAPSHOT_QUANTILES},
        }


class MetricsRegistry:
    """Named instruments plus the active-span stack for tracing.

    Parameters
    ----------
    enabled:
        When ``False`` the recording helpers are no-ops and
        :meth:`span` hands out a shared null span; instruments fetched
        directly still work, so tests can poke them explicitly.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: span-path -> duration histogram, kept apart from user histograms
        self._span_histograms: dict[str, Histogram] = {}
        #: stack of currently open Span objects (innermost last)
        self._span_stack: list[Span] = []

    # -- instrument access ----------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, capacity: int = 4096) -> Histogram:
        """Get or create a histogram."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, capacity)
        return instrument

    # -- recording helpers (no-ops when disabled) ------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter, unless disabled."""
        if self.enabled:
            self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge, unless disabled."""
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record a histogram observation, unless disabled."""
        if self.enabled:
            self.histogram(name).observe(value)

    # -- spans -----------------------------------------------------------

    def span(self, name: str, always: bool = False) -> Span | _NullSpan:
        """A timing span context manager (see :mod:`repro.obs.spans`).

        Disabled registries return a shared no-op span unless ``always``
        is set — pipeline phases pass ``always=True`` because their
        measured seconds feed :class:`repro.pipeline.metrics.PhaseTimings`
        even when metrics collection is off.
        """
        from repro.obs.spans import NULL_SPAN, Span

        if not self.enabled and not always:
            return NULL_SPAN
        return Span(self, name)

    def current_span(self) -> Span | None:
        """The innermost open span, or ``None``."""
        return self._span_stack[-1] if self._span_stack else None

    def record_span(self, path: str, seconds: float) -> None:
        """Record a completed span duration (called by ``Span.__exit__``)."""
        histogram = self._span_histograms.get(path)
        if histogram is None:
            histogram = self._span_histograms[path] = Histogram(path)
        histogram.observe(seconds)

    def span_histogram(self, path: str) -> Histogram | None:
        """Duration histogram of one span path, if it was ever recorded."""
        return self._span_histograms.get(path)

    def span_paths(self) -> list[str]:
        """All recorded span paths, sorted."""
        return sorted(self._span_histograms)

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Drop every instrument and recorded span (keeps enablement)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._span_histograms.clear()
        self._span_stack.clear()

    def snapshot(self) -> dict[str, Any]:
        """Machine-readable dump of every instrument.

        Layout::

            {"counters": {name: value},
             "gauges": {name: value},
             "histograms": {name: summary-dict},
             "spans": {path: summary-dict}}
        """
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
            "spans": {
                path: histogram.summary()
                for path, histogram in sorted(self._span_histograms.items())
            },
        }


# -- Prometheus text-format export ---------------------------------------

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitize an instrument name into a legal Prometheus metric name.

    Dots (the registry's namespacing convention) and any other illegal
    characters become underscores; a ``repro_`` prefix namespaces the
    whole export.
    """
    sanitized = _INVALID_METRIC_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _format_value(value: float) -> str:
    """Render a sample value; integers lose the trailing ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_summary(lines: list[str], name: str, histogram: Histogram) -> None:
    """One histogram as a Prometheus ``summary`` family."""
    lines.append(f"# TYPE {name} summary")
    for q in PROMETHEUS_QUANTILES:
        value = histogram.quantile(q) if histogram.count else 0.0
        lines.append(f'{name}{{quantile="{q}"}} {_format_value(value)}')
    lines.append(f"{name}_sum {_format_value(histogram.total)}")
    lines.append(f"{name}_count {histogram.count}")


def render_prometheus(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Render a registry in the Prometheus text exposition format (0.0.4).

    Counters gain the conventional ``_total`` suffix, histograms and span
    durations are exposed as summaries with ``quantile`` labels plus
    ``_sum``/``_count``, and span paths land under ``<prefix>_span_``.
    The output ends with a trailing newline, as the format requires.
    """
    lines: list[str] = []
    for name, counter in sorted(registry._counters.items()):
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counter.value)}")
    for name, gauge in sorted(registry._gauges.items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge.value)}")
    for name, histogram in sorted(registry._histograms.items()):
        _render_summary(lines, _metric_name(name, prefix), histogram)
    span_prefix = f"{prefix}_span" if prefix else "span"
    for path, histogram in sorted(registry._span_histograms.items()):
        _render_summary(lines, _metric_name(path, span_prefix), histogram)
    return "\n".join(lines) + "\n" if lines else "\n"
