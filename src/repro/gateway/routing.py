"""MMSI-hash routing of raw ``!AIVDM`` sentences to backend runtimes.

The cluster's byte-identity contract rests on one invariant: every
sentence of a vessel reaches the *same* backend runtime, in order.  The
router decides ownership from the MMSI carried in bits 8–38 of any AIS
payload, without decoding the rest of the message.

Multi-fragment messages only carry the MMSI in their first fragment, so
the router remembers ``(channel, message id)`` of an opened fragment
group and steers the continuation fragments to the same backend — the
backend's own fragment assembler then sees the complete group, exactly
as a single node would.  Anything unroutable (bad checksum, truncated
payload, an orphan continuation) goes deterministically to backend 0,
counted, where the backend's dead-letter machinery classifies it just
like a single node's would.
"""

from repro.ais.nmea import unwrap_aivdm
from repro.ais.sixbit import payload_to_bits
from repro.obs.registry import MetricsRegistry

#: Knuth's multiplicative hash constant; spreads consecutive MMSIs
#: (fleets are often numbered in blocks) evenly across backends.
_KNUTH = 2654435761

#: Open fragment groups remembered at once; beyond this the oldest is
#: evicted (and counted) — an abandoned group must not leak memory.
PENDING_FRAGMENT_CAPACITY = 1024


def shard_for_mmsi(mmsi: int, shards: int) -> int:
    """The backend runtime owning a vessel."""
    return ((mmsi * _KNUTH) & 0xFFFFFFFF) % shards


def mmsi_of_payload(payload: str, fill_bits: int) -> int | None:
    """MMSI from bits 8–38 of an AIS payload, or ``None`` if truncated."""
    try:
        bits = payload_to_bits(payload, fill_bits)
    except ValueError:
        return None
    if len(bits) < 38:
        return None
    value = 0
    for bit in bits[8:38]:
        value = (value << 1) | bit
    return value


class SentenceRouter:
    """Stateful, fragment-aware sentence → backend-index routing."""

    def __init__(self, backends: int, registry: MetricsRegistry):
        if backends < 1:
            raise ValueError(f"backends must be >= 1: {backends}")
        self.backends = backends
        self.registry = registry
        #: (channel, message id) → backend of an open fragment group.
        self._pending: dict[tuple[str, str], int] = {}

    def route(self, sentence: str) -> int:
        """The backend index owning this sentence (0 when unroutable)."""
        try:
            parsed = unwrap_aivdm(sentence)
        except ValueError:
            return self._unroutable("unparseable")
        if parsed.fragment_count > 1 and parsed.fragment_number > 1:
            key = (parsed.channel, parsed.message_id)
            if parsed.fragment_number == parsed.fragment_count:
                backend = self._pending.pop(key, None)
            else:
                backend = self._pending.get(key)
            if backend is None:
                return self._unroutable("orphan_fragment")
            return backend
        mmsi = mmsi_of_payload(parsed.payload, parsed.fill_bits)
        if mmsi is None:
            return self._unroutable("short_payload")
        backend = shard_for_mmsi(mmsi, self.backends)
        if parsed.fragment_count > 1:
            self._remember(
                (parsed.channel, parsed.message_id), backend
            )
        return backend

    def _remember(self, key: tuple[str, str], backend: int) -> None:
        self._pending[key] = backend
        if len(self._pending) > PENDING_FRAGMENT_CAPACITY:
            # Drop the stalest abandoned group — counted, never silent.
            oldest = next(iter(self._pending))
            del self._pending[oldest]
            self.registry.inc("gateway.route.fragment_groups_dropped")

    def _unroutable(self, reason: str) -> int:
        """Deterministic fallback: backend 0 quarantines it (counted)."""
        self.registry.inc("gateway.route.unroutable")
        self.registry.inc(f"gateway.route.unroutable.{reason}")
        return 0
