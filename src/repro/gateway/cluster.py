"""Whole-cluster assembly: gateways, runtimes, aggregator, chaos hooks.

:class:`GatewayCluster` wires the full scale-out topology inside one
process (every tier is asyncio, so one event loop hosts it all — the
same trick the service soak tests use): M backend runtimes — each a
complete :class:`~repro.service.supervisor.ServiceSupervisor` running in
watermark mode — fronted by N :class:`~repro.gateway.node.GatewayNode`
listeners and one :class:`~repro.gateway.aggregator.GatewayAggregator`.

The constructor *enforces* the deployment contract: backend recognition
must run with ``ce_scope = "vessel"``, because MMSI-hash sharding is
only exact when no rule crosses vessels (docs/GATEWAY.md).  Refusing to
start is better than silently emitting per-shard counts of cross-vessel
aggregates that no single node would ever produce.

Chaos hooks: :meth:`crash_runtime` kills one backend abruptly (no drain,
no finalize — its journal survives) and :meth:`restart_runtime` brings
up a fresh supervisor on the same journal directory, repoints every
gateway link, and reattaches the aggregator's feed source.  The journal
replay republishes the pre-crash slides before the feed rebinds, so the
merged stream resumes without holes or duplicates.
"""

import asyncio
import contextlib
from pathlib import Path

from repro.gateway.aggregator import GatewayAggregator
from repro.gateway.config import GatewayClusterConfig
from repro.gateway.health import ClusterSupervisor, LinkFailureDetector
from repro.gateway.node import GatewayNode, RuntimeLink
from repro.obs.registry import MetricsRegistry
from repro.pipeline.config import SystemConfig
from repro.service.config import ServiceConfig
from repro.service.supervisor import ServiceSupervisor
from repro.transport.base import TransportSession
from repro.transport.registry import create_transport


class GatewayCluster:
    """N gateways sharding into M runtimes, federated by one aggregator."""

    def __init__(
        self,
        world,
        specs,
        config: SystemConfig,
        cluster: GatewayClusterConfig | None = None,
    ):
        if config.ce_scope != "vessel":
            raise ValueError(
                "a gateway cluster requires SystemConfig(ce_scope='vessel'): "
                "cross-vessel rule-sets are not MMSI-decomposable "
                "(docs/GATEWAY.md)"
            )
        self.world = world
        self.specs = specs
        self.config = config
        self.cluster = cluster or GatewayClusterConfig()
        self.supervisors = [
            ServiceSupervisor(world, specs, config, self._service_config(i))
            for i in range(self.cluster.runtimes)
        ]
        self.nodes: list[GatewayNode] = []
        self.aggregator: GatewayAggregator | None = None
        #: The self-healing loop, when :meth:`start_supervisor` armed it.
        self.health_supervisor: ClusterSupervisor | None = None
        self._crashed: set[int] = set()

    def _service_config(self, index: int) -> ServiceConfig:
        cfg = self.cluster
        wal_dir = None
        if cfg.wal_root is not None:
            wal_dir = str(Path(cfg.wal_root) / f"runtime{index}")
        return ServiceConfig(
            host=cfg.host,
            ingest_port=0,
            feed_port=0,
            http_port=0,
            ingest_transport=cfg.backend_transport,
            feed_transport=cfg.backend_transport,
            watermark_sources=cfg.gateways,
            ingest_queue_size=cfg.ingest_queue_size,
            subscriber_queue_size=cfg.subscriber_queue_size,
            wal_dir=wal_dir,
            drain_timeout_seconds=cfg.drain_timeout_seconds,
            feed_replay_ring=cfg.feed_replay_ring,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        cfg = self.cluster
        for supervisor in self.supervisors:
            await supervisor.start()
        slide = self.config.window.slide_seconds
        for g in range(cfg.gateways):
            registry = MetricsRegistry()
            links = [
                RuntimeLink(
                    f"gw{g}->runtime{i}",
                    cfg.host,
                    supervisor.ingest.port,
                    create_transport(cfg.backend_transport),
                    registry,
                    queue_size=cfg.link_queue_size,
                    detector=LinkFailureDetector(
                        down_after_seconds=cfg.link_down_seconds
                    ),
                )
                for i, supervisor in enumerate(self.supervisors)
            ]
            node = GatewayNode(
                f"gw{g}",
                cfg.host,
                0,
                create_transport(cfg.transport),
                links,
                slide,
                registry=registry,
            )
            await node.start()
            self.nodes.append(node)
        self.aggregator = GatewayAggregator(
            cfg.host,
            cfg.http_port,
            cfg.feed_port,
            self.nodes,
            self._runtime_health,
            feed_transport=create_transport(cfg.transport),
            subscriber_queue_size=cfg.subscriber_queue_size,
            feed_replay_ring=cfg.feed_replay_ring,
            supervisor_health=self._supervisor_health,
        )
        await self.aggregator.start()
        for index, supervisor in enumerate(self.supervisors):
            await self._attach_feed(index, supervisor)
        self.aggregator.start_merge()

    async def _attach_feed(
        self, index: int, supervisor: ServiceSupervisor
    ) -> None:
        session = await create_transport(
            self.cluster.backend_transport
        ).connect(self.cluster.host, supervisor.feed.port, "feed")
        self.aggregator.attach_runtime(f"runtime{index}", session)

    async def connect_ingest(self, gateway: int = 0) -> TransportSession:
        """A client session to one gateway, on the client-facing transport."""
        node = self.nodes[gateway]
        return await create_transport(self.cluster.transport).connect(
            self.cluster.host, node.port, "ingest"
        )

    def start_supervisor(
        self, interval_seconds: float = 0.05, run: bool = True
    ) -> ClusterSupervisor:
        """Arm the self-healing loop (:mod:`repro.gateway.health`).

        With ``run=False`` the supervisor is created but not scheduled —
        tests and the partition drill drive ``tick()``/``check_once()``
        deterministically instead of racing a background task.
        """
        supervisor = ClusterSupervisor(self, interval_seconds=interval_seconds)
        self.health_supervisor = supervisor
        if run:
            supervisor.start()
        return supervisor

    async def drain_and_stop(self) -> None:
        """Ordered graceful drain, preserving the merged stream's tail:
        gateways first (final watermarks, flushed links), then runtimes
        (final slide + finalize published), then the fan-in and feeds."""
        if self.health_supervisor is not None:
            await self.health_supervisor.stop()
        for node in self.nodes:
            await node.drain()
        if self.aggregator is not None:
            self.aggregator.fanin.begin_close()
        for index, supervisor in enumerate(self.supervisors):
            if index not in self._crashed:
                await supervisor.drain_and_stop()
        if self.aggregator is not None:
            await self.aggregator.finish()
            await self.aggregator.stop()

    # ------------------------------------------------------------------
    # chaos hooks
    # ------------------------------------------------------------------

    def is_crashed(self, index: int) -> bool:
        """Whether runtime ``index`` is currently down (crashed, not yet
        restarted)."""
        return index in self._crashed

    async def crash_runtime(self, index: int) -> None:
        """Kill one runtime abruptly: no drain, no finalize.  Its journal
        survives for the restarted incarnation to replay."""
        supervisor = self.supervisors[index]
        self._crashed.add(index)
        task = supervisor._batcher_task
        if task is not None:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        supervisor.batcher.abort()
        await supervisor.ingest.stop()
        await supervisor.feed.close()
        await supervisor.http.stop()
        if hasattr(supervisor.system, "close"):
            supervisor.system.close()
        supervisor.system.database.close()

    async def restart_runtime(self, index: int) -> None:
        """Bring a crashed runtime back on its own journal, repoint every
        gateway link at the new ingest port, reattach the feed fan-in."""
        supervisor = ServiceSupervisor(
            self.world, self.specs, self.config, self._service_config(index)
        )
        await supervisor.start()
        self.supervisors[index] = supervisor
        for node in self.nodes:
            node.links[index].set_endpoint(
                self.cluster.host, supervisor.ingest.port
            )
        await self._attach_feed(index, supervisor)
        self._crashed.discard(index)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def _supervisor_health(self) -> dict | None:
        if self.health_supervisor is None:
            return None
        return self.health_supervisor.snapshot()

    def _runtime_health(self) -> list:
        entries = []
        for index, supervisor in enumerate(self.supervisors):
            name = f"runtime{index}"
            if index in self._crashed:
                entries.append({"name": name, "status": "down"})
                continue
            health = supervisor.health()
            entries.append({
                "name": name,
                "status": health["status"],
                "slides": health["slides"],
                "queue_depth": health["queue_depth"],
                "vessels": health["vessels"],
                "recovered_records": health["recovered_records"],
                "watermarks": health.get("watermarks"),
                "ports": health["ports"],
            })
        return entries

    @property
    def merged_lines(self) -> list[str]:
        """The cluster's merged feed so far (parity ground truth)."""
        assert self.aggregator is not None
        return self.aggregator.merged_lines

    def ports(self) -> dict:
        return {
            "gateways": [node.port for node in self.nodes],
            "feed": self.aggregator.hub.port if self.aggregator else None,
            "http": self.aggregator.http_port if self.aggregator else None,
        }
