"""Federation of per-node metrics registries into one scrape target.

Each gateway node keeps its own :class:`~repro.obs.registry.MetricsRegistry`
so its vitals survive scrutiny independently; the aggregator renders every
node's registry under a ``repro_node_<name>`` prefix and appends a
``repro_cluster`` section that sums counters and gauges across nodes.

Histograms are deliberately *not* summed: the registries keep quantile
summaries, and quantiles do not aggregate — the cluster section would be
lying.  Per-node quantiles stay in the per-node sections; anything that
must be cluster-accurate is a counter (docs/GATEWAY.md).
"""

import re

from repro.obs.registry import MetricsRegistry, render_prometheus

_NAME_SAFE = re.compile(r"[^a-zA-Z0-9_]")


def _safe(name: str) -> str:
    return _NAME_SAFE.sub("_", name)


def federate_prometheus(registries: dict[str, MetricsRegistry]) -> str:
    """Prometheus 0.0.4 exposition of every node plus the cluster sum.

    ``registries`` maps a node name to its registry; nodes render in
    sorted-name order so the exposition is deterministic.
    """
    cluster = MetricsRegistry()
    parts = []
    for name in sorted(registries):
        registry = registries[name]
        parts.append(
            render_prometheus(registry, prefix=f"repro_node_{_safe(name)}")
        )
        snapshot = registry.snapshot()
        for counter, value in snapshot["counters"].items():
            cluster.counter(counter).inc(value)
        for gauge, value in snapshot["gauges"].items():
            cluster.gauge(gauge).set(cluster.gauge(gauge).value + value)
    parts.append(render_prometheus(cluster, prefix="repro_cluster"))
    return "".join(parts)
