"""The cluster's single pane of glass: merged feed, health, metrics.

A :class:`GatewayAggregator` is the read side of the gateway tier.  It
owns the :class:`~repro.gateway.fanin.FeedFanIn` over the per-runtime
feeds, republishes the merged lines on its own
:class:`~repro.service.feed.FeedHub` (so external consumers subscribe to
*one* socket and see single-node-identical bytes), and serves two HTTP
endpoints in the same minimal HTTP/1.1 dialect as the per-runtime API
(:mod:`repro.service.http`):

* ``GET /healthz`` — cluster status (``ok`` / ``degraded`` / ``down``),
  per-node gateway vitals, per-runtime health, and any dormant feed
  sources;
* ``GET /metrics`` — the federated Prometheus exposition
  (:func:`repro.gateway.metrics.federate_prometheus`): every node under
  its own prefix plus the cluster-summed section.
"""

import asyncio
import json
from typing import Callable
from urllib.parse import unquote, urlsplit

from repro.gateway.fanin import FeedFanIn
from repro.gateway.metrics import federate_prometheus
from repro.gateway.node import GatewayNode
from repro.service.feed import FeedHub
from repro.transport.base import Transport, TransportSession


class GatewayAggregator:
    """Federated /healthz + /metrics and the merged alert feed."""

    def __init__(
        self,
        host: str,
        http_port: int,
        feed_port: int,
        nodes: list[GatewayNode],
        runtime_health: Callable[[], list],
        feed_transport: Transport | None = None,
        subscriber_queue_size: int = 256,
        feed_replay_ring: int = 4096,
        supervisor_health: Callable[[], dict | None] | None = None,
    ):
        self.host = host
        self.http_port = http_port
        self.nodes = nodes
        self.runtime_health = runtime_health
        self.supervisor_health = supervisor_health or (lambda: None)
        self.hub = FeedHub(
            host,
            feed_port,
            queue_size=subscriber_queue_size,
            transport=feed_transport,
            replay_ring=feed_replay_ring,
        )
        self.fanin = FeedFanIn(self._publish)
        #: Every merged line, in order — the parity tests' ground truth.
        self.merged_lines: list[str] = []
        self._server: asyncio.base_events.Server | None = None

    # ------------------------------------------------------------------
    # merged feed
    # ------------------------------------------------------------------

    def _publish(self, line: str) -> None:
        self.merged_lines.append(line)
        self.hub.publish(line)

    def attach_runtime(self, name: str, session: TransportSession) -> None:
        """Subscribe to one runtime's feed (also used on reattach after a
        runtime restart)."""
        self.fanin.add_source(name, session)

    def start_merge(self) -> None:
        """Start the barrier merge once the initial runtimes are attached."""
        self.fanin.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        await self.hub.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.http_port
        )
        self.http_port = self._server.sockets[0].getsockname()[1]

    async def finish(self) -> None:
        """Drain-side close: retire the fan-in, then the merged feed."""
        self.fanin.begin_close()
        await self.fanin.wait_closed()
        await self.hub.close()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # cluster vitals
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """Cluster status (``ok|degraded|down``): degraded whenever any
        runtime is unhealthy, any feed source is dormant, or any
        gateway→runtime link is not ``up``; down only when *every*
        runtime is down — a partially-alive cluster still serves."""
        runtimes = self.runtime_health()
        down_feeds = self.fanin.down_sources
        nodes = [node.snapshot() for node in self.nodes]
        link_trouble = any(
            link["state"] != "up"
            for snapshot in nodes
            for link in snapshot["links"]
        )
        if runtimes and all(
            entry.get("status") == "down" for entry in runtimes
        ):
            status = "down"
        elif (
            down_feeds
            or link_trouble
            or any(entry.get("status") != "ok" for entry in runtimes)
        ):
            status = "degraded"
        else:
            status = "ok"
        payload = {
            "status": status,
            "nodes": nodes,
            "runtimes": runtimes,
            "feed": {
                "down_sources": down_feeds,
                "merged_lines": len(self.merged_lines),
                "subscribers": self.hub.subscriber_count,
                "resumed": self.hub.resumed_count,
                "next_seq": self.hub.next_seq,
            },
        }
        supervisor = self.supervisor_health()
        if supervisor is not None:
            payload["supervisor"] = supervisor
        return payload

    def metrics_text(self) -> str:
        return federate_prometheus(
            {node.name: node.registry for node in self.nodes}
        )

    # ------------------------------------------------------------------
    # request handling (same dialect as repro.service.http)
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("ascii", errors="replace").split()
            if len(parts) != 3:
                await self._respond(writer, 400, {"error": "malformed request"})
                return
            method, target, _version = parts
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            if method != "GET":
                await self._respond(
                    writer, 405, {"error": f"method {method} not allowed"}
                )
                return
            status, payload, content_type = self._route(target)
            await self._respond(writer, status, payload, content_type)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _route(self, target: str):
        path = unquote(urlsplit(target).path).rstrip("/") or "/"
        if path == "/healthz":
            return 200, self.health(), "application/json"
        if path == "/metrics":
            return (
                200,
                self.metrics_text(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        return 404, {"error": f"no such endpoint: {path}"}, "application/json"

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        content_type: str = "application/json",
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed"}
        if isinstance(payload, str):
            body = payload.encode()
        else:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        writer.write(head.encode("ascii") + body)
        await writer.drain()
