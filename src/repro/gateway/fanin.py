"""Fan-in of per-runtime feed subscriptions into one merged stream.

Every backend runtime publishes its own feed of slide lines; the fan-in
subscribes to all of them and emits cluster lines in deterministic
order.  The merger is a *barrier* merge: it holds one head line per
live source and only emits once every source has shown its hand, so a
slow runtime delays the merged stream instead of corrupting its order.
Runtimes that started late (their first vessel arrived in a later slide)
simply have no line at early boundaries — the group at each ``(query
time, type)`` key is whichever sources reached it.

A source whose connection dies *unexpectedly* (no
:meth:`FeedFanIn.begin_close` yet) goes **dormant** rather than
finished: the merger keeps blocking on its queue, so when the cluster
restarts the runtime and reattaches a new session, the stream resumes
exactly where it stopped — replayed slides are deduplicated against the
last merged query time.  This is what makes a quiescent-point crash
invisible in the merged bytes (docs/GATEWAY.md).
"""

import asyncio
from typing import Callable

from repro.gateway.merge import merge_order_key, merged_feed_line, parse_feed_line
from repro.obs.registry import MetricsRegistry
from repro.transport.base import TransportError, TransportSession

#: Queue sentinel: the source's current session reached end-of-stream.
_EOF = object()


class _FanSource:
    """One runtime's subscription state."""

    def __init__(self, name: str):
        self.name = name
        self.queue: asyncio.Queue = asyncio.Queue()
        #: Last query time merged from this source — the dedup horizon
        #: for lines replayed after a reattach.
        self.last_qt: int | None = None
        self.down = False
        self.reader: asyncio.Task | None = None


class FeedFanIn:
    """Barrier-merge N runtime feeds into one deterministic stream."""

    def __init__(
        self,
        on_line: Callable[[str], None],
        registry: MetricsRegistry | None = None,
    ):
        self.on_line = on_line
        self.registry = registry if registry is not None else MetricsRegistry()
        self._sources: dict[str, _FanSource] = {}
        self._closing = False
        self._task: asyncio.Task | None = None

    def add_source(self, name: str, session: TransportSession) -> None:
        """Attach (or re-attach, after a runtime restart) one feed."""
        source = self._sources.get(name)
        if source is None:
            source = _FanSource(name)
            self._sources[name] = source
        loop = asyncio.get_running_loop()
        source.reader = loop.create_task(self._read(source, session))

    def start(self) -> None:
        """Start merging; call after the initial sources are attached."""
        self._task = asyncio.get_running_loop().create_task(self._run())

    @property
    def down_sources(self) -> list[str]:
        """Names of sources currently dormant (connection lost)."""
        return sorted(n for n, s in self._sources.items() if s.down)

    async def _read(self, source: _FanSource, session: TransportSession) -> None:
        try:
            while True:
                try:
                    line = await session.receive()
                except TransportError:
                    self.registry.inc("gateway.fanin.protocol_errors")
                    break
                if line is None:
                    break
                payload = parse_feed_line(line)
                if (
                    payload is None
                    or payload.get("type") not in ("slide", "finalize")
                    or not isinstance(payload.get("query_time"), int)
                ):
                    self.registry.inc("gateway.fanin.bad_lines")
                    continue
                if (
                    source.last_qt is not None
                    and payload["query_time"] <= source.last_qt
                ):
                    # A replayed slide from a restarted runtime's journal.
                    self.registry.inc("gateway.fanin.duplicate_lines")
                    continue
                await source.queue.put(payload)
        finally:
            await session.close()
            await source.queue.put(_EOF)

    async def _next_head(self, source: _FanSource):
        """The source's next line; ``None`` once it drained for good."""
        while True:
            item = await source.queue.get()
            if item is _EOF:
                if self._closing:
                    return None
                if not source.down:
                    source.down = True
                    self.registry.inc("gateway.fanin.source_losses")
                # Dormant, not dead: block until a reattached session
                # feeds this same queue again.
                continue
            source.down = False
            return item

    async def _run(self) -> None:
        heads: dict[str, dict] = {}
        while self._sources:
            for name in list(self._sources):
                if name not in heads:
                    head = await self._next_head(self._sources[name])
                    if head is None:
                        del self._sources[name]
                    else:
                        heads[name] = head
            if not heads:
                break
            key = min(merge_order_key(head) for head in heads.values())
            group = sorted(
                name for name, head in heads.items()
                if merge_order_key(head) == key
            )
            line = merged_feed_line([heads[name] for name in group])
            self.registry.inc("gateway.fanin.merged_lines")
            self.on_line(line)
            for name in group:
                self._sources[name].last_qt = heads[name]["query_time"]
                del heads[name]

    def begin_close(self) -> None:
        """Announce the cluster is draining: the next end-of-stream on
        each source means *finished*, not *crashed*.  Dormant sources are
        unblocked so the merger can retire them."""
        self._closing = True
        for source in self._sources.values():
            if source.down:
                source.queue.put_nowait(_EOF)

    async def wait_closed(self) -> None:
        """Wait for the merger to retire every source."""
        if self._task is not None:
            await self._task
            self._task = None
