"""Scale-out tier: shard-aware ingest gateways over partitioned runtimes.

One surveillance runtime tops out at one process's pipeline throughput.
This package scales *out* instead of up (docs/GATEWAY.md): N
:class:`GatewayNode` listeners accept client connections on any
registered transport (:mod:`repro.transport`), hash each ``!AIVDM``
sentence's MMSI to the runtime that owns the vessel, and keep the
cluster's slide cadence aligned with in-band watermarks; a
:class:`GatewayAggregator` federates the per-node ``/metrics``
registries, fans the per-runtime alert feeds into one deterministically
merged subscription, and serves a cluster ``/healthz`` with per-node
vitals.  :class:`GatewayCluster` assembles the whole topology in one
process.

The deployment contract: backend runtimes run with
``SystemConfig.ce_scope = "vessel"`` so recognition is MMSI-decomposable,
and the merged feed is then *byte-identical* to a single-node pipeline
over the same sentences.
"""

from repro.gateway.aggregator import GatewayAggregator
from repro.gateway.cluster import GatewayCluster
from repro.gateway.config import GatewayClusterConfig
from repro.gateway.fanin import FeedFanIn
from repro.gateway.health import ClusterSupervisor, LinkFailureDetector
from repro.gateway.merge import (
    alert_dict_sort_key,
    merge_order_key,
    merge_slide_payloads,
    merged_feed_line,
)
from repro.gateway.metrics import federate_prometheus
from repro.gateway.node import GatewayNode, RuntimeLink
from repro.gateway.routing import SentenceRouter, shard_for_mmsi

__all__ = [
    "ClusterSupervisor",
    "FeedFanIn",
    "GatewayAggregator",
    "GatewayCluster",
    "GatewayClusterConfig",
    "GatewayNode",
    "LinkFailureDetector",
    "RuntimeLink",
    "SentenceRouter",
    "alert_dict_sort_key",
    "federate_prometheus",
    "merge_order_key",
    "merge_slide_payloads",
    "merged_feed_line",
    "shard_for_mmsi",
]
