"""Configuration of the gateway cluster topology."""

from dataclasses import dataclass

from repro.transport.registry import DEFAULT_TRANSPORT, available_transports


@dataclass(frozen=True)
class GatewayClusterConfig:
    """Every knob of a :class:`~repro.gateway.cluster.GatewayCluster`.

    Ports set to ``0`` bind ephemerally, like
    :class:`~repro.service.config.ServiceConfig`; the cluster reports the
    actual ports after start.
    """

    host: str = "127.0.0.1"
    #: Gateway nodes accepting client connections.
    gateways: int = 2
    #: Partitioned backend runtimes (each one a full service supervisor).
    runtimes: int = 4
    #: Client-facing wire protocol of the gateway ingest listeners.
    transport: str = DEFAULT_TRANSPORT
    #: Wire protocol of the gateway→runtime links and the feed fan-in.
    backend_transport: str = DEFAULT_TRANSPORT
    #: Sentences buffered per gateway→runtime link before the oldest is
    #: shed (and counted), mirroring the ingest queue contract.
    link_queue_size: int = 8192
    #: Per-runtime ingest queue capacity (the benchmark sizes this to the
    #: whole stream so an unpaced replay measures overhead, not shedding).
    ingest_queue_size: int = 8192
    #: Merged-subscription feed port of the aggregator.
    feed_port: int = 0
    #: Cluster ``/healthz`` + federated ``/metrics`` port.
    http_port: int = 0
    #: Lines buffered per merged-feed subscriber before eviction.
    subscriber_queue_size: int = 256
    #: Published lines the merged feed (and each runtime feed) keeps for
    #: ``RESUME`` replays — how far back a subscriber can reconnect
    #: gapless (docs/SERVICE.md).
    feed_replay_ring: int = 4096
    #: Unbroken delivery-failure seconds after which a gateway→runtime
    #: link is declared ``down`` and the cluster supervisor intervenes
    #: (:mod:`repro.gateway.health`).
    link_down_seconds: float = 2.0
    #: Root directory for per-runtime write-ahead journals (``None`` = no
    #: durability); runtime ``i`` journals under ``<wal_root>/runtime<i>``
    #: and a restarted runtime replays its own journal.
    wal_root: str | None = None
    #: Per-runtime graceful-drain deadline.
    drain_timeout_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.gateways < 1:
            raise ValueError(f"gateways must be >= 1: {self.gateways}")
        if self.runtimes < 1:
            raise ValueError(f"runtimes must be >= 1: {self.runtimes}")
        for role, name in (
            ("transport", self.transport),
            ("backend_transport", self.backend_transport),
        ):
            if name not in available_transports():
                raise ValueError(
                    f"{role} must be one of {available_transports()}: {name!r}"
                )
        if self.link_queue_size <= 0:
            raise ValueError(
                f"link_queue_size must be positive: {self.link_queue_size}"
            )
        if self.ingest_queue_size <= 0:
            raise ValueError(
                f"ingest_queue_size must be positive: {self.ingest_queue_size}"
            )
        if self.subscriber_queue_size <= 0:
            raise ValueError(
                f"subscriber_queue_size must be positive: "
                f"{self.subscriber_queue_size}"
            )
        if self.feed_replay_ring <= 0:
            raise ValueError(
                f"feed_replay_ring must be positive: {self.feed_replay_ring}"
            )
        if self.link_down_seconds <= 0:
            raise ValueError(
                f"link_down_seconds must be positive: {self.link_down_seconds}"
            )
        if self.drain_timeout_seconds <= 0:
            raise ValueError(
                f"drain_timeout_seconds must be positive: "
                f"{self.drain_timeout_seconds}"
            )
