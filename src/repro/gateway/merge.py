"""Deterministic merge of per-runtime feed lines into cluster feed lines.

Pure functions over the parsed JSON payloads of
:func:`repro.service.protocol.slide_feed_line`.  The merge is only sound
under the ``ce_scope = "vessel"`` deployment contract (docs/GATEWAY.md):
vessels are then disjoint across runtimes, every runtime emits its
alerts and critical points in the same canonical order a single node
would, and the cluster line for one query time is the concatenation of
the shard lines re-sorted with the *same* keys the single node uses —
hence byte-identical output.
"""

import json

from repro.service.protocol import _dumps, point_sort_key

#: Feed-line types in emission order at one query time (a ``finalize``
#: flush always follows the last ``slide`` of the same boundary).
_TYPE_ORDER = {"slide": 0, "finalize": 1}


def alert_dict_sort_key(alert: dict) -> tuple:
    """Dict-level twin of :func:`repro.maritime.recognizer.alert_sort_key`.

    Must order alert dicts exactly as the recognizer orders
    :class:`~repro.maritime.recognizer.Alert` tuples, so a stable sort of
    concatenated shard alerts reproduces the single node's list.
    """
    mmsi = alert["mmsi"]
    mmsi2 = alert["mmsi2"]
    return (
        alert["since"],
        alert["kind"],
        alert["area"],
        -1 if mmsi is None else mmsi,
        -1 if mmsi2 is None else mmsi2,
    )


def merge_order_key(payload: dict) -> tuple:
    """Emission order of feed lines across runtimes: by query time, with
    every ``slide`` of a boundary before any ``finalize``."""
    kind = payload.get("type")
    if kind not in _TYPE_ORDER:
        raise ValueError(f"unmergeable feed line type: {kind!r}")
    return (payload["query_time"], _TYPE_ORDER[kind])


def merge_slide_payloads(payloads: list[dict]) -> dict:
    """Fold one feed line per runtime (same type, same query time) into
    the cluster line: counters sum, alerts and critical points re-sort
    into the single node's canonical order."""
    if not payloads:
        raise ValueError("nothing to merge")
    first = payloads[0]
    for payload in payloads[1:]:
        if (
            payload["type"] != first["type"]
            or payload["query_time"] != first["query_time"]
        ):
            raise ValueError(
                "cannot merge feed lines across types or query times: "
                f"{merge_order_key(first)} vs {merge_order_key(payload)}"
            )
    alerts: list[dict] = []
    points: list[dict] = []
    for payload in payloads:
        alerts.extend(payload["alerts"])
        points.extend(payload["critical_points"])
    # Stable sorts: same-key alerts only ever come from one runtime (one
    # vessel lives on one shard), so their shard-local order — which is
    # the single node's order — survives.
    alerts.sort(key=alert_dict_sort_key)
    points.sort(key=point_sort_key)
    return {
        "type": first["type"],
        "query_time": first["query_time"],
        "raw_positions": sum(p["raw_positions"] for p in payloads),
        "movement_events": sum(p["movement_events"] for p in payloads),
        "recognized": sum(p["recognized"] for p in payloads),
        "alerts": alerts,
        "critical_points": points,
    }


def merged_feed_line(payloads: list[dict]) -> str:
    """The merged lines' wire form — same serializer as the single node."""
    return _dumps(merge_slide_payloads(payloads))


def parse_feed_line(line: str) -> dict | None:
    """One feed line as a payload dict, or ``None`` if not valid JSON."""
    try:
        payload = json.loads(line)
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None
