"""One gateway node: accept clients, shard sentences, emit watermarks.

A :class:`GatewayNode` is the cluster's front door.  It accepts client
connections on any registered transport, routes each sentence to the
backend runtime owning its MMSI (:mod:`repro.gateway.routing`), and
broadcasts in-band watermarks (:func:`repro.service.protocol.format_watermark`)
to *every* runtime so their slide cadence stays aligned even though each
sees only a subset of the traffic.

Sentences travel to runtimes over :class:`RuntimeLink`\\ s — bounded
send queues with the same shed-oldest contract as the ingest queue, a
``gateway.link`` fault site for chaos drills, and deterministic
reconnect backoff so a restarted runtime is rejoined transparently.
"""

import asyncio
import time
from collections import deque

from repro.gateway.health import LinkFailureDetector
from repro.gateway.routing import SentenceRouter
from repro.obs.registry import MetricsRegistry
from repro.resilience.faults import fault_point
from repro.resilience.retry import BackoffPolicy
from repro.service.protocol import (
    format_ingest_line,
    format_watermark,
    parse_ingest_line,
)
from repro.transport.base import Transport, TransportError, TransportSession
from repro.transport.tcp import CLIENT_READ_LIMIT

#: Re-dial schedule of a link whose runtime went away.  The *delays* are
#: seeded and capped (0.05 s doubling to a 2 s ceiling); the attempt
#: budget only applies while the link is draining — a live link re-dials
#: indefinitely at the capped cadence and lets the failure detector and
#: cluster supervisor decide the runtime's fate, instead of silently
#: discarding data after a fixed number of tries.
LINK_BACKOFF = BackoffPolicy(
    initial_seconds=0.05, multiplier=2.0, max_seconds=2.0, max_attempts=8
)

#: A queued line awaiting transmission: ``(line, enqueued_at, control)``.
#: Control lines (watermarks) bypass shedding and fault injection —
#: losing one would stall a runtime's slide cadence, not lose data.
_QueuedLine = tuple[str, float, bool]


class RuntimeLink:
    """Bounded, self-healing pipe from one gateway to one runtime."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        transport: Transport,
        registry: MetricsRegistry,
        queue_size: int = 8192,
        policy: BackoffPolicy = LINK_BACKOFF,
        detector: LinkFailureDetector | None = None,
    ):
        self.name = name
        self.host = host
        self.port = port
        self.transport = transport
        self.registry = registry
        self.queue_size = queue_size
        self.policy = policy
        #: Failure detector fed by every delivery attempt; the cluster
        #: supervisor polls it to classify this link up/suspect/down.
        self.detector = detector if detector is not None else (
            LinkFailureDetector()
        )
        #: Re-dials attempted over this link's lifetime (also a counter).
        self.redials = 0
        self._items: deque[_QueuedLine] = deque()
        self._wakeup = asyncio.Event()
        #: Set to cut a re-dial backoff sleep short (endpoint moved, or
        #: the link is draining and must stop waiting on a dead runtime).
        self._redial_wakeup = asyncio.Event()
        self._closing = False
        self._session: TransportSession | None = None
        self._reset = False
        self._task: asyncio.Task | None = None

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._run())

    def set_endpoint(self, host: str, port: int) -> None:
        """Point the link at a restarted runtime; the sender reconnects
        lazily on the next line.

        The old session MUST be abandoned even if it still looks
        writable: TCP happily accepts writes into a dead peer's buffer,
        so without the reset flag post-restart traffic would drain into
        the zombie of the crashed runtime without a single error."""
        self.host = host
        self.port = port
        self._reset = True
        self._redial_wakeup.set()

    @property
    def state(self) -> str:
        """This link's detector state (``up`` / ``suspect`` / ``down``)."""
        return self.detector.state()

    @property
    def depth(self) -> int:
        """Lines currently queued."""
        return len(self._items)

    def send(self, line: str, control: bool = False) -> None:
        """Queue one ingest line (synchronous: called per sentence on the
        accept path, so it must never await)."""
        if not control:
            spec = fault_point("gateway.link")
            if spec is not None and spec.kind == "drop":
                self.registry.inc("gateway.link.injected_drops")
                return
        self._items.append((line, time.perf_counter(), control))
        if len(self._items) > self.queue_size:
            self._shed_oldest()
        self.registry.set_gauge("gateway.link.depth", len(self._items))
        self._wakeup.set()

    def _shed_oldest(self) -> None:
        """Backpressure contract of the ingest tier: shed the *oldest*
        data line, counted — control lines are never shed."""
        for index, (_, _, control) in enumerate(self._items):
            if not control:
                del self._items[index]
                self.registry.inc("gateway.link.shed")
                return

    async def _run(self) -> None:
        while True:
            while not self._items:
                if self._closing:
                    await self._disconnect()
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
            line, enqueued_at, _ = self._items.popleft()
            self.registry.observe(
                "gateway.ingest.latency_seconds",
                time.perf_counter() - enqueued_at,
            )
            self.registry.set_gauge("gateway.link.depth", len(self._items))
            await self._deliver(line)

    async def _deliver(self, line: str) -> None:
        """Deliver one line, re-dialing with capped backoff until it lands.

        A live link never gives a line up: delivery failures feed the
        detector, the backoff delay is capped at the policy ceiling, and
        data loss happens only through the bounded queue's counted
        shed-oldest.  Only while the link is *draining* does the attempt
        budget apply — a dead runtime must not hang shutdown forever."""
        attempt = 0
        while True:
            if self._reset:
                self._reset = False
                await self._disconnect()
            try:
                if self._session is None:
                    self._session = await self.transport.connect(
                        self.host, self.port, "ingest"
                    )
                await self._session.send(line)
            except (TransportError, ConnectionError, OSError):
                await self._disconnect()
                attempt += 1
                self.detector.record_failure()
                if self._closing and attempt >= self.policy.max_attempts:
                    # Drain-time budget spent: the line is lost, and says so.
                    self.registry.inc("gateway.link.lines_dropped")
                    return
                self.redials += 1
                self.registry.inc("gateway.link.redials")
                delay = self.policy.delay_for(
                    min(attempt, self.policy.max_attempts)
                )
                try:
                    # The sleep is interruptible: a supervised restart
                    # repoints the endpoint mid-backoff and the link
                    # re-dials immediately instead of serving out the
                    # remaining delay against a dead address.
                    await asyncio.wait_for(
                        self._redial_wakeup.wait(), timeout=delay
                    )
                except asyncio.TimeoutError:
                    pass
                self._redial_wakeup.clear()
                continue
            self.detector.record_success()
            self.registry.inc("gateway.link.lines")
            return

    async def _disconnect(self) -> None:
        session, self._session = self._session, None
        if session is not None:
            try:
                await session.close()
            except (TransportError, ConnectionError, OSError):
                pass

    async def close(self) -> None:
        """Flush the queue, then hang up."""
        self._closing = True
        self._wakeup.set()
        self._redial_wakeup.set()
        if self._task is not None:
            await self._task
            self._task = None

    def snapshot(self) -> dict:
        """Per-link vitals for the cluster ``/healthz``."""
        return {
            "name": self.name,
            "state": self.state,
            "depth": self.depth,
            "redials": self.redials,
            "consecutive_failures": self.detector.consecutive_failures,
        }


class GatewayNode:
    """One ingest listener sharding client traffic across the runtimes."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        transport: Transport,
        links: list[RuntimeLink],
        slide_seconds: int,
        registry: MetricsRegistry | None = None,
    ):
        if not links:
            raise ValueError("a gateway node needs at least one runtime link")
        if slide_seconds <= 0:
            raise ValueError(f"slide_seconds must be positive: {slide_seconds}")
        self.name = name
        self.host = host
        self.port = port
        self.transport = transport
        self.links = links
        self.slide_seconds = slide_seconds
        self.registry = registry if registry is not None else MetricsRegistry()
        self.router = SentenceRouter(len(links), self.registry)
        self._server: asyncio.AbstractServer | None = None
        #: First slide boundary not yet watermarked; ``None`` until the
        #: first sentence fixes the grid.
        self._next_boundary: int | None = None
        self._last_time: int | None = None
        self._drained = False
        self.open_connections = 0
        self._idle = asyncio.Event()
        self._idle.set()

    async def start(self) -> None:
        for link in self.links:
            link.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=CLIENT_READ_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = await self.transport.accept(reader, writer, "ingest")
        if session is None:
            self.registry.inc("gateway.ingest.handshake_failures")
            writer.close()
            return
        self.registry.inc("gateway.ingest.connections")
        self.open_connections += 1
        self._idle.clear()
        try:
            while True:
                try:
                    line = await session.receive()
                except TransportError:
                    self.registry.inc("gateway.ingest.protocol_errors")
                    break
                if line is None:
                    break
                parsed = parse_ingest_line(line, int(time.time()))
                if parsed is None:
                    continue
                self._forward(*parsed)
        finally:
            await session.close()
            self.open_connections -= 1
            if self.open_connections == 0:
                self._idle.set()

    def _forward(self, receive_time: int, sentence: str) -> None:
        """Route one sentence; advance the watermark grid first so every
        runtime sees the boundary watermark before post-boundary traffic."""
        index = self.router.route(sentence)
        self._advance_watermarks(receive_time)
        self.links[index].send(format_ingest_line(receive_time, sentence))
        self.registry.inc("gateway.ingest.lines")

    def _advance_watermarks(self, receive_time: int) -> None:
        slide = self.slide_seconds
        if self._next_boundary is None:
            # First sentence: announce this source to every runtime so
            # quiet shards still learn the cluster has N gateways.
            self._broadcast(format_watermark(receive_time, self.name))
            boundary = ((receive_time + slide - 1) // slide) * slide
            if boundary == receive_time:
                boundary += slide
            self._next_boundary = boundary
        elif receive_time > self._next_boundary:
            self._broadcast(format_watermark(receive_time, self.name))
            while self._next_boundary < receive_time:
                self._next_boundary += slide
        if self._last_time is None or receive_time > self._last_time:
            self._last_time = receive_time
        elif receive_time < self._last_time:
            # Behind our own watermark: forwarded anyway (the runtime
            # batches it), but counted — the monotonicity contract of
            # watermarked ingest was violated upstream.
            self.registry.inc("gateway.ingest.late_lines")

    def _broadcast(self, watermark_line: str) -> None:
        self.registry.inc("gateway.watermarks")
        for link in self.links:
            link.send(watermark_line, control=True)

    async def drain(self) -> None:
        """Stop accepting, final-watermark every runtime, flush links.

        Waits for in-flight client connections to hang up first — the
        final watermark promises no more data from this source, so it
        must really be last on every link."""
        if self._drained:
            return
        self._drained = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._idle.wait()
        final_time = self._last_time if self._last_time is not None else 0
        self._broadcast(format_watermark(final_time, self.name, final=True))
        for link in self.links:
            await link.close()

    def snapshot(self) -> dict:
        """Per-node vitals for the cluster ``/healthz``."""
        return {
            "name": self.name,
            "port": self.port,
            "last_receive_time": self._last_time,
            "next_boundary": self._next_boundary,
            "link_depths": [link.depth for link in self.links],
            "links": [link.snapshot() for link in self.links],
            "counters": dict(self.registry.snapshot()["counters"]),
        }
