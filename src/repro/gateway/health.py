"""Self-healing for the gateway tier: heartbeats, detection, failover.

Two pieces turn PR 8's manual ``crash_runtime``/``restart_runtime``
chaos hooks into a closed loop (docs/GATEWAY.md, docs/RESILIENCE.md):

* :class:`LinkFailureDetector` — one per
  :class:`~repro.gateway.node.RuntimeLink`, a deterministic timeout-style
  (simplified phi-accrual) detector fed by every delivery attempt.  A
  link is ``up`` while deliveries succeed, ``suspect`` from the first
  failed delivery, and ``down`` once failures have persisted unbroken
  for ``down_after_seconds``.  The clock is injectable, so tests drive
  the state machine without sleeping.
* :class:`ClusterSupervisor` — the control loop over a
  :class:`~repro.gateway.cluster.GatewayCluster`.  Each tick it sends an
  in-band heartbeat (:func:`repro.service.protocol.format_heartbeat`,
  riding the same control-line channel as watermarks) down every link —
  guaranteeing delivery attempts, and therefore detector signal, even on
  an idle cluster — then checks every runtime's links.  A runtime whose
  link is ``down`` on any gateway is restarted through the cluster's
  chaos hooks with seeded, capped backoff between successive restarts of
  the same runtime; a restarted runtime binds a fresh ephemeral port and
  every link re-dials it, which is also how the cluster escapes a
  network partition pinned to the old endpoint
  (:mod:`repro.transport.chaosnet`).  Every heal is recorded as an
  incident with measured detection and failover latency (the MTTR
  evidence ``harness --partition-drill`` publishes).

Heartbeats never touch watermark clocks, the journal, or the scanner —
the runtime counts and discards them — so supervision leaves the merged
feed's byte-identity contract untouched.
"""

import asyncio
import contextlib
import time

from repro import obs
from repro.resilience.retry import BackoffPolicy
from repro.service.protocol import format_heartbeat

#: Link states, healthiest first.
LINK_STATES = ("up", "suspect", "down")

#: Unbroken failure duration after which a link is declared ``down``.
DEFAULT_DOWN_AFTER_SECONDS = 2.0

#: Backoff between successive restarts of the *same* runtime — a runtime
#: that keeps dying is retried slower, never hot-looped (deterministic:
#: a pure function of the restart count, like every policy in the tree).
RESTART_BACKOFF = BackoffPolicy(
    initial_seconds=0.05, multiplier=2.0, max_seconds=1.0, max_attempts=6
)


class LinkFailureDetector:
    """Deterministic ``up``/``suspect``/``down`` classifier for one link.

    Fed by the link's delivery loop: :meth:`record_failure` on every
    failed connect/send, :meth:`record_success` on every delivered line.
    One success heals the detector completely — the suspicion window
    measures *unbroken* failure, the timeout analogue of phi-accrual's
    decaying suspicion.
    """

    def __init__(
        self,
        down_after_seconds: float = DEFAULT_DOWN_AFTER_SECONDS,
        clock=time.monotonic,
    ):
        if down_after_seconds <= 0:
            raise ValueError(
                f"down_after_seconds must be positive: {down_after_seconds}"
            )
        self.down_after_seconds = down_after_seconds
        self.clock = clock
        #: Clock reading of the first failure of the current streak.
        self.first_failure_at: float | None = None
        #: Consecutive failures of the current streak.
        self.consecutive_failures = 0

    def record_success(self) -> None:
        self.first_failure_at = None
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.first_failure_at is None:
            self.first_failure_at = self.clock()

    def reset(self) -> None:
        """Forget the current streak (after a supervised restart, the old
        endpoint's failures say nothing about the new incarnation)."""
        self.record_success()

    def state(self) -> str:
        if self.first_failure_at is None:
            return "up"
        elapsed = self.clock() - self.first_failure_at
        return "down" if elapsed >= self.down_after_seconds else "suspect"

    def snapshot(self) -> dict:
        return {
            "state": self.state(),
            "consecutive_failures": self.consecutive_failures,
            "down_after_seconds": self.down_after_seconds,
        }


class ClusterSupervisor:
    """Closed-loop self-healing over one :class:`GatewayCluster`.

    ``interval_seconds`` paces both the heartbeat fan-out and the health
    check; :meth:`tick` and :meth:`check_once` are public so tests (and
    the partition drill) can drive one deterministic step at a time
    instead of racing the background loop.
    """

    def __init__(
        self,
        cluster,
        interval_seconds: float = 0.05,
        policy: BackoffPolicy = RESTART_BACKOFF,
        clock=time.monotonic,
    ):
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive: {interval_seconds}"
            )
        self.cluster = cluster
        self.interval_seconds = interval_seconds
        self.policy = policy
        self.clock = clock
        self.heartbeats_sent = 0
        #: One entry per completed heal, in order — the MTTR evidence.
        self.incidents: list[dict] = []
        self._seq = 0
        self._healing: set[int] = set()
        self._restarts: dict[int, int] = {}
        self._task: asyncio.Task | None = None
        self._stopped = False

    # ------------------------------------------------------------------
    # one supervision step (deterministically drivable)
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Send one heartbeat from every gateway down every link."""
        self._seq += 1
        for node in self.cluster.nodes:
            line = format_heartbeat(node.name, self._seq)
            for link in node.links:
                link.send(line, control=True)
                self.heartbeats_sent += 1
        obs.count(
            "gateway.supervisor.heartbeats",
            len(self.cluster.nodes) * len(self.cluster.supervisors),
        )

    def link_states(self, index: int) -> list[str]:
        """Every gateway's detector state for runtime ``index``'s link."""
        return [
            node.links[index].detector.state() for node in self.cluster.nodes
        ]

    async def check_once(self) -> list[int]:
        """Heal every runtime some gateway sees as ``down``; returns the
        indices healed this pass."""
        healed = []
        for index in range(len(self.cluster.supervisors)):
            if index in self._healing:
                continue
            if "down" in self.link_states(index):
                await self._heal(index)
                healed.append(index)
        return healed

    async def _heal(self, index: int) -> None:
        self._healing.add(index)
        try:
            detected_at = self.clock()
            first_failure = min(
                (
                    node.links[index].detector.first_failure_at
                    for node in self.cluster.nodes
                    if node.links[index].detector.first_failure_at is not None
                ),
                default=detected_at,
            )
            attempt = self._restarts.get(index, 0)
            if attempt:
                # This runtime died before: back off before restarting
                # again rather than hot-looping a crash-looping shard.
                await asyncio.sleep(
                    self.policy.delay_for(
                        min(attempt, self.policy.max_attempts)
                    )
                )
            self._restarts[index] = attempt + 1
            if not self.cluster.is_crashed(index):
                # A live-but-unreachable runtime (partition, wedged
                # socket): demote it to a clean crash first so the
                # restart path is the one journal-replay already proves.
                await self.cluster.crash_runtime(index)
            await self.cluster.restart_runtime(index)
            for node in self.cluster.nodes:
                node.links[index].detector.reset()
            healed_at = self.clock()
            incident = {
                "runtime": index,
                "detection_seconds": detected_at - first_failure,
                "failover_seconds": healed_at - detected_at,
                "restarts": self._restarts[index],
            }
            self.incidents.append(incident)
            obs.count("gateway.supervisor.restarts")
            obs.observe(
                "gateway.supervisor.detection_seconds",
                incident["detection_seconds"],
            )
            obs.observe(
                "gateway.supervisor.failover_seconds",
                incident["failover_seconds"],
            )
        finally:
            self._healing.discard(index)

    # ------------------------------------------------------------------
    # background loop
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self.run())

    async def run(self) -> None:
        while not self._stopped:
            self.tick()
            await self.check_once()
            await asyncio.sleep(self.interval_seconds)

    async def stop(self) -> None:
        self._stopped = True
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    def snapshot(self) -> dict:
        """Supervisor vitals for the cluster ``/healthz``."""
        return {
            "heartbeats_sent": self.heartbeats_sent,
            "restarts": dict(self._restarts),
            "healing": sorted(self._healing),
            "incidents": list(self.incidents),
        }
