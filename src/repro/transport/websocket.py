"""Stdlib-only WebSocket transport: RFC 6455 over asyncio streams.

One application message = one text frame (opcode ``0x1``), so message
framing is native — no newline convention needed — and browser or
``websockets``-library clients can subscribe to the feed directly.  The
implementation covers the subset a text-message transport needs:

* the HTTP/1.1 upgrade handshake (``Sec-WebSocket-Accept`` =
  base64(SHA-1(key + GUID)), the magic of RFC 6455 §4.2.2);
* frame codec with 7/16/64-bit payload lengths, client→server masking
  (required by §5.1: the server fails unmasked client frames, the
  client always masks with a fresh ``os.urandom`` key);
* fragmented messages (continuation frames accumulated until ``FIN``);
* control frames: ``ping`` answered with ``pong``, ``close`` echoed
  once and surfaced as end-of-stream.

Binary frames are refused — the service's wire formats are all text —
and a frame larger than :data:`MAX_MESSAGE_BYTES` is a protocol error,
bounding memory per connection.
"""

import asyncio
import base64
import hashlib
import os
import struct

from repro.transport.base import (
    Transport,
    TransportError,
    TransportSession,
    check_mode,
)
from repro.transport.tcp import CLIENT_READ_LIMIT

#: RFC 6455 §1.3 — the handshake GUID every implementation shares.
GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Upper bound on one message's payload; a feed line with thousands of
#: critical points is ~1 MiB, so 16 MiB leaves an order of magnitude.
MAX_MESSAGE_BYTES = 16 * 1024 * 1024

_OP_CONT = 0x0
_OP_TEXT = 0x1
_OP_BINARY = 0x2
_OP_CLOSE = 0x8
_OP_PING = 0x9
_OP_PONG = 0xA


def accept_key(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's nonce."""
    digest = hashlib.sha1((key + GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


async def _read_headers(reader: asyncio.StreamReader) -> tuple[str, dict]:
    """One HTTP request/status head: ``(start_line, lowercased headers)``."""
    raw = await reader.readuntil(b"\r\n\r\n")
    lines = raw.decode("latin-1").split("\r\n")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return lines[0], headers


class WebSocketSession(TransportSession):
    """One upgraded connection speaking text frames."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        mask_outgoing: bool,
    ):
        self.reader = reader
        self.writer = writer
        #: Clients mask, servers don't (RFC 6455 §5.1).
        self.mask_outgoing = mask_outgoing
        self._close_sent = False

    # -- frame codec ---------------------------------------------------

    async def _read_frame(self) -> tuple[int, bool, bytes]:
        """``(opcode, fin, payload)`` of the next frame on the wire."""
        head = await self.reader.readexactly(2)
        fin = bool(head[0] & 0x80)
        opcode = head[0] & 0x0F
        masked = bool(head[1] & 0x80)
        length = head[1] & 0x7F
        if length == 126:
            (length,) = struct.unpack("!H", await self.reader.readexactly(2))
        elif length == 127:
            (length,) = struct.unpack("!Q", await self.reader.readexactly(8))
        if length > MAX_MESSAGE_BYTES:
            raise TransportError(f"frame of {length} bytes exceeds limit")
        if masked:
            mask = await self.reader.readexactly(4)
        payload = await self.reader.readexactly(length) if length else b""
        if masked:
            payload = bytes(
                byte ^ mask[i % 4] for i, byte in enumerate(payload)
            )
        elif not self.mask_outgoing:
            # We are the server: §5.1 requires client frames be masked.
            raise TransportError("unmasked client frame")
        return opcode, fin, payload

    def _write_frame(self, opcode: int, payload: bytes) -> None:
        head = bytearray([0x80 | opcode])
        length = len(payload)
        mask_bit = 0x80 if self.mask_outgoing else 0x00
        if length < 126:
            head.append(mask_bit | length)
        elif length < 1 << 16:
            head.append(mask_bit | 126)
            head += struct.pack("!H", length)
        else:
            head.append(mask_bit | 127)
            head += struct.pack("!Q", length)
        if self.mask_outgoing:
            mask = os.urandom(4)
            head += mask
            payload = bytes(
                byte ^ mask[i % 4] for i, byte in enumerate(payload)
            )
        self.writer.write(bytes(head) + payload)

    # -- session API ---------------------------------------------------

    async def receive(self) -> str | None:
        fragments: list[bytes] = []
        in_message = False
        while True:
            try:
                opcode, fin, payload = await self._read_frame()
            except (
                asyncio.IncompleteReadError,
                ConnectionResetError,
                OSError,
            ):
                return None
            if opcode == _OP_PING:
                try:
                    self._write_frame(_OP_PONG, payload)
                    await self.writer.drain()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    return None
                continue
            if opcode == _OP_PONG:
                continue
            if opcode == _OP_CLOSE:
                await self._send_close()
                return None
            if opcode == _OP_BINARY:
                raise TransportError("binary frames unsupported")
            if opcode == _OP_TEXT:
                if in_message:
                    raise TransportError("text frame inside fragmented message")
                in_message = True
            elif opcode == _OP_CONT:
                if not in_message:
                    raise TransportError("continuation without a message")
            else:
                raise TransportError(f"unsupported opcode {opcode:#x}")
            fragments.append(payload)
            if sum(len(f) for f in fragments) > MAX_MESSAGE_BYTES:
                raise TransportError("fragmented message exceeds limit")
            if fin:
                return b"".join(fragments).decode("utf-8", errors="replace")

    async def send(self, text: str) -> None:
        try:
            self._write_frame(_OP_TEXT, text.encode("utf-8"))
            await self.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise TransportError(f"peer gone: {exc}") from exc

    async def _send_close(self) -> None:
        if self._close_sent:
            return
        self._close_sent = True
        try:
            self._write_frame(_OP_CLOSE, b"")
            await self.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def close(self) -> None:
        await self._send_close()
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class WebSocketTransport(Transport):
    """RFC 6455 text frames; symmetric, so ``mode`` only gates the path."""

    name = "websocket"

    #: Request path clients dial; the server accepts any path, so both
    #: ``/ingest`` and ``/feed`` upgrade to the same session type.
    def _path(self, mode: str) -> str:
        return f"/{mode}"

    async def accept(self, reader, writer, mode: str):
        check_mode(mode)
        try:
            request, headers = await _read_headers(reader)
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            return None
        key = headers.get("sec-websocket-key")
        if (
            "websocket" not in headers.get("upgrade", "").lower()
            or key is None
            or not request.startswith("GET ")
        ):
            writer.write(
                b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n"
                b"Connection: close\r\n\r\n"
            )
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            return None
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {accept_key(key)}\r\n\r\n"
            ).encode("ascii")
        )
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            return None
        return WebSocketSession(reader, writer, mask_outgoing=False)

    async def connect(self, host: str, port: int, mode: str):
        check_mode(mode)
        reader, writer = await asyncio.open_connection(
            host, port, limit=CLIENT_READ_LIMIT
        )
        nonce = base64.b64encode(os.urandom(16)).decode("ascii")
        writer.write(
            (
                f"GET {self._path(mode)} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {nonce}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n"
            ).encode("ascii")
        )
        await writer.drain()
        try:
            status, headers = await _read_headers(reader)
        except asyncio.IncompleteReadError as exc:
            raise TransportError("handshake cut short") from exc
        if " 101 " not in status + " ":
            raise TransportError(f"upgrade refused: {status!r}")
        if headers.get("sec-websocket-accept") != accept_key(nonce):
            raise TransportError("bad Sec-WebSocket-Accept")
        return WebSocketSession(reader, writer, mask_outgoing=True)
