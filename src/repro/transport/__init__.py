"""Pluggable wire protocols for the live service (docs/GATEWAY.md).

The service's two streaming surfaces — ``!AIVDM`` ingest in, JSON feed
lines out — speak any registered transport: newline TCP (the default,
byte-compatible with the pre-transport wire), RFC 6455 WebSocket text
frames, or HTTP-forward (POST batches in, chunked streaming out).
All three are stdlib-only and pass one shared conformance suite; each
also registers a ``chaos+``-prefixed variant wrapped in deterministic
network chaos (:mod:`repro.transport.chaosnet`) for partition drills.
"""

from repro.transport.base import (
    MODES,
    Transport,
    TransportError,
    TransportSession,
)
from repro.transport.chaosnet import ChaosNetTransport, ChaosProfile
from repro.transport.httpforward import HttpForwardTransport
from repro.transport.registry import (
    DEFAULT_TRANSPORT,
    available_transports,
    create_transport,
    register,
)
from repro.transport.tcp import TcpTransport
from repro.transport.websocket import WebSocketTransport

__all__ = [
    "MODES",
    "DEFAULT_TRANSPORT",
    "ChaosNetTransport",
    "ChaosProfile",
    "HttpForwardTransport",
    "TcpTransport",
    "Transport",
    "TransportError",
    "TransportSession",
    "WebSocketTransport",
    "available_transports",
    "create_transport",
    "register",
]
