"""The transport registry: names to adapter factories.

Mirrors :mod:`repro.tracking.backends`: a flat name→factory map, a
``create_transport`` lookup with a helpful error, and
``available_transports`` for CLI choices.  Config objects store the
*name* (``ServiceConfig.ingest_transport``), so a deployment's wire
protocol is one flag, not code.
"""

from repro.transport.base import Transport
from repro.transport.chaosnet import ChaosNetTransport
from repro.transport.httpforward import HttpForwardTransport
from repro.transport.tcp import TcpTransport
from repro.transport.websocket import WebSocketTransport

#: The default wire protocol — byte-compatible with the pre-transport
#: service (newline-delimited text over TCP).
DEFAULT_TRANSPORT = "tcp"


def _chaos(factory):
    """A factory for the chaos-wrapped variant of a base transport."""
    return lambda: ChaosNetTransport(factory())


_FACTORIES: dict = {
    TcpTransport.name: TcpTransport,
    WebSocketTransport.name: WebSocketTransport,
    HttpForwardTransport.name: HttpForwardTransport,
    # Every base wire wrapped in deterministic network chaos
    # (repro.transport.chaosnet): same protocol, hostile network.
    "chaos+tcp": _chaos(TcpTransport),
    "chaos+websocket": _chaos(WebSocketTransport),
    "chaos+http": _chaos(HttpForwardTransport),
}


def register(name: str, factory) -> None:
    """Add (or replace) a transport factory under ``name``."""
    if not name:
        raise ValueError("transport name must be non-empty")
    _FACTORIES[name] = factory


def available_transports() -> tuple[str, ...]:
    """Registered transport names, sorted for stable CLI help."""
    return tuple(sorted(_FACTORIES))


def create_transport(name: str = DEFAULT_TRANSPORT) -> Transport:
    """Instantiate the named transport adapter."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown transport {name!r}; available: "
            f"{', '.join(available_transports())}"
        ) from None
    return factory()
