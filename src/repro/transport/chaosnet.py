"""Network chaos at the session layer: latency, jitter, drops, partitions.

:class:`ChaosNetTransport` wraps any registered transport and perturbs
it *between* the adapter and the network — the wrapped protocol is
untouched, so a ``chaos+tcp`` session speaks bytes identical to ``tcp``.
Four deterministic fault surfaces, all visible to callers as ordinary
:class:`~repro.transport.base.TransportError` failures (exactly what a
flaky network produces, so every retry/redial/failover path in the tree
is exercised for real):

* **Latency and jitter** — a seeded :class:`ChaosProfile` sleeps each
  send/receive on the event loop (``asyncio.sleep``, never blocking).
  The default profile is all zeros: a bare ``chaos+tcp`` is a pure
  pass-through until a fault plan arms it.
* **Drops** — the ``chaosnet.connect`` / ``chaosnet.send`` /
  ``chaosnet.receive`` fault sites (:mod:`repro.resilience.faults`) fail
  the n-th dial, outbound message, or inbound read deterministically.
* **Partitions** — a module-level partition table keyed by endpoint
  ``(host, port)``: :func:`sever` makes every dial *and* every send on
  existing sessions to that endpoint fail until :func:`heal` (or an
  auto-heal deadline) lifts it.  The ``chaosnet.partition`` fault site
  severs the dialed endpoint from a plan (``arg`` = auto-heal seconds),
  which is how ``--chaos`` stages a partition drill.  A restarted
  runtime binds a fresh ephemeral port, so self-healing escapes a
  partition the way a real failover does: by moving the endpoint.

Registered as ``chaos+tcp`` / ``chaos+websocket`` / ``chaos+http`` in
:mod:`repro.transport.registry`; a cluster flips its
``backend_transport`` to stage wire-level chaos with zero other changes.
"""

import asyncio
import random
import time

from repro import obs
from repro.resilience.faults import fault_point
from repro.transport.base import (
    Transport,
    TransportError,
    TransportSession,
    check_mode,
)

#: Severed endpoints: ``(host, port) -> heal deadline`` (``None`` = until
#: :func:`heal`).  Module-level on purpose — every chaos-wrapped session
#: in the process shares one network, like sessions share one switch.
_PARTITIONS: dict[tuple[str, int], float | None] = {}


def sever(host: str, port: int, for_seconds: float | None = None) -> None:
    """Partition an endpoint: dials and sends to it fail until healed."""
    deadline = None
    if for_seconds is not None and for_seconds > 0:
        deadline = time.monotonic() + for_seconds
    _PARTITIONS[(host, port)] = deadline
    obs.count("chaosnet.partitions")


def heal(host: str, port: int) -> None:
    """Lift one endpoint's partition (no-op if it was not severed)."""
    _PARTITIONS.pop((host, port), None)


def clear_partitions() -> None:
    """Lift every partition (tests and drills reset the network)."""
    _PARTITIONS.clear()


def is_severed(host: str, port: int) -> bool:
    """Whether an endpoint is currently unreachable (auto-heals lazily)."""
    deadline = _PARTITIONS.get((host, port), False)
    if deadline is False:
        return False
    if deadline is not None and time.monotonic() >= deadline:
        del _PARTITIONS[(host, port)]
        return False
    return True


class ChaosProfile:
    """Seeded per-message latency: ``latency + U(0, jitter)`` seconds.

    Deterministic for a given seed and call sequence; all-zero (the
    default) costs nothing — not even a sleep(0) yield.
    """

    def __init__(
        self,
        latency_seconds: float = 0.0,
        jitter_seconds: float = 0.0,
        seed: int = 0,
    ):
        if latency_seconds < 0 or jitter_seconds < 0:
            raise ValueError("latency and jitter must be >= 0")
        self.latency_seconds = latency_seconds
        self.jitter_seconds = jitter_seconds
        self._rng = random.Random(seed)

    def delay_seconds(self) -> float:
        """The next message's injected delay."""
        if self.jitter_seconds:
            return self.latency_seconds + self._rng.uniform(
                0.0, self.jitter_seconds
            )
        return self.latency_seconds

    async def delay(self) -> None:
        seconds = self.delay_seconds()
        if seconds > 0:
            await asyncio.sleep(seconds)


class ChaosSession(TransportSession):
    """One wrapped session: fault sites + profile delays + partitions.

    ``endpoint`` is set on dialed (client) sessions only; accepted
    sessions skip the partition check — the partition is enforced where
    a real one bites first, at the dialing side's sends.
    """

    def __init__(
        self,
        inner: TransportSession,
        profile: ChaosProfile,
        endpoint: tuple[str, int] | None = None,
    ):
        self.inner = inner
        self.profile = profile
        self.endpoint = endpoint

    async def receive(self) -> str | None:
        spec = fault_point("chaosnet.receive")
        if spec is not None and spec.kind == "drop":
            obs.count("chaosnet.receives_dropped")
            raise TransportError("chaosnet: injected receive failure")
        await self.profile.delay()
        return await self.inner.receive()

    async def send(self, text: str) -> None:
        if self.endpoint is not None and is_severed(*self.endpoint):
            obs.count("chaosnet.sends_partitioned")
            raise TransportError(
                f"chaosnet: partitioned from {self.endpoint[0]}:"
                f"{self.endpoint[1]}"
            )
        spec = fault_point("chaosnet.send")
        if spec is not None and spec.kind == "drop":
            obs.count("chaosnet.sends_dropped")
            raise TransportError("chaosnet: injected send failure")
        await self.profile.delay()
        await self.inner.send(text)

    async def close(self) -> None:
        await self.inner.close()

    def __getattr__(self, name: str):
        # Session extras (e.g. the HTTP feed session's parsed
        # ``resume_seq``) pass through to the wrapped session.
        return getattr(self.inner, name)


class ChaosNetTransport(Transport):
    """Any registered transport, wrapped in deterministic network chaos."""

    def __init__(self, inner: Transport, profile: ChaosProfile | None = None):
        self.inner = inner
        self.profile = profile or ChaosProfile()
        self.name = f"chaos+{inner.name}"

    async def accept(self, reader, writer, mode: str):
        check_mode(mode)
        session = await self.inner.accept(reader, writer, mode)
        if session is None:
            return None
        return ChaosSession(session, self.profile)

    async def connect(self, host: str, port: int, mode: str):
        check_mode(mode)
        if is_severed(host, port):
            obs.count("chaosnet.dials_partitioned")
            raise TransportError(
                f"chaosnet: partitioned from {host}:{port}"
            )
        spec = fault_point("chaosnet.partition")
        if spec is not None and spec.kind == "drop":
            sever(host, port, for_seconds=spec.arg or None)
            raise TransportError(
                f"chaosnet: partition injected at {host}:{port}"
            )
        spec = fault_point("chaosnet.connect")
        if spec is not None and spec.kind == "drop":
            obs.count("chaosnet.dials_dropped")
            raise TransportError("chaosnet: injected dial failure")
        session = await self.inner.connect(host, port, mode)
        return ChaosSession(session, self.profile, endpoint=(host, port))

    def __getattr__(self, name: str):
        # Transport-specific extras (e.g. HttpForwardTransport's
        # set_feed_resume) pass through so chaos+http keeps full fidelity.
        return getattr(self.inner, name)
