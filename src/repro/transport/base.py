"""The transport contract: text messages in, text messages out.

A *transport* abstracts how sentences enter the system and how feed
lines leave it.  Both directions move discrete text messages — one
``!AIVDM`` ingest line or one JSON feed line per message — and every
adapter must preserve message boundaries and payload bytes exactly, so
the service's byte-identity contract (docs/SERVICE.md) survives any
choice of wire protocol.

Two call sites, two roles:

* **Servers** (:class:`~repro.service.ingest.IngestServer`,
  :class:`~repro.service.feed.FeedHub`) accept raw asyncio streams and
  hand them to :meth:`Transport.accept`, which performs whatever
  handshake the protocol needs (none for TCP, the RFC 6455 upgrade for
  WebSocket, the HTTP request exchange for HTTP-forward) and returns a
  :class:`TransportSession` — or ``None`` when the handshake fails,
  which the server counts and closes.
* **Clients** (``examples/live_feed.py``, the gateway's runtime links
  and alert fan-in) call :meth:`Transport.connect`.

``mode`` tells request/response transports which direction the session
will carry: ``"ingest"`` sessions move client→server lines,
``"feed"`` sessions move server→client lines.  Symmetric transports
(TCP, WebSocket) ignore it.
"""

import abc


class TransportError(Exception):
    """The connection failed mid-message or violated the wire protocol.

    Servers treat it like EOF (the peer is gone); clients with a retry
    budget (the HTTP-forward adapter, the gateway links) may reconnect.
    """


#: Session directions — which way application messages flow.
MODES = ("ingest", "feed")


class TransportSession(abc.ABC):
    """One established, framed, bidirectional-capable text channel."""

    @abc.abstractmethod
    async def receive(self) -> str | None:
        """The next text message, or ``None`` once the peer is done.

        EOF and ordinary connection teardown return ``None``; protocol
        violations raise :class:`TransportError`.
        """

    @abc.abstractmethod
    async def send(self, text: str) -> None:
        """Send one text message; raises :class:`TransportError` when
        the peer is gone."""

    @abc.abstractmethod
    async def close(self) -> None:
        """Flush anything buffered and release the connection.  Never
        raises — closing a dead connection is a no-op."""


class Transport(abc.ABC):
    """Factory for sessions of one wire protocol (see module docstring)."""

    #: Registry key (``tcp``, ``websocket``, ``http``).
    name: str = ""

    @abc.abstractmethod
    async def accept(self, reader, writer, mode: str) -> TransportSession | None:
        """Server side: handshake an accepted connection into a session.

        Returns ``None`` when the handshake fails (the caller counts the
        failure and closes ``writer``).
        """

    @abc.abstractmethod
    async def connect(self, host: str, port: int, mode: str) -> TransportSession:
        """Client side: dial and handshake; raises ``OSError`` or
        :class:`TransportError` when the endpoint is unreachable."""


def check_mode(mode: str) -> str:
    """Validate a session direction (shared by every adapter)."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}: {mode!r}")
    return mode
