"""HTTP-forward transport: POST ingest batches, chunked feed streaming.

For environments where raw sockets are awkward (load balancers, strict
egress proxies) the service can speak plain HTTP/1.1:

* **Ingest** — the client buffers lines and ``POST /ingest`` them as a
  newline-joined batch (``Content-Type: text/plain``); the server
  answers ``204`` per batch on a keep-alive connection and yields the
  batch's lines one at a time to the caller, preserving order.  A
  failed POST is retried with the deterministic
  :class:`~repro.resilience.retry.BackoffPolicy` schedule — same
  policy object the MOD guard uses, but slept with ``asyncio.sleep``
  so the event loop never blocks — reconnecting between attempts;
  the batch is only dropped (counted, never silent) once the attempt
  budget is spent.
* **Feed** — the client issues ``GET /feed`` and the server streams
  feed lines forever as chunked transfer encoding, one line per chunk;
  ``curl -N`` makes a perfectly good subscriber.

Both directions preserve message boundaries and bytes exactly, so the
conformance suite (tests/transport) holds this adapter to the same
round-trip contract as TCP and WebSocket.
"""

import asyncio
from urllib.parse import urlsplit

from repro import obs
from repro.resilience.retry import BackoffPolicy
from repro.transport.base import (
    Transport,
    TransportError,
    TransportSession,
    check_mode,
)
from repro.transport.tcp import CLIENT_READ_LIMIT

#: Lines buffered client-side before a batch is flushed.
DEFAULT_BATCH_LINES = 256

#: Largest request body the server will read (1 MiB of sentences).
MAX_BODY_BYTES = 1 << 20


async def _read_head(reader: asyncio.StreamReader) -> tuple[str, dict] | None:
    """One request/response head, or ``None`` at EOF."""
    try:
        raw = await reader.readuntil(b"\r\n\r\n")
    except (
        asyncio.IncompleteReadError,
        asyncio.LimitOverrunError,
        ConnectionResetError,
        OSError,
    ):
        return None
    lines = raw.decode("latin-1").split("\r\n")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return lines[0], headers


class HttpIngestServerSession(TransportSession):
    """Server side of the POST-batch ingest direction."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self._pending: list[str] = []
        self._cursor = 0

    async def receive(self) -> str | None:
        while self._cursor >= len(self._pending):
            if not await self._read_batch():
                return None
        line = self._pending[self._cursor]
        self._cursor += 1
        return line

    async def _read_batch(self) -> bool:
        head = await _read_head(self.reader)
        if head is None:
            return False
        request, headers = head
        method = request.split(" ", 1)[0].upper()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise TransportError(f"request body of {length} bytes too large")
        body = (
            await self.reader.readexactly(length) if length else b""
        )
        if method != "POST":
            await self._respond("405 Method Not Allowed")
            return True
        self._pending = body.decode("utf-8", errors="replace").splitlines()
        self._cursor = 0
        await self._respond("204 No Content")
        return True

    async def _respond(self, status: str) -> None:
        self.writer.write(
            f"HTTP/1.1 {status}\r\nContent-Length: 0\r\n\r\n".encode("ascii")
        )
        try:
            await self.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def send(self, text: str) -> None:
        raise TransportError("ingest sessions are receive-only server-side")

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class HttpIngestClientSession(TransportSession):
    """Client side: buffer lines, POST batches under the retry policy."""

    def __init__(
        self,
        host: str,
        port: int,
        batch_lines: int,
        policy: BackoffPolicy,
    ):
        self.host = host
        self.port = port
        self.batch_lines = batch_lines
        self.policy = policy
        self._buffer: list[str] = []
        self._conn: tuple = ()

    async def _connection(self):
        if not self._conn:
            self._conn = await asyncio.open_connection(
                self.host, self.port, limit=CLIENT_READ_LIMIT
            )
        return self._conn

    def _disconnect(self) -> None:
        if self._conn:
            self._conn[1].close()
            self._conn = ()

    async def _post_once(self, body: bytes) -> None:
        reader, writer = await self._connection()
        writer.write(
            (
                "POST /ingest HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: text/plain; charset=utf-8\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode("ascii")
            + body
        )
        await writer.drain()
        head = await _read_head(reader)
        if head is None:
            raise TransportError("server closed mid-request")
        status = head[0]
        if " 204 " not in status + " " and " 200 " not in status + " ":
            raise TransportError(f"batch refused: {status!r}")

    async def flush(self) -> None:
        """POST everything buffered; retry per the backoff schedule."""
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        body = ("\n".join(batch) + "\n").encode("utf-8")
        for attempt in range(1, self.policy.max_attempts + 1):
            obs.count("transport.http.post_attempts")
            try:
                await self._post_once(body)
                return
            except (TransportError, OSError) as exc:
                self._disconnect()
                if attempt == self.policy.max_attempts:
                    # Budget spent: the batch is lost to the caller but
                    # never silently — counted like every other shed.
                    obs.count("transport.http.batches_dropped")
                    obs.count("transport.http.lines_dropped", len(batch))
                    raise TransportError(
                        f"batch dropped after {attempt} attempts: {exc}"
                    ) from exc
                obs.count("transport.http.post_retries")
                await asyncio.sleep(self.policy.delay_for(attempt))

    async def send(self, text: str) -> None:
        self._buffer.append(text)
        if len(self._buffer) >= self.batch_lines:
            await self.flush()

    async def receive(self) -> str | None:
        raise TransportError("ingest sessions are send-only client-side")

    async def close(self) -> None:
        try:
            await self.flush()
        except TransportError:
            pass
        self._disconnect()


class HttpFeedServerSession(TransportSession):
    """Server side of ``GET /feed``: one chunk per feed line, forever.

    The resume handshake rides the request line — ``GET /feed?resume=<n>``
    sets :attr:`resume_seq`, which the feed hub reads at accept time (the
    chunked response channel is send-only, so HTTP subscribers cannot
    send a ``RESUME`` line the way TCP/WebSocket ones do).
    """

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        #: Last sequence number the client saw, from ``?resume=<n>``
        #: (``None`` = classic unstamped subscription).
        self.resume_seq: int | None = None

    async def start(self) -> bool:
        head = await _read_head(self.reader)
        if head is None or not head[0].upper().startswith("GET"):
            return False
        target = head[0].split(" ")[1] if " " in head[0] else ""
        for param in urlsplit(target).query.split("&"):
            name, sep, value = param.partition("=")
            if sep and name == "resume":
                try:
                    seq = int(value)
                except ValueError:
                    continue
                if seq >= 0:
                    self.resume_seq = seq
        self.writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n"
        )
        try:
            await self.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            return False
        return True

    async def send(self, text: str) -> None:
        data = (text + "\n").encode("utf-8")
        try:
            self.writer.write(
                f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"
            )
            await self.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise TransportError(f"subscriber gone: {exc}") from exc

    async def receive(self) -> str | None:
        raise TransportError("feed sessions are send-only server-side")

    async def close(self) -> None:
        try:
            self.writer.write(b"0\r\n\r\n")
            await self.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class HttpFeedClientSession(TransportSession):
    """Client side: decode the chunked stream back into lines."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self._text = ""
        self._done = False

    async def _read_chunk(self) -> bytes | None:
        try:
            size_line = await self.reader.readline()
            if not size_line:
                return None
            size = int(size_line.strip().split(b";")[0], 16)
            if size == 0:
                await self.reader.readline()  # trailing CRLF
                return None
            data = await self.reader.readexactly(size)
            await self.reader.readexactly(2)  # chunk CRLF
            return data
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            OSError,
            ValueError,
        ):
            return None

    async def receive(self) -> str | None:
        while "\n" not in self._text:
            if self._done:
                return None
            chunk = await self._read_chunk()
            if chunk is None:
                self._done = True
                if self._text:
                    line, self._text = self._text, ""
                    return line
                return None
            self._text += chunk.decode("utf-8", errors="replace")
        line, _, self._text = self._text.partition("\n")
        return line

    async def send(self, text: str) -> None:
        raise TransportError("feed sessions are receive-only client-side")

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class HttpForwardTransport(Transport):
    """POST-batch ingest + chunked-GET feed over plain HTTP/1.1."""

    name = "http"

    def __init__(
        self,
        batch_lines: int = DEFAULT_BATCH_LINES,
        policy: BackoffPolicy | None = None,
    ):
        if batch_lines < 1:
            raise ValueError(f"batch_lines must be >= 1: {batch_lines}")
        self.batch_lines = batch_lines
        self.policy = policy or BackoffPolicy(
            initial_seconds=0.05, multiplier=2.0, max_seconds=1.0, max_attempts=4
        )
        self._feed_resume: int | None = None

    def set_feed_resume(self, last_seq: int | None) -> None:
        """Make the next feed dial ask to resume after ``last_seq``
        (``GET /feed?resume=<n>``); ``None`` restores plain subscription."""
        if last_seq is not None and last_seq < 0:
            raise ValueError(f"last_seq must be >= 0: {last_seq}")
        self._feed_resume = last_seq

    async def accept(self, reader, writer, mode: str):
        check_mode(mode)
        if mode == "ingest":
            return HttpIngestServerSession(reader, writer)
        session = HttpFeedServerSession(reader, writer)
        if not await session.start():
            return None
        return session

    async def connect(self, host: str, port: int, mode: str):
        check_mode(mode)
        if mode == "ingest":
            return HttpIngestClientSession(
                host, port, self.batch_lines, self.policy
            )
        reader, writer = await asyncio.open_connection(
            host, port, limit=CLIENT_READ_LIMIT
        )
        path = "/feed"
        if self._feed_resume is not None:
            path = f"/feed?resume={self._feed_resume}"
        writer.write(
            (
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Accept: application/x-ndjson\r\n\r\n"
            ).encode("ascii")
        )
        await writer.drain()
        head = await _read_head(reader)
        if head is None or " 200 " not in head[0] + " ":
            raise TransportError(
                f"feed subscription refused: {head[0] if head else 'EOF'!r}"
            )
        return HttpFeedClientSession(reader, writer)
