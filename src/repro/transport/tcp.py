"""The default transport: newline-delimited text over a raw TCP stream.

This is exactly the wire format the service spoke before the transport
layer existed — one message per ``\\n``-terminated line — so the default
configuration stays byte-compatible with every existing client, test,
and the ``nc``-style ad-hoc tooling the NMEA world runs on.
"""

import asyncio

from repro.transport.base import (
    Transport,
    TransportError,
    TransportSession,
    check_mode,
)

#: StreamReader limit for sessions we dial ourselves: slide feed lines
#: carry every fresh critical point and can exceed the 64 KiB default.
CLIENT_READ_LIMIT = 1 << 24


class TcpSession(TransportSession):
    """One newline-framed text stream."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    async def receive(self) -> str | None:
        try:
            raw = await self.reader.readline()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return None
        except ValueError as exc:
            # A line longer than the stream's read limit; the server
            # decides the limit (asyncio.start_server(limit=...)).
            raise TransportError(f"line exceeds read limit: {exc}") from exc
        if not raw:
            return None
        return raw.decode("utf-8", errors="replace").rstrip("\r\n")

    async def send(self, text: str) -> None:
        self.writer.write((text + "\n").encode("utf-8"))
        await self.writer.drain()

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class TcpTransport(Transport):
    """Newline-delimited text over TCP (both directions, no handshake)."""

    name = "tcp"

    async def accept(self, reader, writer, mode: str) -> TransportSession:
        check_mode(mode)
        return TcpSession(reader, writer)

    async def connect(self, host: str, port: int, mode: str) -> TransportSession:
        check_mode(mode)
        reader, writer = await asyncio.open_connection(
            host, port, limit=CLIENT_READ_LIMIT
        )
        return TcpSession(reader, writer)
