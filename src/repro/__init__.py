"""Event Recognition for Maritime Surveillance — EDBT 2015 reproduction.

A faithful, self-contained Python implementation of the maritime
surveillance system of Patroumpas, Artikis, Katzouris, Vodas, Theodoridis
and Pelekis (EDBT 2015): online trajectory detection and compression over
streaming AIS positions, plus complex event recognition with a from-scratch
Event Calculus engine (RTEC), backed by a Moving Objects Database and a
synthetic Aegean fleet simulator standing in for the proprietary dataset.

Quickstart::

    from repro import (
        FleetSimulator, SurveillanceSystem, SystemConfig, WindowSpec,
        StreamReplayer, TimedArrival, build_aegean_world,
    )

    world = build_aegean_world()
    simulator = FleetSimulator(world, seed=7, duration_seconds=4 * 3600)
    fleet = simulator.build_mixed_fleet(50)
    specs = {vessel.mmsi: vessel.spec for vessel in fleet}

    system = SurveillanceSystem(
        world, specs, SystemConfig(window=WindowSpec.of_hours(2, 0.5))
    )
    stream = simulator.positions(fleet)
    replayer = StreamReplayer(
        [TimedArrival(p.timestamp, p) for p in stream],
        slide_seconds=1800,
    )
    for query_time, batch in replayer.batches():
        report = system.process_slide(batch, query_time)
        for alert in report.alerts:
            print(alert)
    system.finalize()
"""

from repro import obs
from repro.ais import DataScanner, DelayModel, PositionalTuple, StreamReplayer
from repro.ais.stream import TimedArrival
from repro.maritime import (
    Alert,
    MaritimeConfig,
    MaritimeRecognizer,
    PartitionedRecognizer,
)
from repro.mod import MovingObjectDatabase, compute_od_matrix, compute_trip_statistics
from repro.obs import MetricsRegistry
from repro.pipeline import SlideReport, SurveillanceSystem, SystemConfig
from repro.reconstruct import StagingArea, TripSegmenter, fleet_rmse, trajectory_rmse
from repro.rtec import RTEC
from repro.runtime import ParallelSurveillanceSystem
from repro.simulator import FleetSimulator, build_aegean_world
from repro.tracking import (
    Compressor,
    CriticalPoint,
    MobilityTracker,
    MovementEvent,
    MovementEventType,
    TrackingParameters,
    TrajectoryExporter,
    WindowSpec,
)

__version__ = "1.0.0"

__all__ = [
    "Alert",
    "Compressor",
    "CriticalPoint",
    "DataScanner",
    "DelayModel",
    "FleetSimulator",
    "MaritimeConfig",
    "MaritimeRecognizer",
    "MetricsRegistry",
    "MobilityTracker",
    "MovementEvent",
    "MovementEventType",
    "MovingObjectDatabase",
    "ParallelSurveillanceSystem",
    "PartitionedRecognizer",
    "PositionalTuple",
    "RTEC",
    "SlideReport",
    "StagingArea",
    "StreamReplayer",
    "SurveillanceSystem",
    "SystemConfig",
    "TimedArrival",
    "TrackingParameters",
    "TrajectoryExporter",
    "TripSegmenter",
    "WindowSpec",
    "build_aegean_world",
    "compute_od_matrix",
    "compute_trip_statistics",
    "fleet_rmse",
    "obs",
    "trajectory_rmse",
    "__version__",
]
