"""Worker lifecycle: spawning, crash detection, checkpoint-based restart.

The :class:`Supervisor` owns one OS process per shard, each driven in
lockstep over bounded queues.  It implements exactly-once command
application on top of at-least-once delivery:

* every command gets a per-worker monotonically increasing sequence number
  and is appended to a replay *history* before being sent;
* a worker acknowledges each checkpoint it writes; the supervisor then
  trims the history up to the checkpointed cursor;
* when a worker dies (detected while awaiting its reply), the supervisor
  spawns a replacement — which restores the latest checkpoint on startup —
  and replays the retained history.  The worker ignores commands at or
  below its restored cursor; the supervisor discards replies for commands
  it already delivered.  Net effect: no lost and no duplicated outputs.

Backpressure is real, not simulated: command queues are bounded, a full
queue blocks the producer, and every stall is counted on the metrics
registry (``runtime.backpressure_stalls``) along with sampled queue depths
and restarts.
"""

import multiprocessing as mp
import queue as queue_module
import time
from dataclasses import dataclass, field

from repro import obs
from repro.resilience.faults import fault_point
from repro.resilience.retry import BackoffPolicy
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.worker import worker_main


class WorkerCrash(RuntimeError):
    """A worker process died before answering."""


class WorkerUnrecoverable(RuntimeError):
    """A worker kept dying past the restart budget."""


@dataclass
class _WorkerHandle:
    """Supervisor-side bookkeeping for one shard worker."""

    shard_id: int
    process: mp.Process | None = None
    command_queue: object = None
    reply_queue: object = None
    next_seq: int = 0
    #: Last sequence number whose reply was handed to the caller.
    delivered: int = -1
    #: Commands since the last acknowledged checkpoint, for replay.
    history: list = field(default_factory=list)
    restarts: int = 0


class Supervisor:
    """Spawn, drive, and resurrect the shard workers."""

    def __init__(
        self,
        worker_args: tuple,
        shards: int,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 4,
        queue_capacity: int = 16,
        max_restarts: int = 5,
        reply_timeout_seconds: float = 120.0,
        start_method: str | None = None,
        restart_backoff: BackoffPolicy | None = None,
        sleep=time.sleep,
    ):
        self._worker_args = worker_args
        self.shards = shards
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.queue_capacity = queue_capacity
        self.max_restarts = max_restarts
        self.reply_timeout_seconds = reply_timeout_seconds
        # Respawn delay grows with consecutive restarts of the same shard:
        # a worker that dies instantly every time must not busy-loop the
        # supervisor.  Deterministic (no jitter) like every retry schedule
        # in this tree; `sleep` is injectable so tests run at full speed.
        self.restart_backoff = restart_backoff or BackoffPolicy(
            initial_seconds=0.02, multiplier=2.0, max_seconds=1.0,
            max_attempts=max_restarts + 1,
        )
        self._sleep = sleep
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._handles = [_WorkerHandle(i) for i in range(shards)]
        self._started = False
        if checkpoint_dir is not None:
            # A fresh run must not resurrect a previous run's state.
            CheckpointStore(checkpoint_dir).clear()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Spawn every worker process."""
        if self._started:
            return
        for handle in self._handles:
            self._spawn(handle)
        self._started = True

    def stop(self) -> None:
        """Ask workers to exit; terminate stragglers."""
        if not self._started:
            return
        for handle in self._handles:
            process = handle.process
            if process is None or not process.is_alive():
                continue
            try:
                handle.command_queue.put(("stop", handle.next_seq), timeout=1.0)
            except (queue_module.Full, ValueError):
                pass
        for handle in self._handles:
            process = handle.process
            if process is None:
                continue
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        self._started = False

    def restart_count(self) -> int:
        """Total restarts across all workers so far."""
        return sum(handle.restarts for handle in self._handles)

    def terminate_workers(self) -> int:
        """Hard-kill every live worker (the slide watchdog's lever).

        A wedged worker holds the whole lockstep slide hostage; killing it
        converts the silent stall into a :class:`WorkerCrash` on the next
        reply wait, which the ordinary checkpoint-recovery path already
        handles.  Returns the number of processes killed.
        """
        killed = 0
        for handle in self._handles:
            process = handle.process
            if process is not None and process.is_alive():
                process.kill()
                killed += 1
        if killed:
            obs.count("runtime.watchdog_kills", killed)
        return killed

    # -- request/reply ----------------------------------------------------

    def request_all(self, kind: str, payloads: list[tuple]) -> list[dict]:
        """Issue one command per worker concurrently; gather all replies.

        ``payloads[i]`` is the argument tuple appended to worker *i*'s
        command; replies come back indexed by shard.  Sends are pipelined
        (all commands go out before any reply is awaited) so workers
        genuinely run in parallel.
        """
        spec = fault_point("runtime.worker")
        if spec is not None and spec.kind == "kill":
            shard_id = int(spec.arg) % self.shards
            handle = self._handles[shard_id]
            if handle.process is not None and handle.process.is_alive():
                handle.process.kill()
        seqs = [
            self._send(handle, (kind, *payloads[handle.shard_id]))
            for handle in self._handles
        ]
        return [
            self._collect(handle, seq)
            for handle, seq in zip(self._handles, seqs)
        ]

    def request_one(self, shard_id: int, kind: str, *payload) -> dict:
        """Issue a single command to one worker and await its reply."""
        handle = self._handles[shard_id]
        seq = self._send(handle, (kind, *payload))
        return self._collect(handle, seq)

    def inject_failure(self, shard_id: int) -> None:
        """Failure-injection hook: the worker hard-exits (``os._exit``)
        while consuming its next ``track`` command — mid-slide, with the
        command neither applied nor acknowledged."""
        handle = self._handles[shard_id]
        seq = handle.next_seq
        handle.next_seq += 1
        # Deliberately NOT recorded in history: a replayed poison pill
        # would kill the replacement worker too.
        self._put(handle, ("poison", seq))

    # -- internals --------------------------------------------------------

    def _spawn(self, handle: _WorkerHandle) -> None:
        """(Re)create one worker with fresh queues.

        Fresh queues matter on restart: the dead worker's command queue
        may still hold commands it never consumed, which must not leak
        into the replacement's replay sequence.
        """
        handle.command_queue = self._ctx.Queue(maxsize=self.queue_capacity)
        handle.reply_queue = self._ctx.Queue(maxsize=self.queue_capacity)
        handle.process = self._ctx.Process(
            target=worker_main,
            args=(
                handle.shard_id,
                self.shards,
                *self._worker_args,
                self.checkpoint_dir,
                self.checkpoint_every,
                handle.command_queue,
                handle.reply_queue,
            ),
            daemon=True,
            name=f"repro-shard-{handle.shard_id}",
        )
        handle.process.start()

    def _send(self, handle: _WorkerHandle, command: tuple) -> int:
        """Assign a sequence number, record for replay, enqueue."""
        seq = handle.next_seq
        handle.next_seq += 1
        command = (command[0], seq, *command[1:])
        handle.history.append(command)
        self._put(handle, command)
        return seq

    def _put(self, handle: _WorkerHandle, command: tuple) -> None:
        """Bounded enqueue with stall accounting and liveness checks."""
        registry = obs.get_registry()
        registry.set_gauge(
            f"runtime.shard.{handle.shard_id}.queue_depth",
            _safe_qsize(handle.command_queue),
        )
        try:
            handle.command_queue.put_nowait(command)
            return
        except queue_module.Full:
            registry.inc("runtime.backpressure_stalls")
            registry.inc(f"runtime.shard.{handle.shard_id}.backpressure_stalls")
        deadline = time.monotonic() + self.reply_timeout_seconds
        while True:
            try:
                handle.command_queue.put(command, timeout=0.2)
                return
            except queue_module.Full:
                if not handle.process.is_alive():
                    # The consumer is gone; recovery re-sends via fresh
                    # queues, so the undelivered command is not lost.
                    return
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"shard {handle.shard_id} command queue stuck full"
                    ) from None

    def _collect(self, handle: _WorkerHandle, want_seq: int) -> dict:
        """Await the reply for ``want_seq``, recovering from crashes."""
        try:
            payload = self._await_reply(handle, want_seq)
        except WorkerCrash:
            payload = self._recover(handle, want_seq)
        handle.delivered = max(handle.delivered, want_seq)
        return payload

    def _await_reply(self, handle: _WorkerHandle, want_seq: int) -> dict:
        deadline = time.monotonic() + self.reply_timeout_seconds
        while True:
            try:
                shard_id, seq, payload = handle.reply_queue.get(timeout=0.2)
            except queue_module.Empty:
                if not handle.process.is_alive():
                    raise WorkerCrash(
                        f"shard {handle.shard_id} died "
                        f"(exit code {handle.process.exitcode})"
                    ) from None
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"shard {handle.shard_id} did not answer seq {want_seq}"
                    ) from None
                continue
            if "checkpoint_cursor" in payload:
                self._trim_history(handle, payload["checkpoint_cursor"])
                continue
            if seq == want_seq and not payload.get("ignored"):
                return payload
            # Duplicate of an already-delivered command, or a reply to a
            # fire-and-forget command (poison): discard.

    def _recover(self, handle: _WorkerHandle, want_seq: int) -> dict:
        """Respawn a dead worker and replay its history; exactly-once.

        The replacement restores the latest checkpoint on startup and
        ignores replayed commands its checkpoint already covers; replies
        for commands delivered before the crash are discarded here.  The
        reply for ``want_seq`` — the command in flight when the worker
        died — is captured and returned.
        """
        registry = obs.get_registry()
        while True:
            if handle.restarts >= self.max_restarts:
                raise WorkerUnrecoverable(
                    f"shard {handle.shard_id} exceeded "
                    f"{self.max_restarts} restarts"
                )
            handle.restarts += 1
            registry.inc("runtime.restarts")
            registry.inc(f"runtime.shard.{handle.shard_id}.restarts")
            delay = self.restart_backoff.delay_for(
                min(handle.restarts, self.restart_backoff.max_attempts)
            )
            if delay:
                obs.observe("runtime.restart_backoff_seconds", delay)
                self._sleep(delay)
            if handle.process is not None:
                handle.process.join(timeout=2.0)
            self._spawn(handle)
            try:
                return self._replay(handle, want_seq)
            except WorkerCrash:
                continue

    def _replay(self, handle: _WorkerHandle, want_seq: int) -> dict:
        wanted: dict | None = None
        for command in list(handle.history):
            self._put(handle, command)
            payload = self._await_reply_any(handle, command[1])
            if command[1] == want_seq and not payload.get("ignored"):
                wanted = payload
        if wanted is None:
            raise WorkerCrash(
                f"shard {handle.shard_id} replay never answered seq {want_seq}"
            )
        return wanted

    def _await_reply_any(self, handle: _WorkerHandle, seq: int) -> dict:
        """Like :meth:`_await_reply` but accepts ``ignored`` replies."""
        deadline = time.monotonic() + self.reply_timeout_seconds
        while True:
            try:
                _, got_seq, payload = handle.reply_queue.get(timeout=0.2)
            except queue_module.Empty:
                if not handle.process.is_alive():
                    raise WorkerCrash(
                        f"shard {handle.shard_id} died during replay"
                    ) from None
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"shard {handle.shard_id} replay stuck at seq {seq}"
                    ) from None
                continue
            if "checkpoint_cursor" in payload:
                self._trim_history(handle, payload["checkpoint_cursor"])
                continue
            if got_seq == seq:
                return payload

    def _trim_history(self, handle: _WorkerHandle, cursor: int) -> None:
        handle.history = [
            command for command in handle.history if command[1] > cursor
        ]


def _safe_qsize(q) -> int:
    try:
        return q.qsize()
    except (NotImplementedError, OSError):
        return 0
