"""The process-parallel surveillance system (Section 5.2, for real).

:class:`ParallelSurveillanceSystem` is a drop-in replacement for
:class:`~repro.pipeline.system.SurveillanceSystem`: the same
``process_slide`` / ``finalize`` surface, the same
:class:`~repro.pipeline.metrics.SlideReport`, the same metrics names
feeding ``--metrics-json`` — but tracking/compression and CE recognition
execute on *worker processes* supervised with checkpoint/restart.

Per slide:

1. the :class:`~repro.runtime.shard.ShardRouter` splits the positional
   batch by MMSI hash and every worker tracks + compresses its sub-batch
   concurrently;
2. the per-shard movement events are spliced back into exact
   single-process order (:mod:`repro.runtime.merge`) and the expired
   critical points go to the parent-held Moving Object Database;
3. the merged critical events fan out to the workers' longitude-band
   recognition engines; the bands' alerts merge into the single-engine
   report order.

Determinism is a hard invariant, verified by
``tests/runtime/test_determinism.py``: for any shard count the alerts and
critical-point streams are identical to the single-process pipeline's.

The MOD, trip reconstruction and the archive stay in the parent — the
paper keeps the database centralized while distributing recognition, and
SQLite handles are not shareable across processes anyway.
"""

import shutil
import tempfile

from repro import obs
from repro.ais.stream import PositionalTuple
from repro.maritime.pairwise.monitor import PairwiseMonitor
from repro.maritime.partition import PartitionStepTiming
from repro.maritime.recognizer import Alert
from repro.mod.database import MovingObjectDatabase
from repro.pipeline.config import SystemConfig
from repro.pipeline.metrics import PhaseTimings, SlideReport
from repro.runtime.merge import (
    merge_alerts,
    merge_critical_points,
    merge_finalize_events,
    merge_tagged_events,
)
from repro.runtime.shard import ShardRouter
from repro.runtime.supervisor import Supervisor
from repro.simulator.vessel import VesselSpec
from repro.simulator.world import WorldModel
from repro.tracking.compressor import CompressionStatistics
from repro.tracking.exporter import TrajectoryExporter
from repro.tracking.types import CriticalPoint


class _AggregateCompressor:
    """Fleet-wide compression accounting, summed over the shards.

    Quacks like the ``compressor`` attribute of the single-process system
    as far as reporting goes (``.statistics``), so
    :func:`repro.obs.report.build_pipeline_report` and the CLI summary
    work unchanged against either system.
    """

    def __init__(self) -> None:
        self.statistics = CompressionStatistics()


class ParallelSurveillanceSystem:
    """Sharded, supervised, checkpoint-restartable surveillance pipeline.

    Parameters
    ----------
    world, specs, config:
        Exactly as for :class:`~repro.pipeline.system.SurveillanceSystem`.
    shards:
        Worker process count; 1 is valid (useful as the IPC-cost baseline
        of the shard-sweep benchmark).
    checkpoint_dir:
        Where shard checkpoints live.  Defaults to a private temporary
        directory removed on :meth:`close`.
    checkpoint_every:
        Checkpoint cadence in slides; lower means cheaper recovery replay
        but more pickling per slide.
    """

    def __init__(
        self,
        world: WorldModel,
        specs: dict[int, VesselSpec],
        config: SystemConfig | None = None,
        shards: int = 2,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 4,
        queue_capacity: int = 16,
        start_method: str | None = None,
    ):
        self.world = world
        self.config = config or SystemConfig()
        self.shards = shards
        self.router = ShardRouter(
            world,
            shards,
            close_margin_meters=self.config.maritime.close_threshold_meters,
        )
        self.database = MovingObjectDatabase(
            world.ports, path=self.config.database_path
        )
        self.database.load_vessels(specs.values())
        self.exporter = TrajectoryExporter()
        self.timings = PhaseTimings()
        self.compressor = _AggregateCompressor()
        self._owns_checkpoint_dir = checkpoint_dir is None
        self.checkpoint_dir = checkpoint_dir or tempfile.mkdtemp(
            prefix="repro-runtime-"
        )
        self.supervisor = Supervisor(
            worker_args=(world, specs, self.config),
            shards=shards,
            checkpoint_dir=self.checkpoint_dir,
            checkpoint_every=checkpoint_every,
            queue_capacity=queue_capacity,
            start_method=start_method,
        )
        self.supervisor.start()
        # The pairwise monitor runs once, in the parent, over the merged
        # (single-process-identical) event stream: the produced pair
        # facts are the same at any shard count, and the router sends
        # each one to its episode's anchor band (see docs/SPATIAL.md).
        self.monitor = (
            PairwiseMonitor(world, self.config.pairwise_config)
            if self.config.pairwise
            else None
        )
        self.last_partition_timing: PartitionStepTiming | None = None
        self._last_query_time: int | None = None
        self._last_alerts: list[Alert] = []
        self._vessels_tracked = 0
        self._closed = False

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------

    def process_slide(
        self, batch: list[PositionalTuple], query_time: int
    ) -> SlideReport:
        """Process one slide's arrivals across the shards."""
        slide_timings: dict[str, float] = {}
        registry = obs.get_registry()

        with obs.timed_span("pipeline.slide"):
            with obs.timed_span("tracking") as phase:
                routed = self.router.route_positions(batch)
                replies = self.supervisor.request_all(
                    "track",
                    [(query_time, routed[i]) for i in range(self.shards)],
                )
                events = merge_tagged_events([r["events"] for r in replies])
                fresh = merge_critical_points([r["fresh"] for r in replies])
                expired = merge_critical_points([r["expired"] for r in replies])
            slide_timings["tracking"] = phase.seconds
            self._vessels_tracked = sum(r["vessels"] for r in replies)
            for shard_id, reply in enumerate(replies):
                registry.observe(
                    f"runtime.shard.{shard_id}.tracking", reply["seconds"]
                )

            with obs.timed_span("staging") as phase:
                if expired:
                    self.database.stage_points(expired)
            slide_timings["staging"] = phase.seconds

            slide_timings["reconstruction"] = 0.0
            slide_timings["loading"] = 0.0
            if self.config.reconstruct_each_slide and expired:
                self.database.reconstruct(slide_timings)

            recognized = 0
            alerts: tuple = ()
            if self.config.enable_recognition:
                with obs.timed_span("recognition") as phase:
                    payloads = self._recognition_payloads(events, query_time)
                    replies = self.supervisor.request_all(
                        "recognize", payloads
                    )
                slide_timings["recognition"] = phase.seconds
                recognized = sum(r["recognized"] for r in replies)
                merged = merge_alerts([r["alerts"] for r in replies])
                self._last_alerts = merged
                alerts = tuple(merged)
                self.last_partition_timing = PartitionStepTiming(
                    per_partition_seconds=[r["step_seconds"] for r in replies],
                    measured_parallel_seconds=phase.seconds,
                )
                for shard_id, reply in enumerate(replies):
                    registry.observe(
                        f"runtime.shard.{shard_id}.recognition",
                        reply["seconds"],
                    )

        self.compressor.statistics.raw_positions += len(batch)
        self.compressor.statistics.critical_points += len(fresh)
        self.timings.record(slide_timings)
        self._record_slide_metrics(
            slide_timings, len(batch), len(events), len(fresh), len(expired),
            recognized,
        )
        self._last_query_time = query_time
        return SlideReport(
            query_time=query_time,
            raw_positions=len(batch),
            movement_events=len(events),
            fresh_critical_points=len(fresh),
            expired_critical_points=len(expired),
            recognized_complex_events=recognized,
            alerts=alerts,
            timings=slide_timings,
            fresh_points=tuple(fresh),
        )

    def finalize(self) -> SlideReport | None:
        """Flush open long-lasting events and archive the whole synopsis."""
        if self._last_query_time is None:
            return None
        query_time = self._last_query_time + self.config.window.slide_seconds
        replies = self.supervisor.request_all(
            "finalize_track", [(query_time,) for _ in range(self.shards)]
        )
        events = merge_finalize_events([r["events"] for r in replies])
        fresh = merge_critical_points([r["fresh"] for r in replies])
        expired = merge_critical_points([r["expired"] for r in replies])
        remaining = merge_critical_points([r["remaining"] for r in replies])
        self.database.stage_points(expired + remaining)
        self.database.reconstruct()
        recognized = 0
        alerts: tuple = ()
        if self.config.enable_recognition:
            payloads = self._recognition_payloads(events, query_time)
            replies = self.supervisor.request_all("recognize", payloads)
            recognized = sum(r["recognized"] for r in replies)
            merged = merge_alerts([r["alerts"] for r in replies])
            self._last_alerts = merged
            alerts = tuple(merged)
        slide_timings = {"tracking": 0.0, "staging": 0.0, "recognition": 0.0}
        return SlideReport(
            query_time=query_time,
            raw_positions=0,
            movement_events=len(events),
            fresh_critical_points=len(fresh),
            expired_critical_points=len(expired) + len(remaining),
            recognized_complex_events=recognized,
            alerts=alerts,
            timings=slide_timings,
            fresh_points=tuple(fresh),
        )

    def _recognition_payloads(self, events, query_time: int) -> list[tuple]:
        """Per-shard ``recognize`` arguments, with pairwise routing.

        In pairwise mode the monitor's facts are routed to their anchor
        bands and every pair member's movement events are co-routed to
        those bands, so each band engine sees everything its pair rules
        can join on.
        """
        if self.monitor is None:
            routed_events = self.router.route_events(events)
            return [
                (query_time, routed_events[i]) for i in range(self.shards)
            ]
        facts = self.monitor.observe(events, query_time)
        routed_facts = self.router.route_pair_facts(facts)
        routed_events = self.router.route_events(
            events, extra_bands_by_mmsi=self.router.pair_fact_bands(facts)
        )
        return [
            (query_time, routed_events[i], routed_facts[i])
            for i in range(self.shards)
        ]

    def _record_slide_metrics(
        self,
        slide_timings: dict[str, float],
        raw_positions: int,
        movement_events: int,
        fresh: int,
        expired: int,
        recognized: int,
    ) -> None:
        """Mirror the single-process pipeline's per-slide metrics, plus
        the runtime-specific instruments."""
        registry = obs.get_registry()
        if not registry.enabled:
            return
        for phase, seconds in sorted(slide_timings.items()):
            registry.observe(f"pipeline.phase.{phase}", seconds)
        registry.inc("pipeline.slides")
        registry.inc("pipeline.raw_positions", raw_positions)
        registry.inc("pipeline.movement_events", movement_events)
        registry.inc("pipeline.fresh_critical_points", fresh)
        registry.inc("pipeline.expired_critical_points", expired)
        registry.inc("pipeline.recognized_complex_events", recognized)
        registry.set_gauge(
            "pipeline.compression_ratio",
            self.compressor.statistics.compression_ratio,
        )
        registry.set_gauge("pipeline.vessels_tracked", self._vessels_tracked)
        tracking_seconds = slide_timings.get("tracking", 0.0)
        if tracking_seconds > 0:
            registry.set_gauge(
                "tracking.positions_per_second",
                raw_positions / tracking_seconds,
            )
        # Prometheus info pattern: the kernel every shard worker runs.
        registry.set_gauge(
            f"tracking.backend_info.{self.config.tracking_backend}", 1.0
        )
        registry.set_gauge("runtime.shards", self.shards)
        registry.set_gauge("runtime.restarts_total", self.restart_count())

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------

    def current_synopsis(self, mmsi: int | None = None) -> list[CriticalPoint]:
        """Critical points currently in the shards' sliding windows."""
        replies = self.supervisor.request_all(
            "synopsis", [(mmsi,) for _ in range(self.shards)]
        )
        return merge_critical_points([r["points"] for r in replies])

    def export_kml(self) -> str:
        """KML rendering of the current window synopsis."""
        return self.exporter.to_kml(self.current_synopsis())

    def export_geojson(self) -> dict:
        """GeoJSON rendering of the current window synopsis."""
        return self.exporter.to_geojson(self.current_synopsis())

    def alerts(self) -> list[Alert]:
        """Alerts from the most recent recognition step, fleet-wide."""
        return list(self._last_alerts)

    def restart_count(self) -> int:
        """Worker restarts performed by the supervisor so far."""
        return self.supervisor.restart_count()

    def vessel_count(self) -> int:
        """Vessels currently tracked across all shards."""
        return self._vessels_tracked

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop the workers and release checkpoint storage."""
        if self._closed:
            return
        self._closed = True
        self.supervisor.stop()
        if self._owns_checkpoint_dir:
            shutil.rmtree(self.checkpoint_dir, ignore_errors=True)

    def __enter__(self) -> "ParallelSurveillanceSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
