"""repro.runtime — sharded, process-parallel execution with supervision.

The paper parallelizes CE recognition by splitting the surveillance area
across processors (Section 5.2); :mod:`repro.maritime.partition` only
*simulates* that split.  This package executes it: real worker processes,
each owning a MMSI-hashed tracking/compression shard and a longitude-band
recognition engine, driven over bounded queues with backpressure, watched
by a supervisor that restarts crashed workers from atomic checkpoints and
replays the delta — with outputs guaranteed identical to the
single-process pipeline for any shard count.

Entry point: :class:`ParallelSurveillanceSystem` (same surface as
:class:`~repro.pipeline.system.SurveillanceSystem`); see docs/RUNTIME.md
for topology, queue semantics, checkpoint format and crash-recovery
guarantees.
"""

from repro.runtime.checkpoint import CheckpointStore, ShardCheckpoint
from repro.runtime.merge import (
    merge_alerts,
    merge_critical_points,
    merge_finalize_events,
    merge_tagged_events,
)
from repro.runtime.shard import ShardRouter, shard_for_mmsi
from repro.runtime.supervisor import (
    Supervisor,
    WorkerCrash,
    WorkerUnrecoverable,
)
from repro.runtime.system import ParallelSurveillanceSystem
from repro.runtime.worker import ShardWorker

__all__ = [
    "CheckpointStore",
    "ParallelSurveillanceSystem",
    "ShardCheckpoint",
    "ShardRouter",
    "ShardWorker",
    "Supervisor",
    "WorkerCrash",
    "WorkerUnrecoverable",
    "merge_alerts",
    "merge_critical_points",
    "merge_finalize_events",
    "merge_tagged_events",
    "shard_for_mmsi",
]
