"""Deterministic routing of streams onto shards (Section 5.2 topology).

The runtime partitions work along two independent axes:

* **Tracking/compression** shards by *vessel*: the Mobility Tracker and the
  Compressor keep strictly per-MMSI state, so hashing the MMSI spreads the
  fleet across workers while preserving each vessel's arrival order.  The
  hash is an explicit multiplicative mix — never Python's salted ``hash`` —
  so routing is identical across processes and interpreter runs.
* **Recognition** shards by *longitude band*, reusing
  :func:`repro.maritime.partition.partition_world`: each band owns the
  areas whose centroid falls inside it, and receives every movement event
  that could possibly match one of those areas.  "The input MEs are
  forwarded to the appropriate processor (according to vessel location)."

Band routing is *envelope-based*: an event is forwarded to a band when its
longitude falls inside the band's acceptance envelope — the union of the
band's area bounding boxes expanded by the ``close`` threshold (areas may
well spill over the band edge that contains their centroid).  This makes
band-parallel recognition exact, not approximate: every rule in the
maritime event description joins the triggering event's coordinates against
the band's own areas, so a band that sees all events within its envelope
derives precisely the complex events a single engine would derive for its
areas, and the union over (disjoint) bands equals the single-engine result.
Events outside every envelope cannot match any area; they are routed to
the raw band containing their longitude so per-band input counts stay
meaningful.
"""

from repro.ais.stream import PositionalTuple
from repro.maritime.pairwise.monitor import PairFact
from repro.maritime.partition import partition_world
from repro.simulator.world import WorldModel
from repro.tracking.types import MovementEvent

#: Knuth's multiplicative constant (2^32 / phi), for MMSI mixing.
_MIX = 2654435761
_MASK = 0xFFFFFFFF


def shard_for_mmsi(mmsi: int, shards: int) -> int:
    """The tracking shard owning a vessel; deterministic across processes."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return ((mmsi * _MIX) & _MASK) % shards


class ShardRouter:
    """Route positional tuples to tracking shards and MEs to bands.

    Parameters
    ----------
    world:
        The monitored region; its longitude span defines the bands.
    shards:
        Number of workers; tracking shard count and band count coincide
        (worker *i* runs tracking shard *i* and recognition band *i*).
    close_margin_meters:
        How far outside an area's bounding box an event may still satisfy
        the ``close`` predicate; the acceptance envelopes expand by this.
    """

    def __init__(
        self,
        world: WorldModel,
        shards: int,
        close_margin_meters: float = 0.0,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.world = world
        self.shards = shards
        self.bands = partition_world(world, shards)
        #: Per-band acceptance envelopes as (min_lon, max_lon) intervals.
        self.envelopes: list[list[tuple[float, float]]] = []
        for band in self.bands:
            intervals = []
            for area in band.areas:
                bbox = area.polygon.bbox
                if close_margin_meters > 0.0:
                    bbox = bbox.expanded(close_margin_meters)
                intervals.append((bbox.min_lon, bbox.max_lon))
            self.envelopes.append(_merge_intervals(intervals))

    # -- tracking axis ----------------------------------------------------

    def route_positions(
        self, batch: list[PositionalTuple]
    ) -> list[list[tuple[int, PositionalTuple]]]:
        """Split a slide batch into per-shard sub-batches.

        Each position keeps its global index within the batch, so the
        merge stage can reconstruct the exact single-process event order
        (see :mod:`repro.runtime.merge`).  Per-vessel arrival order is
        preserved because the split is a stable filter.
        """
        routed: list[list[tuple[int, PositionalTuple]]] = [
            [] for _ in range(self.shards)
        ]
        for index, position in enumerate(batch):
            routed[shard_for_mmsi(position.mmsi, self.shards)].append(
                (index, position)
            )
        return routed

    # -- recognition axis -------------------------------------------------

    def bands_for_longitude(self, lon: float) -> list[int]:
        """Every band whose acceptance envelope contains ``lon``."""
        matched = [
            index
            for index, intervals in enumerate(self.envelopes)
            if any(lo <= lon <= hi for lo, hi in intervals)
        ]
        if matched:
            return matched
        return [self._raw_band(lon)]

    def route_events(
        self,
        events: list[MovementEvent],
        extra_bands_by_mmsi: dict[int, tuple[int, ...]] | None = None,
    ) -> list[list[MovementEvent]]:
        """Fan movement events out to the band workers that may need them.

        An event near a band boundary is forwarded to every band whose
        envelope covers it (duplicates are harmless: a band only derives
        CEs for its own areas, and bands hold disjoint area sets).

        ``extra_bands_by_mmsi`` adds pairwise co-routing: a vessel that is
        a member of a pair fact is additionally forwarded to the band
        owning that fact's episode anchor (see :meth:`pair_fact_bands`),
        so both members' critical points land in the same recognition
        partition.  The extra copies cannot perturb area-CE output — an
        event outside a band's envelope cannot satisfy any of that band's
        ``close`` predicates by construction.
        """
        routed: list[list[MovementEvent]] = [[] for _ in range(self.shards)]
        for event in events:
            bands = self.bands_for_longitude(event.lon)
            if extra_bands_by_mmsi:
                for band in extra_bands_by_mmsi.get(event.mmsi, ()):
                    if band not in bands:
                        bands = [*bands, band]
            for band in bands:
                routed[band].append(event)
        return routed

    # -- pairwise axis ----------------------------------------------------

    def route_pair_facts(
        self, facts: list[PairFact]
    ) -> list[list[PairFact]]:
        """Send each pair fact to exactly one band: its episode anchor's.

        The anchor longitude is fixed when an episode opens and repeated
        on every fact of the episode, so initiation and termination of a
        pair's fluents always reach the same band engine — the invariant
        that keeps sharded pairwise output byte-identical.
        """
        routed: list[list[PairFact]] = [[] for _ in range(self.shards)]
        for fact in facts:
            routed[self._raw_band(fact.anchor_lon)].append(fact)
        return routed

    def pair_fact_bands(
        self, facts: list[PairFact]
    ) -> dict[int, tuple[int, ...]]:
        """Owner bands per member vessel of this slide's pair facts."""
        bands: dict[int, set[int]] = {}
        for fact in facts:
            band = self._raw_band(fact.anchor_lon)
            for mmsi in fact.args:
                bands.setdefault(mmsi, set()).add(band)
        return {
            mmsi: tuple(sorted(bands[mmsi])) for mmsi in sorted(bands)
        }

    def _raw_band(self, lon: float) -> int:
        for index, band in enumerate(self.bands[:-1]):
            if lon < band.bbox.max_lon:
                return index
        return self.shards - 1


def _merge_intervals(
    intervals: list[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Coalesce overlapping (lo, hi) intervals; keeps lookups short."""
    merged: list[tuple[float, float]] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged
