"""Deterministic routing of streams onto shards (Section 5.2 topology).

The runtime partitions work along two independent axes:

* **Tracking/compression** shards by *vessel*: the Mobility Tracker and the
  Compressor keep strictly per-MMSI state, so hashing the MMSI spreads the
  fleet across workers while preserving each vessel's arrival order.  The
  hash is an explicit multiplicative mix — never Python's salted ``hash`` —
  so routing is identical across processes and interpreter runs.
* **Recognition** shards by *longitude band*, reusing
  :func:`repro.maritime.partition.partition_world`: each band owns the
  areas whose centroid falls inside it, and receives every movement event
  that could possibly match one of those areas.  "The input MEs are
  forwarded to the appropriate processor (according to vessel location)."

Band routing is *envelope-based*: an event is forwarded to a band when its
longitude falls inside the band's acceptance envelope — the union of the
band's area bounding boxes expanded by the ``close`` threshold (areas may
well spill over the band edge that contains their centroid).  This makes
band-parallel recognition exact, not approximate: every rule in the
maritime event description joins the triggering event's coordinates against
the band's own areas, so a band that sees all events within its envelope
derives precisely the complex events a single engine would derive for its
areas, and the union over (disjoint) bands equals the single-engine result.
Events outside every envelope cannot match any area; they are routed to
the raw band containing their longitude so per-band input counts stay
meaningful.
"""

from repro.ais.stream import PositionalTuple
from repro.maritime.partition import partition_world
from repro.simulator.world import WorldModel
from repro.tracking.types import MovementEvent

#: Knuth's multiplicative constant (2^32 / phi), for MMSI mixing.
_MIX = 2654435761
_MASK = 0xFFFFFFFF


def shard_for_mmsi(mmsi: int, shards: int) -> int:
    """The tracking shard owning a vessel; deterministic across processes."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return ((mmsi * _MIX) & _MASK) % shards


class ShardRouter:
    """Route positional tuples to tracking shards and MEs to bands.

    Parameters
    ----------
    world:
        The monitored region; its longitude span defines the bands.
    shards:
        Number of workers; tracking shard count and band count coincide
        (worker *i* runs tracking shard *i* and recognition band *i*).
    close_margin_meters:
        How far outside an area's bounding box an event may still satisfy
        the ``close`` predicate; the acceptance envelopes expand by this.
    """

    def __init__(
        self,
        world: WorldModel,
        shards: int,
        close_margin_meters: float = 0.0,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.world = world
        self.shards = shards
        self.bands = partition_world(world, shards)
        #: Per-band acceptance envelopes as (min_lon, max_lon) intervals.
        self.envelopes: list[list[tuple[float, float]]] = []
        for band in self.bands:
            intervals = []
            for area in band.areas:
                bbox = area.polygon.bbox
                if close_margin_meters > 0.0:
                    bbox = bbox.expanded(close_margin_meters)
                intervals.append((bbox.min_lon, bbox.max_lon))
            self.envelopes.append(_merge_intervals(intervals))

    # -- tracking axis ----------------------------------------------------

    def route_positions(
        self, batch: list[PositionalTuple]
    ) -> list[list[tuple[int, PositionalTuple]]]:
        """Split a slide batch into per-shard sub-batches.

        Each position keeps its global index within the batch, so the
        merge stage can reconstruct the exact single-process event order
        (see :mod:`repro.runtime.merge`).  Per-vessel arrival order is
        preserved because the split is a stable filter.
        """
        routed: list[list[tuple[int, PositionalTuple]]] = [
            [] for _ in range(self.shards)
        ]
        for index, position in enumerate(batch):
            routed[shard_for_mmsi(position.mmsi, self.shards)].append(
                (index, position)
            )
        return routed

    # -- recognition axis -------------------------------------------------

    def bands_for_longitude(self, lon: float) -> list[int]:
        """Every band whose acceptance envelope contains ``lon``."""
        matched = [
            index
            for index, intervals in enumerate(self.envelopes)
            if any(lo <= lon <= hi for lo, hi in intervals)
        ]
        if matched:
            return matched
        return [self._raw_band(lon)]

    def route_events(
        self, events: list[MovementEvent]
    ) -> list[list[MovementEvent]]:
        """Fan movement events out to the band workers that may need them.

        An event near a band boundary is forwarded to every band whose
        envelope covers it (duplicates are harmless: a band only derives
        CEs for its own areas, and bands hold disjoint area sets).
        """
        routed: list[list[MovementEvent]] = [[] for _ in range(self.shards)]
        for event in events:
            for band in self.bands_for_longitude(event.lon):
                routed[band].append(event)
        return routed

    def _raw_band(self, lon: float) -> int:
        for index, band in enumerate(self.bands[:-1]):
            if lon < band.bbox.max_lon:
                return index
        return self.shards - 1


def _merge_intervals(
    intervals: list[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Coalesce overlapping (lo, hi) intervals; keeps lookups short."""
    merged: list[tuple[float, float]] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged
