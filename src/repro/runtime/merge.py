"""Deterministic merges of per-shard outputs.

Parallelism must not change a single observable output, so every merge
here is defined by an explicit total order rather than by arrival order of
the worker replies:

* **movement events** carry ``(batch_index, k)`` tags assigned by the
  workers (position *batch_index* of the slide emitted this as its *k*-th
  event).  Sorting by tag reconstructs *exactly* the event sequence a
  single-process :class:`~repro.tracking.tracker.MobilityTracker` produces
  when it scans the whole batch in arrival order — vessels are disjoint
  across shards, so the per-shard event lists interleave without conflict;
* **critical points** (fresh, expired, synopses) merge under the
  ``(mmsi, timestamp)`` order the compressor and synopsis APIs already
  guarantee per shard;
* **alerts** merge under the canonical report order of
  :func:`repro.maritime.recognizer.alert_sort_key`.  The sort is stable
  and any alerts tied on that key belong to one area (or, for pairwise
  CEs, one episode-anchored vessel pair) — hence to exactly one band,
  whose internal derivation order is preserved — so the merged list is
  byte-identical to the single-engine one.
"""

import heapq

from repro.maritime.recognizer import Alert, alert_sort_key
from repro.tracking.types import CriticalPoint, MovementEvent


def merge_tagged_events(
    tagged_per_shard: list[list[tuple[tuple[int, int], MovementEvent]]],
) -> list[MovementEvent]:
    """Splice per-shard tagged events into single-process order."""
    merged = heapq.merge(*tagged_per_shard, key=lambda item: item[0])
    return [event for _, event in merged]


def merge_critical_points(
    per_shard: list[list[CriticalPoint]],
) -> list[CriticalPoint]:
    """Merge per-shard (mmsi, timestamp)-ordered critical-point lists."""
    ordered = [
        sorted(points, key=lambda p: (p.mmsi, p.timestamp))
        for points in per_shard
    ]
    return list(
        heapq.merge(*ordered, key=lambda p: (p.mmsi, p.timestamp))
    )


def merge_finalize_events(
    per_shard: list[list[MovementEvent]],
) -> list[MovementEvent]:
    """Merge end-of-stream events under a canonical order.

    Finalize events close long-term stops; a single-process tracker emits
    them in vessel first-seen order, which no shard can reconstruct, so
    the runtime canonicalizes on ``(mmsi, timestamp)``.  Downstream
    consumers are insensitive to this: the compressor sorts per
    ``(mmsi, timestamp)`` anyway and recognition keys its working memory
    by occurrence time.
    """
    merged = [event for events in per_shard for event in events]
    merged.sort(key=lambda e: (e.mmsi, e.timestamp, e.event_type.value))
    return merged


def merge_alerts(alerts_per_band: list[list[Alert]]) -> list[Alert]:
    """Union the bands' alerts in the single-engine report order."""
    merged = [alert for alerts in alerts_per_band for alert in alerts]
    merged.sort(key=alert_sort_key)
    return merged
