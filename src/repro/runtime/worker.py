"""The shard worker: one process, one tracking shard, one recognition band.

Worker *i* owns the Mobility Tracker (whichever kernel
``SystemConfig.tracking_backend`` selects through
:func:`~repro.tracking.backends.create_tracker`) and the
:class:`~repro.tracking.compressor.Compressor` for the vessels hashed to
shard *i*, plus the :class:`~repro.maritime.recognizer.MaritimeRecognizer`
for longitude band *i* of the partitioned world.  It is driven over a
bounded command queue in strict sequence-number order and answers every
command on its reply queue.

Recovery protocol (see :mod:`repro.runtime.checkpoint`):

* every applied command advances the worker's ``cursor``;
* after every ``checkpoint_every``-th ``track`` command the worker pickles
  its full state *after replying*, so a crash between reply and checkpoint
  merely replays deterministic commands whose outputs the supervisor
  already delivered (and will discard again);
* commands with ``seq <= cursor`` (replays of work already captured by the
  restored checkpoint) are acknowledged as ``ignored`` without being
  re-applied.

The worker never touches the process-global metrics registry — it reports
raw seconds in its replies and the parent records them under per-shard
instrument names.
"""

import os
import time

from repro.maritime.partition import partition_world
from repro.maritime.recognizer import MaritimeRecognizer
from repro.pipeline.config import SystemConfig
from repro.runtime.checkpoint import CheckpointStore
from repro.simulator.vessel import VesselSpec
from repro.simulator.world import WorldModel
from repro.tracking.backends import create_tracker
from repro.tracking.compressor import Compressor

#: Exit code of a worker killed through the failure-injection hook.
POISON_EXIT_CODE = 17


class ShardWorker:
    """The in-process half of a worker; drives all shard-local state.

    Kept separate from the queue loop so tests can exercise snapshot /
    restore and command application synchronously, without processes.
    """

    def __init__(
        self,
        shard_id: int,
        shards: int,
        world: WorldModel,
        specs: dict[int, VesselSpec],
        config: SystemConfig,
    ):
        self.shard_id = shard_id
        self.shards = shards
        self.world = world
        self.specs = specs
        self.config = config
        self.tracker = create_tracker(config.tracking, config.tracking_backend)
        self.compressor = Compressor(config.window)
        self.band = partition_world(world, shards)[shard_id]
        self.recognizer = MaritimeRecognizer(
            self.band,
            specs,
            window_seconds=config.effective_recognition_window,
            config=config.maritime,
            spatial_facts=config.spatial_facts,
            pairwise=config.pairwise,
            pairwise_config=config.pairwise_config,
            ce_scope=config.ce_scope,
        )
        #: Sequence number of the last applied command.
        self.cursor = -1
        #: Number of ``track`` commands applied (drives checkpoint cadence).
        self.tracks_applied = 0
        #: ``(seq, payload)`` of the last applied command.  Checkpointed,
        #: because the protocol is lockstep: at most one applied command
        #: can be undelivered when the process dies, and it is this one —
        #: a restored worker re-emits it instead of acknowledging
        #: ``ignored``, so no output is ever lost.
        self.last_reply: tuple[int, dict] | None = None

    # -- command handlers -------------------------------------------------

    def track(self, query_time: int, indexed_positions: list) -> dict:
        """Run one slide of tracking + compression over a sub-batch.

        ``indexed_positions`` carries ``(global_index, position)`` pairs;
        every emitted movement event is tagged ``(global_index, k)`` so the
        parent can splice the per-shard outputs back into the exact event
        order a single-process tracker would have produced.
        """
        started = time.perf_counter()
        tagged_events = self.tracker.process_batch_tagged(indexed_positions)
        events = [event for _, event in tagged_events]
        fresh, expired = self.compressor.slide(
            events, query_time, raw_position_count=len(indexed_positions)
        )
        return {
            "events": tagged_events,
            "fresh": fresh,
            "expired": expired,
            "vessels": self.tracker.vessel_count(),
            "seconds": time.perf_counter() - started,
        }

    def recognize(
        self, query_time: int, events: list, facts: list = ()
    ) -> dict:
        """Ingest one slide's routed MEs (and, in pairwise mode, this
        band's routed pair facts) and step the band's recognition."""
        started = time.perf_counter()
        if facts:
            self.recognizer.ingest_facts(facts, arrival_time=query_time)
        ingested = self.recognizer.ingest(events, arrival_time=query_time)
        result = self.recognizer.step(query_time)
        return {
            "alerts": self.recognizer.alerts(result),
            "recognized": result.complex_event_count(),
            "ingested": ingested,
            "step_seconds": self.recognizer.last_step_seconds,
            "seconds": time.perf_counter() - started,
        }

    def finalize_track(self, query_time: int) -> dict:
        """End-of-stream: close long-lasting events, drain the window."""
        started = time.perf_counter()
        events = self.tracker.finalize()
        fresh, expired = self.compressor.slide(events, query_time)
        remaining = self.compressor.synopsis()
        return {
            "events": events,
            "fresh": fresh,
            "expired": expired,
            "remaining": remaining,
            "vessels": self.tracker.vessel_count(),
            "seconds": time.perf_counter() - started,
        }

    def synopsis(self, mmsi: int | None = None) -> dict:
        """The shard's current in-window critical points."""
        return {"points": self.compressor.synopsis(mmsi)}

    # -- checkpointing ----------------------------------------------------

    def snapshot(self) -> dict:
        """Everything needed to resurrect this worker after a crash."""
        engine = self.recognizer.engine
        return {
            "tracker": self.tracker,
            "compressor": self.compressor,
            "memory": engine.working_memory,
            "persisted": dict(engine._persisted_open),
            "tracks_applied": self.tracks_applied,
            "last_reply": self.last_reply,
        }

    def restore(self, state: dict, cursor: int) -> None:
        """Adopt a snapshot; rules/engines stay freshly constructed.

        The RTEC rule set contains closures and is rebuilt by
        ``__init__``; only the windowed working memory and the engine's
        open-interval persistence carry over.
        """
        self.tracker = state["tracker"]
        self.compressor = state["compressor"]
        engine = self.recognizer.engine
        engine.working_memory = state["memory"]
        engine._persisted_open = dict(state["persisted"])
        engine.last_result = None
        self.recognizer.adapter.memory = engine.working_memory
        self.tracks_applied = state["tracks_applied"]
        self.last_reply = state.get("last_reply")
        self.cursor = cursor


def worker_main(
    shard_id: int,
    shards: int,
    world: WorldModel,
    specs: dict[int, VesselSpec],
    config: SystemConfig,
    checkpoint_dir: str | None,
    checkpoint_every: int,
    command_queue,
    reply_queue,
) -> None:
    """Queue-driven worker loop; the target of the supervisor's processes."""
    worker = ShardWorker(shard_id, shards, world, specs, config)
    store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
    if store is not None:
        snapshot = store.load(shard_id)
        if snapshot is not None:
            worker.restore(snapshot.state, snapshot.cursor)
    die_on_next_track = False

    while True:
        command = command_queue.get()
        kind, seq = command[0], command[1]

        if kind == "stop":
            reply_queue.put((shard_id, seq, {"stopped": True}))
            break
        if kind == "poison":
            die_on_next_track = True
            reply_queue.put((shard_id, seq, {"poisoned": True}))
            continue
        if kind == "track" and die_on_next_track:
            # Simulated hard crash mid-slide: the command is consumed but
            # neither applied nor acknowledged.
            os._exit(POISON_EXIT_CODE)

        if seq <= worker.cursor:
            # Replay of work the restored checkpoint already contains.
            if worker.last_reply is not None and worker.last_reply[0] == seq:
                # ...except possibly the very last applied command, whose
                # reply may have been lost with the dying process.
                reply_queue.put((shard_id, seq, worker.last_reply[1]))
            else:
                reply_queue.put((shard_id, seq, {"ignored": True}))
            continue

        if kind == "track":
            payload = worker.track(command[2], command[3])
            worker.tracks_applied += 1
        elif kind == "recognize":
            payload = worker.recognize(
                command[2],
                command[3],
                command[4] if len(command) > 4 else (),
            )
        elif kind == "finalize_track":
            payload = worker.finalize_track(command[2])
        elif kind == "synopsis":
            payload = worker.synopsis(command[2])
        elif kind == "cursor":
            payload = {"cursor": worker.cursor}
        else:
            payload = {"error": f"unknown command {kind!r}"}
        worker.cursor = seq
        worker.last_reply = (seq, payload)

        checkpoint_due = (
            store is not None
            and kind == "track"
            and checkpoint_every > 0
            and worker.tracks_applied % checkpoint_every == 0
        )
        reply_queue.put((shard_id, seq, payload))
        if checkpoint_due:
            # Checkpoint *after* replying: a crash in between replays
            # deterministic commands whose outputs were already delivered
            # (and are discarded as duplicates), never losing output.
            store.save(shard_id, worker.cursor, worker.snapshot())
            reply_queue.put((shard_id, seq, {"checkpoint_cursor": worker.cursor}))
