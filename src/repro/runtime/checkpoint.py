"""Atomic per-shard checkpoints for crash recovery.

Each worker periodically pickles its full mutable state — tracker,
compressor (window synopsis included), recognition working memory and the
engine's open-interval persistence — together with a *stream cursor*: the
sequence number of the last command applied before the snapshot.  The
supervisor restarts a crashed worker from its latest checkpoint and replays
only the commands issued after the cursor, giving exactly-once application
(no lost and no duplicated critical points).

Writes are atomic: the pickle lands in a temporary file first and is then
``os.replace``d over the shard's checkpoint path, so a crash *during* a
checkpoint leaves the previous one intact.  A truncated or unreadable file
is treated as "no checkpoint" rather than an error.
"""

import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class ShardCheckpoint:
    """One recovered snapshot: the cursor plus the pickled shard state."""

    shard_id: int
    cursor: int
    state: dict


class CheckpointStore:
    """Filesystem-backed store of the latest checkpoint per shard."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, shard_id: int) -> Path:
        """Where shard ``shard_id`` keeps its latest checkpoint."""
        return self.directory / f"shard-{shard_id:03d}.ckpt"

    def save(self, shard_id: int, cursor: int, state: dict) -> Path:
        """Atomically persist a shard snapshot; returns the final path."""
        payload = pickle.dumps(
            {"shard_id": shard_id, "cursor": cursor, "state": state},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        final = self.path_for(shard_id)
        handle, tmp_name = tempfile.mkstemp(
            prefix=final.name + ".", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(handle, "wb") as tmp:
                tmp.write(payload)
                tmp.flush()
                os.fsync(tmp.fileno())
            os.replace(tmp_name, final)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return final

    def load(self, shard_id: int) -> ShardCheckpoint | None:
        """The latest checkpoint of a shard, or ``None`` if unusable."""
        path = self.path_for(shard_id)
        try:
            with open(path, "rb") as handle:
                snapshot = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if snapshot.get("shard_id") != shard_id or "state" not in snapshot:
            return None
        return ShardCheckpoint(
            shard_id=shard_id,
            cursor=int(snapshot["cursor"]),
            state=snapshot["state"],
        )

    def clear(self, shard_id: int | None = None) -> None:
        """Delete one shard's checkpoint, or every checkpoint."""
        if shard_id is not None:
            self.path_for(shard_id).unlink(missing_ok=True)
            return
        for path in self.directory.glob("shard-*.ckpt"):
            path.unlink(missing_ok=True)
