"""The Complex Event Recognition module, assembled.

:class:`MaritimeRecognizer` wires the RTEC engine, the maritime event
description and the ME adapter into the component of Figure 1: feed it the
movement events of each window slide, call :meth:`step`, and receive the
recognized complex events as :class:`Alert` records for "real-time
decision-making" by the marine authorities.
"""

from dataclasses import dataclass

from repro import obs
from repro.maritime.adapter import MovementEventAdapter
from repro.maritime.config import MaritimeConfig
from repro.maritime.definitions import (
    OUTPUT_EVENTS,
    OUTPUT_FLUENTS,
    build_maritime_rules,
)
from repro.maritime.pairwise.config import PairwiseConfig
from repro.maritime.pairwise.monitor import PairFact
from repro.maritime.pairwise.rules import (
    PAIRWISE_OUTPUT_EVENTS,
    PAIRWISE_OUTPUT_FLUENTS,
    PAIRWISE_PAIR_CES,
    PAIRWISE_VESSEL_CES,
    build_pairwise_rules,
)
from repro.maritime.spatial_facts import build_spatial_fact_rules
from repro.rtec.engine import RTEC, RecognitionResult
from repro.rtec.intervals import OPEN
from repro.simulator.vessel import VesselSpec
from repro.simulator.world import Area, WorldModel
from repro.tracking.types import MovementEvent


@dataclass(frozen=True)
class Alert:
    """One recognized complex event, formatted for the end user.

    Durative CEs (``suspicious``, ``illegalFishing``) produce one alert per
    maximal interval; instantaneous CEs (``illegalShipping``,
    ``dangerousShipping``) one per occurrence.  ``until`` is ``None`` for
    instantaneous CEs and for intervals still open at the query time.

    Pairwise CEs (``encounter``, ``rendezvous``, ``cpaRisk``) involve two
    vessels instead of a vessel and an area: ``area`` is empty and
    ``mmsi``/``mmsi2`` carry the pair (``mmsi < mmsi2``); ``darkShip``
    names a single vessel.
    """

    kind: str
    area: str
    since: int
    until: int | None = None
    mmsi: int | None = None
    mmsi2: int | None = None

    @property
    def is_ongoing(self) -> bool:
        """Whether the situation was still in progress at the query time."""
        return self.until is None


def alert_sort_key(alert: Alert) -> tuple:
    """The canonical report order, shared with the runtime's alert merge.

    The vessel tiebreakers are no-ops for the historical vessel-vs-area
    alerts (event occurrences already arrive sorted by ``(time, args)``,
    fluent alerts carry no MMSI) and give pairwise alerts — which all
    share ``area == ""`` — a total order across pairs.
    """
    return (
        alert.since,
        alert.kind,
        alert.area,
        -1 if alert.mmsi is None else alert.mmsi,
        -1 if alert.mmsi2 is None else alert.mmsi2,
    )


class MaritimeRecognizer:
    """End-to-end CE recognition over movement-event slides."""

    def __init__(
        self,
        world: WorldModel,
        specs: dict[int, VesselSpec],
        window_seconds: int,
        config: MaritimeConfig | None = None,
        watch_areas: list[Area] | None = None,
        spatial_facts: bool = False,
        pairwise: bool = False,
        pairwise_config: PairwiseConfig | None = None,
        ce_scope: str = "full",
    ):
        self.world = world
        self.config = config or MaritimeConfig()
        self.spatial_facts = spatial_facts
        self.pairwise = pairwise
        self.pairwise_config = pairwise_config or PairwiseConfig()
        self.ce_scope = ce_scope
        if ce_scope != "full" and (spatial_facts or pairwise):
            # Spatial facts feed the aggregate rule-sets and pairwise CEs
            # span two vessels: neither is MMSI-decomposable, so neither
            # composes with the vessel scope (docs/GATEWAY.md).
            raise ValueError(
                "ce_scope='vessel' excludes spatial_facts and pairwise "
                "recognition"
            )
        self.engine = RTEC(window_seconds)
        if spatial_facts:
            rules, computed = build_spatial_fact_rules(
                self.world, specs, self.config, watch_areas
            )
        else:
            rules, computed = build_maritime_rules(
                self.world, specs, self.config, watch_areas, scope=ce_scope
            )
        if ce_scope == "full":
            output_fluents = list(OUTPUT_FLUENTS)
        else:
            # The aggregate fluents are gated out of the rule set; keeping
            # them declared would only widen every query for nothing.
            output_fluents = []
        output_events = list(OUTPUT_EVENTS)
        if pairwise:
            rules = list(rules) + build_pairwise_rules()
            output_fluents += PAIRWISE_OUTPUT_FLUENTS
            output_events += PAIRWISE_OUTPUT_EVENTS
        self.engine.declare_rules(rules)
        for fluent in computed:
            self.engine.declare_computed(fluent)
        self.engine.declare_outputs(output_fluents, output_events)
        self.adapter = MovementEventAdapter(self.engine.working_memory)
        self.last_step_seconds = 0.0

    def ingest(
        self, events: list[MovementEvent], arrival_time: int | None = None
    ) -> int:
        """Feed one slide's movement events; returns the ME count asserted."""
        count = self.adapter.ingest_events(events, arrival_time)
        if self.spatial_facts:
            from repro.maritime.spatial_facts import assert_spatial_facts

            count += assert_spatial_facts(
                self.engine.working_memory,
                events,
                self.world,
                self.config.close_threshold_meters,
                arrival_time,
            )
        obs.count("recognition.ingested_events", count)
        return count

    def ingest_facts(
        self, facts: list[PairFact], arrival_time: int | None = None
    ) -> int:
        """Assert amalgamated pair facts into working memory.

        The facts come pre-timestamped from the
        :class:`~repro.maritime.pairwise.monitor.PairwiseMonitor`; the
        recognizer only records them as input events.
        """
        memory = self.engine.working_memory
        for fact in facts:
            memory.assert_event(
                fact.functor, fact.args, fact.timestamp, arrival=arrival_time
            )
        obs.count("recognition.ingested_pair_facts", len(facts))
        return len(facts)

    def step(self, query_time: int) -> RecognitionResult:
        """Run recognition at a query time, recording wall-clock cost."""
        with obs.timed_span("recognition.step") as span:
            result = self.engine.step(query_time)
        self.last_step_seconds = span.seconds
        return result

    def alerts(self, result: RecognitionResult | None = None) -> list[Alert]:
        """Flatten a recognition result into alert records."""
        result = result or self.engine.last_result
        if result is None:
            return []
        alerts: list[Alert] = []
        for functor, instances in result.fluents.items():
            pair_ce = functor in PAIRWISE_PAIR_CES
            for args, value_intervals in instances.items():
                for ts, tf in value_intervals.get(True, []):
                    until = None if tf == OPEN else int(tf)
                    if pair_ce:
                        alerts.append(
                            Alert(
                                kind=functor,
                                area="",
                                since=ts,
                                until=until,
                                mmsi=args[0],
                                mmsi2=args[1],
                            )
                        )
                    else:
                        alerts.append(
                            Alert(
                                kind=functor, area=args[0], since=ts,
                                until=until,
                            )
                        )
        for functor, occurrences in result.events.items():
            pair_ce = functor in PAIRWISE_PAIR_CES
            vessel_ce = functor in PAIRWISE_VESSEL_CES
            for args, timepoint in occurrences:
                if pair_ce:
                    alert = Alert(
                        kind=functor, area="", since=timepoint,
                        mmsi=args[0], mmsi2=args[1],
                    )
                elif vessel_ce:
                    alert = Alert(
                        kind=functor, area="", since=timepoint, mmsi=args[0],
                    )
                else:
                    alert = Alert(
                        kind=functor,
                        area=args[0],
                        since=timepoint,
                        mmsi=args[1] if len(args) > 1 else None,
                    )
                alerts.append(alert)
        alerts.sort(key=alert_sort_key)
        return alerts
