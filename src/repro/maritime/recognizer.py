"""The Complex Event Recognition module, assembled.

:class:`MaritimeRecognizer` wires the RTEC engine, the maritime event
description and the ME adapter into the component of Figure 1: feed it the
movement events of each window slide, call :meth:`step`, and receive the
recognized complex events as :class:`Alert` records for "real-time
decision-making" by the marine authorities.
"""

from dataclasses import dataclass

from repro import obs
from repro.maritime.adapter import MovementEventAdapter
from repro.maritime.config import MaritimeConfig
from repro.maritime.definitions import (
    OUTPUT_EVENTS,
    OUTPUT_FLUENTS,
    build_maritime_rules,
)
from repro.maritime.spatial_facts import build_spatial_fact_rules
from repro.rtec.engine import RTEC, RecognitionResult
from repro.rtec.intervals import OPEN
from repro.simulator.vessel import VesselSpec
from repro.simulator.world import Area, WorldModel
from repro.tracking.types import MovementEvent


@dataclass(frozen=True)
class Alert:
    """One recognized complex event, formatted for the end user.

    Durative CEs (``suspicious``, ``illegalFishing``) produce one alert per
    maximal interval; instantaneous CEs (``illegalShipping``,
    ``dangerousShipping``) one per occurrence.  ``until`` is ``None`` for
    instantaneous CEs and for intervals still open at the query time.
    """

    kind: str
    area: str
    since: int
    until: int | None = None
    mmsi: int | None = None

    @property
    def is_ongoing(self) -> bool:
        """Whether the situation was still in progress at the query time."""
        return self.until is None


class MaritimeRecognizer:
    """End-to-end CE recognition over movement-event slides."""

    def __init__(
        self,
        world: WorldModel,
        specs: dict[int, VesselSpec],
        window_seconds: int,
        config: MaritimeConfig | None = None,
        watch_areas: list[Area] | None = None,
        spatial_facts: bool = False,
    ):
        self.world = world
        self.config = config or MaritimeConfig()
        self.spatial_facts = spatial_facts
        self.engine = RTEC(window_seconds)
        if spatial_facts:
            rules, computed = build_spatial_fact_rules(
                self.world, specs, self.config, watch_areas
            )
        else:
            rules, computed = build_maritime_rules(
                self.world, specs, self.config, watch_areas
            )
        self.engine.declare_rules(rules)
        for fluent in computed:
            self.engine.declare_computed(fluent)
        self.engine.declare_outputs(OUTPUT_FLUENTS, OUTPUT_EVENTS)
        self.adapter = MovementEventAdapter(self.engine.working_memory)
        self.last_step_seconds = 0.0

    def ingest(
        self, events: list[MovementEvent], arrival_time: int | None = None
    ) -> int:
        """Feed one slide's movement events; returns the ME count asserted."""
        count = self.adapter.ingest_events(events, arrival_time)
        if self.spatial_facts:
            from repro.maritime.spatial_facts import assert_spatial_facts

            count += assert_spatial_facts(
                self.engine.working_memory,
                events,
                self.world,
                self.config.close_threshold_meters,
                arrival_time,
            )
        obs.count("recognition.ingested_events", count)
        return count

    def step(self, query_time: int) -> RecognitionResult:
        """Run recognition at a query time, recording wall-clock cost."""
        with obs.timed_span("recognition.step") as span:
            result = self.engine.step(query_time)
        self.last_step_seconds = span.seconds
        return result

    def alerts(self, result: RecognitionResult | None = None) -> list[Alert]:
        """Flatten a recognition result into alert records."""
        result = result or self.engine.last_result
        if result is None:
            return []
        alerts: list[Alert] = []
        for functor, instances in result.fluents.items():
            for args, value_intervals in instances.items():
                for ts, tf in value_intervals.get(True, []):
                    alerts.append(
                        Alert(
                            kind=functor,
                            area=args[0],
                            since=ts,
                            until=None if tf == OPEN else int(tf),
                        )
                    )
        for functor, occurrences in result.events.items():
            for args, timepoint in occurrences:
                area = args[0]
                mmsi = args[1] if len(args) > 1 else None
                alerts.append(
                    Alert(kind=functor, area=area, since=timepoint, mmsi=mmsi)
                )
        alerts.sort(key=lambda alert: (alert.since, alert.kind, alert.area))
        return alerts
