"""Configuration of the maritime event description."""

from dataclasses import dataclass


@dataclass(frozen=True)
class MaritimeConfig:
    """Thresholds of the CE definitions.

    ``suspicious_other_vessels`` reflects the domain experts' "at least four
    vessels": the triggering vessel's own stop is not yet counted by the
    ``vesselsStoppedIn`` fluent at the instant its ``start(stopped)`` event
    occurs (a fluent initiated at T holds from T+1), so the rule requires at
    least three *other* vessels, giving four in total.
    """

    #: The ``close`` predicate threshold: Haversine distance below which a
    #: position counts as close to (or in) an area, meters.
    close_threshold_meters: float = 3000.0
    #: Minimum count of other stopped vessels for ``suspicious`` (see above).
    suspicious_other_vessels: int = 3
