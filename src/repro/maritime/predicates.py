"""Atemporal predicates and counter fluents of the event description.

``close(Lon, Lat, Area)`` "is an atemporal predicate calculating whether the
Haversine distance between a point and an Area is less than some predefined
threshold"; ``shallow(Area, Vessel)`` and ``fishing(Vessel)`` consult static
vessel/area knowledge (Section 4.1).  ``vesselsStoppedIn(Area)=N`` "records
the number of vessels that have stopped in this Area" — implemented as a
computed fluent whose value steps up and down at the endpoints of the
``stopped`` intervals of vessels close to the area.
"""

from collections import defaultdict
from collections.abc import Callable

from repro.rtec.engine import ComputedFluent, EngineView
from repro.rtec.intervals import Interval, OPEN
from repro.simulator.vessel import VesselSpec
from repro.simulator.world import Area
from repro.spatial.grid import StaticBoxIndex


def make_close_predicate(
    areas: list[Area], threshold_meters: float
) -> Callable[[float, float], list[tuple[str]]]:
    """The paper's ``close`` restricted to a set of areas.

    Returns a callable enumerating the names of areas whose distance from
    ``(lon, lat)`` is below the threshold — the enumeration doubles as the
    'declarations' restriction of RTEC: only the given areas are ever
    considered for the CE that uses the predicate.

    A :class:`~repro.spatial.grid.StaticBoxIndex` over the threshold-
    expanded area boxes prefilters candidates; it is exactly conservative
    (``is_close`` starts with the same expanded-box containment test) and
    preserves the area-list enumeration order, so results are identical
    to the linear scan.
    """
    index = StaticBoxIndex(
        (position, area.polygon.bbox.expanded(threshold_meters))
        for position, area in enumerate(areas)
    )

    def close(lon: float, lat: float) -> list[tuple[str]]:
        return [
            (areas[position].name,)
            for position in index.candidates(lon, lat)
            if areas[position].polygon.is_close(lon, lat, threshold_meters)
        ]

    close.__name__ = "close"
    return close


def make_shallow_predicate(
    areas: list[Area], specs: dict[int, VesselSpec]
) -> Callable[[str, int], bool]:
    """``shallow(Area, Vessel)``: the area is too shallow for the vessel.

    True when the vessel's draft exceeds the area's charted depth.  Vessels
    missing from the static database are conservatively assumed safe, as the
    paper's predicate would fall back to estimating from characteristics.
    """
    depth_by_name = {area.name: area.depth_meters for area in areas}

    def shallow(area_name: str, mmsi: int) -> bool:
        depth = depth_by_name.get(area_name)
        spec = specs.get(mmsi)
        if depth is None or spec is None:
            return False
        return spec.draft_meters > depth

    shallow.__name__ = "shallow"
    return shallow


def make_fishing_predicate(specs: dict[int, VesselSpec]) -> Callable[[int], bool]:
    """``fishing(Vessel)``: the static fishing-vessel designation."""

    def fishing(mmsi: int) -> bool:
        spec = specs.get(mmsi)
        return spec is not None and spec.is_fishing

    fishing.__name__ = "fishing"
    return fishing


class _StoppedCounter(ComputedFluent):
    """Base class: count vessels concurrently stopped close to each area.

    For every maximal ``stopped`` interval of every (eligible) vessel, the
    vessel's coordinates at the stop start select the areas it is close to;
    the per-area count is then the step function stepping +1 at each
    interval start and -1 at each closed interval end.
    """

    depends_on_fluents = frozenset({"stopped"})

    def __init__(
        self,
        close: Callable[[float, float], list[tuple[str]]],
        eligible: Callable[[int], bool] | None = None,
        area_names: list[str] | None = None,
        fact_functor: str | None = None,
    ):
        self._close = close
        self._eligible = eligible
        # Areas that always carry a count instance (value 0 when idle), so
        # rules can test "the count is zero" rather than failing on lookup.
        self._area_names = list(area_names or [])
        # In spatial-facts mode, areas come from close_to facts at the stop
        # start instead of geometric computation.
        self._fact_functor = fact_functor

    def compute(
        self, view: EngineView
    ) -> dict[tuple, dict[object, list[Interval]]]:
        """Per-area count intervals for the current window."""
        deltas: dict[str, list[tuple[int, int]]] = {
            name: [] for name in self._area_names
        }
        for args, value_intervals in view.fluent_instances("stopped").items():
            vessel = args[0]
            if self._eligible is not None and not self._eligible(vessel):
                continue
            for ts, tf in value_intervals.get(True, []):
                for area_name in self._areas_for_stop(view, vessel, ts):
                    deltas.setdefault(area_name, []).append((ts, +1))
                    if tf != OPEN:
                        deltas[area_name].append((int(tf), -1))

        result: dict[tuple, dict[object, list[Interval]]] = {}
        for area_name, changes in deltas.items():
            result[(area_name,)] = _count_step_function(
                changes, leading_edge=view.window_start
            )
        return result

    def _areas_for_stop(
        self, view: EngineView, vessel: int, ts: int
    ) -> list[str]:
        """Areas a vessel's stop counts toward."""
        if self._fact_functor is not None:
            areas = [
                args[1]
                for args, timepoint in view.occurrences(self._fact_functor)
                if args[0] == vessel and timepoint == ts
            ]
            if areas or ts > view.window_start:
                return areas
            # The stop persisted from before the window: its close_to fact
            # has been forgotten, so place it geometrically (this is the
            # only geometry the spatial-facts mode ever computes, and only
            # for long-persisting stops).
        coord = view.value_at("coord", (vessel,), max(ts, view.window_start))
        if coord is None:
            # No position known for the stop: cannot place it.
            return []
        lon, lat = coord
        return [area_name for (area_name,) in self._close(lon, lat)]


def _count_step_function(
    changes: list[tuple[int, int]], leading_edge: int
) -> dict[object, list[Interval]]:
    """Turn (+1/-1, time) deltas into per-count maximal intervals.

    Counts follow the fluent semantics: a count value N set at time t holds
    on ``(t, t_next]``.  Zero-count stretches *do* carry an interval, so that
    rules can test ``N == 0``; the count starts at zero from the window's
    leading edge.
    """
    # Merge simultaneous changes so the count never flickers within a second.
    merged: dict[int, int] = defaultdict(int)
    for time, delta in changes:
        merged[time] += delta
    timeline = sorted(merged.items())

    intervals: dict[object, list[Interval]] = defaultdict(list)
    count = 0
    previous_time = min(leading_edge, timeline[0][0]) if timeline else leading_edge
    for time, delta in timeline:
        if time > previous_time:
            intervals[count].append((previous_time, time))
        count += delta
        previous_time = time
    intervals[count].append((previous_time, OPEN))
    return dict(intervals)


class VesselsStoppedIn(_StoppedCounter):
    """``vesselsStoppedIn(Area)=N`` over all vessels (rule-set (3))."""

    functor = "vesselsStoppedIn"


class FishingStoppedIn(_StoppedCounter):
    """``fishingStoppedIn(Area)=N`` over fishing vessels only.

    Supports the termination conditions of ``illegalFishing`` (the paper
    omits their full formalization; see :mod:`repro.maritime.definitions`).
    """

    functor = "fishingStoppedIn"

    def __init__(
        self,
        close,
        fishing: Callable[[int], bool],
        area_names: list[str] | None = None,
        fact_functor: str | None = None,
    ):
        super().__init__(
            close,
            eligible=fishing,
            area_names=area_names,
            fact_functor=fact_functor,
        )
