"""Maritime complex event recognition (Section 4).

This package instantiates the RTEC engine with the paper's event
description: the critical movement events (ME) of the trajectory detection
component — ``gap``, ``slowMotion``, ``stopped``, ``speedChange``, ``turn`` —
are correlated with static geographical and vessel data to recognize

* ``suspicious(Area)`` — several vessels stopped close to an area
  (Scenario 1, rule-set (3));
* ``illegalFishing(Area)`` — a fishing vessel stopped or trawling slowly in
  a forbidden-fishing area (Scenario 2, rule-set (4));
* ``illegalShipping(Area)`` — a communication gap close to a protected area
  (Scenario 3, rule (5));
* ``dangerousShipping(Area)`` — slow motion through waters too shallow for
  the vessel (Scenario 4, rule (6)).

Two operation modes reproduce Figure 11: on-demand *spatial reasoning*
(RTEC computes vessel-area proximity with Haversine geometry inside rule
bodies) and precomputed *spatial facts* (the ME stream is augmented with
timestamped ``close_to`` facts and rules join on them directly).
"""

from repro.maritime.adapter import MovementEventAdapter
from repro.maritime.config import MaritimeConfig
from repro.maritime.definitions import build_maritime_rules
from repro.maritime.partition import PartitionedRecognizer, partition_world
from repro.maritime.predicates import (
    FishingStoppedIn,
    VesselsStoppedIn,
    make_close_predicate,
    make_shallow_predicate,
)
from repro.maritime.recognizer import Alert, MaritimeRecognizer
from repro.maritime.spatial_facts import build_spatial_fact_rules, spatial_facts_for

__all__ = [
    "Alert",
    "FishingStoppedIn",
    "MaritimeConfig",
    "MaritimeRecognizer",
    "MovementEventAdapter",
    "PartitionedRecognizer",
    "VesselsStoppedIn",
    "build_maritime_rules",
    "build_spatial_fact_rules",
    "make_close_predicate",
    "make_shallow_predicate",
    "partition_world",
    "spatial_facts_for",
]
