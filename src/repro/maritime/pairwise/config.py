"""Thresholds of the pairwise recognition layer."""

from dataclasses import dataclass

from repro.geo.units import knots_to_mps


@dataclass(frozen=True)
class PairwiseConfig:
    """Calibrated knobs for pair facts and pairwise complex events."""

    #: Two vessels closer than this are a ``proximity`` pair (meters).
    proximity_radius_meters: float = 3000.0
    #: Both members at or under this speed makes the pair "slow" (knots).
    low_speed_knots: float = 5.0
    #: Minimum distance from every port for "offshore" standing (meters).
    offshore_distance_meters: float = 10_000.0
    #: Drop a vessel's last-seen track after this much silence (seconds);
    #: episodes involving the vessel end with a ``pair_far`` fact.
    stale_seconds: int = 3600
    #: CPA risk fires only when the closest approach is at most this far
    #: ahead (seconds) ...
    cpa_horizon_seconds: int = 1800
    #: ... and at most this close (meters) ...
    cpa_distance_meters: float = 500.0
    #: ... with both vessels actually underway (meters/second).
    cpa_min_speed_mps: float = 0.5

    def __post_init__(self) -> None:
        if self.proximity_radius_meters <= 0:
            raise ValueError("proximity_radius_meters must be positive")
        if self.stale_seconds <= 0:
            raise ValueError("stale_seconds must be positive")
        if self.cpa_horizon_seconds <= 0:
            raise ValueError("cpa_horizon_seconds must be positive")

    @property
    def low_speed_mps(self) -> float:
        """Joint low-speed threshold in meters per second."""
        return knots_to_mps(self.low_speed_knots)
