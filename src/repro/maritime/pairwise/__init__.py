"""Pairwise (vessel-vs-vessel) complex event recognition.

The :class:`~repro.maritime.pairwise.monitor.PairwiseMonitor` turns the
merged movement-event stream into amalgamated *pair facts* — proximity,
joint low speed, offshore standing, CPA risk, dark gaps — using the
per-slide grid index from :mod:`repro.spatial`; the RTEC rules in
:mod:`repro.maritime.pairwise.rules` derive ``encounter``/``rendezvous``
intervals and ``cpaRisk``/``darkShip`` events from those facts alone.
See docs/SPATIAL.md.
"""

from repro.maritime.pairwise.config import PairwiseConfig
from repro.maritime.pairwise.monitor import PairFact, PairwiseMonitor
from repro.maritime.pairwise.rules import (
    PAIRWISE_OUTPUT_EVENTS,
    PAIRWISE_OUTPUT_FLUENTS,
    build_pairwise_rules,
)

__all__ = [
    "PAIRWISE_OUTPUT_EVENTS",
    "PAIRWISE_OUTPUT_FLUENTS",
    "PairFact",
    "PairwiseConfig",
    "PairwiseMonitor",
    "build_pairwise_rules",
]
