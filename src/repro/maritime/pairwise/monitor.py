"""The pairwise monitor: movement events in, amalgamated pair facts out.

The monitor runs once per slide in the *parent* process, over the merged
(deterministically ordered) movement-event stream — the same stream both
the single-process pipeline and the sharded runtime produce byte-for-byte
identically.  All pairwise geometry happens here: last-seen tracks per
vessel, a fresh :class:`~repro.spatial.grid.SlideGridIndex` per slide,
closest-point-of-approach projection, offshore tests, and gap pairing.
What leaves is a flat, canonically sorted list of :class:`PairFact`
records; the RTEC rules (:mod:`repro.maritime.pairwise.rules`) never see
a coordinate.

Episode anchoring
-----------------
Every proximity episode fixes an ``anchor_lon`` — the midpoint longitude
of the pair when it first came within range.  Every subsequent fact of
that episode (including the closing ``pair_far``) carries the same
anchor, and the runtime routes each fact to the longitude band owning
its anchor.  Initiation and termination of a pair's fluents therefore
always land in the same recognition partition, which is what keeps the
sharded output byte-identical to the single-process run.
"""

from dataclasses import dataclass

from repro import obs
from repro.geo.haversine import haversine_meters
from repro.maritime.pairwise.config import PairwiseConfig
from repro.maritime.pairwise.rules import (
    DARK_GAP,
    PAIR_CLOSE,
    PAIR_CPA_RISK,
    PAIR_FAR,
    PAIR_OFFSHORE,
    PAIR_SLOW,
    PAIR_SPEEDUP,
)
from repro.simulator.world import WorldModel
from repro.spatial.cpa import closest_point_of_approach
from repro.spatial.grid import SlideGridIndex
from repro.tracking.types import MovementEvent, MovementEventType


@dataclass(frozen=True)
class PairFact:
    """One amalgamated spatial fact, ready for RTEC assertion.

    ``anchor_lon`` is the routing key: all facts of one episode carry
    the episode's fixed anchor (see the module docstring).
    """

    functor: str
    args: tuple
    timestamp: int
    anchor_lon: float


@dataclass
class _Track:
    """Last-seen kinematic state of one vessel."""

    lon: float
    lat: float
    timestamp: int
    speed_mps: float
    heading_degrees: float


@dataclass
class _Episode:
    """State of one ongoing proximity episode."""

    anchor_lon: float
    slow: bool = False
    cpa_risk: bool = False


def _midpoint_lon(lon1: float, lon2: float) -> float:
    """Short-arc midpoint longitude, normalised to [-180, 180)."""
    delta = (lon2 - lon1 + 180.0) % 360.0 - 180.0
    return (lon1 + delta / 2.0 + 180.0) % 360.0 - 180.0


class PairwiseMonitor:
    """Stateful per-slide producer of pair facts.

    Parameters
    ----------
    world:
        Supplies the port anchors for the offshore test.
    config:
        Pairwise thresholds; defaults reproduce the documented values.
    """

    def __init__(self, world: WorldModel, config: PairwiseConfig | None = None):
        self.world = world
        self.config = config or PairwiseConfig()
        self._tracks: dict[int, _Track] = {}
        self._episodes: dict[tuple[int, int], _Episode] = {}
        #: Per-vessel flag: the open gap started offshore.
        self._gap_started_offshore: dict[int, bool] = {}

    # -- helpers -----------------------------------------------------------

    def _offshore(self, lon: float, lat: float) -> bool:
        """True when the point is far from every port anchor."""
        threshold = self.config.offshore_distance_meters
        return all(
            haversine_meters(port.lon, port.lat, lon, lat) > threshold
            for port in self.world.ports
        )

    def _cpa_risky(self, first: _Track, second: _Track) -> bool:
        """Projected closest approach inside the risk envelope?"""
        config = self.config
        if (
            first.speed_mps < config.cpa_min_speed_mps
            or second.speed_mps < config.cpa_min_speed_mps
        ):
            return False
        tcpa, dcpa = closest_point_of_approach(
            first.lon, first.lat, first.speed_mps, first.heading_degrees,
            second.lon, second.lat, second.speed_mps, second.heading_degrees,
        )
        return (
            0.0 <= tcpa <= config.cpa_horizon_seconds
            and dcpa <= config.cpa_distance_meters
        )

    # -- the slide step ----------------------------------------------------

    def observe(
        self, events: list[MovementEvent], query_time: int
    ) -> list[PairFact]:
        """Fold one slide's movement events into pair facts.

        Determinism contract: the returned facts are a pure function of
        the event *multiset* and the query time — the fold below sorts
        the events canonically first (the single-process pipeline and
        the runtime's finalize path order same-timestamp events
        differently), and all later iteration is over sorted MMSIs and
        sorted pair keys.
        """
        facts: list[PairFact] = []
        updated: set[int] = set()

        ordered = sorted(
            events,
            key=lambda e: (e.mmsi, e.timestamp, e.event_type.value),
        )
        for event in ordered:
            track = self._tracks.get(event.mmsi)
            if track is None or event.timestamp >= track.timestamp:
                self._tracks[event.mmsi] = _Track(
                    lon=event.lon,
                    lat=event.lat,
                    timestamp=event.timestamp,
                    speed_mps=event.speed_mps,
                    heading_degrees=event.heading_degrees,
                )
                updated.add(event.mmsi)
            if event.event_type is MovementEventType.GAP_START:
                self._gap_started_offshore[event.mmsi] = self._offshore(
                    event.lon, event.lat
                )
            elif event.event_type is MovementEventType.GAP_END:
                started_offshore = self._gap_started_offshore.pop(
                    event.mmsi, False
                )
                if started_offshore and self._offshore(event.lon, event.lat):
                    facts.append(PairFact(
                        DARK_GAP, (event.mmsi,), event.timestamp, event.lon,
                    ))

        # Expire stale tracks; their episodes end now, at query time.
        horizon = query_time - self.config.stale_seconds
        expired = [
            mmsi
            for mmsi in sorted(self._tracks)
            if self._tracks[mmsi].timestamp < horizon
        ]
        for mmsi in expired:
            del self._tracks[mmsi]
        if expired:
            gone = set(expired)
            for pair in sorted(self._episodes):
                if pair[0] in gone or pair[1] in gone:
                    facts.append(PairFact(
                        PAIR_FAR, pair, query_time,
                        self._episodes[pair].anchor_lon,
                    ))
                    del self._episodes[pair]

        with obs.timed_span("pairwise.index_build"):
            index = SlideGridIndex(self.config.proximity_radius_meters)
            for mmsi in sorted(self._tracks):
                track = self._tracks[mmsi]
                index.insert(mmsi, track.lon, track.lat)
        close_now = index.close_pairs()
        obs.count("pairwise.candidate_pairs", index.candidates_examined)
        obs.count("pairwise.close_pairs", len(close_now))

        active: set[tuple[int, int]] = set()
        for pair in close_now:
            if pair[0] not in updated and pair[1] not in updated:
                # Nothing moved: the episode's facts for this state were
                # already emitted with this timestamp on an earlier slide.
                active.add(pair)
                continue
            first = self._tracks[pair[0]]
            second = self._tracks[pair[1]]
            timestamp = max(first.timestamp, second.timestamp)
            episode = self._episodes.get(pair)
            if episode is None:
                episode = _Episode(
                    anchor_lon=_midpoint_lon(first.lon, second.lon)
                )
                self._episodes[pair] = episode
            active.add(pair)
            anchor = episode.anchor_lon
            facts.append(PairFact(PAIR_CLOSE, pair, timestamp, anchor))

            low_speed = self.config.low_speed_mps
            slow = (
                first.speed_mps <= low_speed
                and second.speed_mps <= low_speed
            )
            if slow:
                facts.append(PairFact(PAIR_SLOW, pair, timestamp, anchor))
                if self._offshore(first.lon, first.lat) and self._offshore(
                    second.lon, second.lat
                ):
                    facts.append(PairFact(
                        PAIR_OFFSHORE, pair, timestamp, anchor,
                    ))
            elif episode.slow:
                facts.append(PairFact(PAIR_SPEEDUP, pair, timestamp, anchor))
            episode.slow = slow

            risky = self._cpa_risky(first, second)
            if risky and not episode.cpa_risk:
                facts.append(PairFact(PAIR_CPA_RISK, pair, timestamp, anchor))
            episode.cpa_risk = risky

        # Episodes that stopped being close (with a member still fresh
        # and updated) separate at the latest member timestamp.
        for pair in sorted(self._episodes):
            if pair in active:
                continue
            if pair[0] not in updated and pair[1] not in updated:
                continue
            first = self._tracks.get(pair[0])
            second = self._tracks.get(pair[1])
            if first is None or second is None:
                continue  # already closed by the staleness pass
            timestamp = max(first.timestamp, second.timestamp)
            facts.append(PairFact(
                PAIR_FAR, pair, timestamp, self._episodes[pair].anchor_lon,
            ))
            del self._episodes[pair]

        facts.sort(key=lambda fact: (fact.timestamp, fact.functor, fact.args))
        obs.count("pairwise.facts", len(facts))
        return facts
