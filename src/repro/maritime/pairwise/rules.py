"""RTEC rules deriving pairwise complex events from pair facts.

The :class:`~repro.maritime.pairwise.monitor.PairwiseMonitor` amalgamates
all pairwise geometry into *pair facts* — input events over ``(V1, V2)``
pairs (``V1 < V2`` by MMSI) or single vessels — so the rules here are
pure event algebra with no spatial joins.  That amalgamation is what
makes longitude-band routing trivially correct: a fact stream for one
pair is self-contained, and every fact of an episode is routed to the
same band (see docs/SPATIAL.md).

Vocabulary of input facts::

    pair_close(V1, V2)     the pair came (or stayed) within range
    pair_far(V1, V2)       the pair separated / a member went stale
    pair_slow(V1, V2)      both members at low speed while in range
    pair_speedup(V1, V2)   a slow pair stopped being slow
    pair_offshore(V1, V2)  both members far from every port while in range
    pair_cpa_risk(V1, V2)  projected CPA inside the risk envelope
    dark_gap(V)            an AIS gap that began *and* ended offshore

Derived complex events:

* ``encounter(V1, V2)`` — fluent: the vessels are within proximity range.
* ``rendezvous(V1, V2)`` — fluent: within range *and* both at low speed
  *and* offshore — the ship-to-ship transfer pattern; ends when the pair
  separates or speeds back up.
* ``cpaRisk(V1, V2)`` — instantaneous event: dangerous closest point of
  approach ahead.
* ``darkShip(V)`` — instantaneous event: a communication gap upgraded to
  suspected intentional AIS disabling because it started and ended away
  from shore facilities.
"""

from repro.rtec.rules import (
    EventPattern,
    HappensAt,
    Rule,
    Var,
    happens_head,
    initiated,
    terminated,
)

# -- input fact functors (emitted by the monitor) ----------------------

PAIR_CLOSE = "pair_close"
PAIR_FAR = "pair_far"
PAIR_SLOW = "pair_slow"
PAIR_SPEEDUP = "pair_speedup"
PAIR_OFFSHORE = "pair_offshore"
PAIR_CPA_RISK = "pair_cpa_risk"
DARK_GAP = "dark_gap"

#: Every input fact functor, for working-memory bookkeeping.
PAIR_FACT_FUNCTORS = (
    PAIR_CLOSE,
    PAIR_FAR,
    PAIR_SLOW,
    PAIR_SPEEDUP,
    PAIR_OFFSHORE,
    PAIR_CPA_RISK,
    DARK_GAP,
)

# -- derived complex events --------------------------------------------

#: Pairwise durative CEs reported as (V1, V2) intervals.
PAIRWISE_OUTPUT_FLUENTS = ["encounter", "rendezvous"]
#: Pairwise instantaneous CEs.
PAIRWISE_OUTPUT_EVENTS = ["cpaRisk", "darkShip"]

#: CE names whose alert args are vessel pairs (not vessel+area).
PAIRWISE_PAIR_CES = frozenset(["encounter", "rendezvous", "cpaRisk"])
#: CE names whose alert args are a single vessel.
PAIRWISE_VESSEL_CES = frozenset(["darkShip"])
#: All pairwise CE names, for alert translation and feed filtering.
PAIRWISE_CE_NAMES = PAIRWISE_PAIR_CES | PAIRWISE_VESSEL_CES


def build_pairwise_rules() -> list[Rule]:
    """The pairwise rule set; thresholds live in the monitor, not here."""
    vessel1 = Var("V1")
    vessel2 = Var("V2")
    vessel = Var("V")
    pair = (vessel1, vessel2)
    return [
        # Encounter: within range until separation.
        initiated(
            "encounter", pair, True,
            [HappensAt(EventPattern(PAIR_CLOSE, pair))],
        ),
        terminated(
            "encounter", pair, True,
            [HappensAt(EventPattern(PAIR_FAR, pair))],
        ),
        # Rendezvous: in range, both slow, offshore — all at the same
        # timepoint (the monitor co-timestamps the facts of a slide).
        initiated(
            "rendezvous", pair, True,
            [
                HappensAt(EventPattern(PAIR_SLOW, pair)),
                HappensAt(EventPattern(PAIR_CLOSE, pair)),
                HappensAt(EventPattern(PAIR_OFFSHORE, pair)),
            ],
        ),
        terminated(
            "rendezvous", pair, True,
            [HappensAt(EventPattern(PAIR_FAR, pair))],
        ),
        terminated(
            "rendezvous", pair, True,
            [HappensAt(EventPattern(PAIR_SPEEDUP, pair))],
        ),
        # Instantaneous risk / dark-ship events.
        happens_head(
            "cpaRisk", pair,
            [HappensAt(EventPattern(PAIR_CPA_RISK, pair))],
        ),
        happens_head(
            "darkShip", (vessel,),
            [HappensAt(EventPattern(DARK_GAP, (vessel,)))],
        ),
    ]
