"""The spatial-facts operation mode (Figure 11(b)).

"The ME stream is augmented by timestamped facts indicating the spatial
relations between vessels and (protected, forbidden fishing, shallow) areas.
Each ME expressing the movement of a vessel is accompanied by facts stating
whether the vessel is 'close' to some area of interest — the timestamp of
these facts is the same as the timestamp of the ME.  For these experiments,
the CE definitions were updated in order to make use of spatial facts (as
opposed to RTEC computing on-demand spatial relations in the CE recognition
process)." — Section 5.2.

Facts are asserted as events ``close_to_<kind>(Vessel, Area)``; the variant
rules join on them at the trigger's (already bound) timestamp, so rule
evaluation performs no geometry at all.
"""

from repro.maritime.adapter import EVENT_FUNCTORS
from repro.maritime.config import MaritimeConfig
from repro.maritime.predicates import (
    FishingStoppedIn,
    VesselsStoppedIn,
    make_close_predicate,
    make_fishing_predicate,
    make_shallow_predicate,
)
from repro.rtec.engine import ComputedFluent
from repro.rtec.rules import (
    End,
    EventPattern,
    Guard,
    HappensAt,
    HoldsAt,
    Rule,
    Start,
    StaticJoin,
    Var,
    happens_head,
    initiated,
    terminated,
)
from repro.rtec.working_memory import WorkingMemory
from repro.simulator.vessel import VesselSpec
from repro.simulator.world import Area, AreaKind, WorldModel
from repro.spatial.grid import StaticBoxIndex
from repro.tracking.types import MovementEvent

#: Fact functors per area category.
FACT_WATCH = "close_to_watch"
FACT_PROTECTED = "close_to_protected"
FACT_FORBIDDEN = "close_to_forbidden"
FACT_SHALLOW = "close_to_shallow"


def _category_indexes(
    world: WorldModel,
    threshold_meters: float,
    watch_areas: list[Area] | None,
) -> list[tuple[str, list[Area], StaticBoxIndex]]:
    """Per-category area lists with their point-in-area prefilters.

    The :class:`~repro.spatial.grid.StaticBoxIndex` over the threshold-
    expanded boxes is exactly conservative for ``is_close`` (which opens
    with the same expanded-box test) and preserves area-list order, so
    the produced facts are identical to a linear scan's.
    """
    watch = watch_areas if watch_areas is not None else world.areas
    categories = [
        (FACT_WATCH, list(watch)),
        (FACT_PROTECTED, world.areas_of_kind(AreaKind.PROTECTED)),
        (FACT_FORBIDDEN, world.areas_of_kind(AreaKind.FORBIDDEN_FISHING)),
        (FACT_SHALLOW, world.areas_of_kind(AreaKind.SHALLOW)),
    ]
    return [
        (
            functor,
            areas,
            StaticBoxIndex(
                (position, area.polygon.bbox.expanded(threshold_meters))
                for position, area in enumerate(areas)
            ),
        )
        for functor, areas in categories
    ]


def spatial_facts_for(
    event: MovementEvent,
    world: WorldModel,
    threshold_meters: float,
    watch_areas: list[Area] | None = None,
    indexes: list[tuple[str, list[Area], StaticBoxIndex]] | None = None,
) -> list[tuple[str, tuple, int]]:
    """The ``close_to`` facts accompanying one movement event.

    Returns ``(functor, (mmsi, area_name), timestamp)`` triples, one per
    (category, nearby-area) pair.  Pass ``indexes`` (from
    :func:`_category_indexes`) to amortize index construction over a
    batch of events.
    """
    if indexes is None:
        indexes = _category_indexes(world, threshold_meters, watch_areas)
    facts = []
    for functor, areas, index in indexes:
        for position in index.candidates(event.lon, event.lat):
            area = areas[position]
            if area.polygon.is_close(event.lon, event.lat, threshold_meters):
                facts.append((functor, (event.mmsi, area.name), event.timestamp))
    return facts


def assert_spatial_facts(
    memory: WorkingMemory,
    events: list[MovementEvent],
    world: WorldModel,
    threshold_meters: float,
    arrival_time: int | None = None,
    watch_areas: list[Area] | None = None,
) -> int:
    """Assert the facts for a slide's MEs; returns the fact count."""
    indexes = _category_indexes(world, threshold_meters, watch_areas)
    count = 0
    for event in events:
        if event.event_type not in EVENT_FUNCTORS:
            continue
        for functor, args, timestamp in spatial_facts_for(
            event, world, threshold_meters, watch_areas, indexes=indexes
        ):
            memory.assert_event(functor, args, timestamp, arrival=arrival_time)
            count += 1
    return count


def build_spatial_fact_rules(
    world: WorldModel,
    specs: dict[int, VesselSpec],
    config: MaritimeConfig | None = None,
    watch_areas: list[Area] | None = None,
) -> tuple[list[Rule], list[ComputedFluent]]:
    """The CE definitions rewritten over precomputed spatial facts.

    Mirrors :func:`repro.maritime.definitions.build_maritime_rules` rule for
    rule, with each ``coord`` lookup + ``close`` computation replaced by a
    bound-time join on the corresponding fact.
    """
    config = config or MaritimeConfig()
    watch = watch_areas if watch_areas is not None else list(world.areas)
    fishing = make_fishing_predicate(specs)
    shallow = make_shallow_predicate(world.areas_of_kind(AreaKind.SHALLOW), specs)

    vessel = Var("Vessel")
    area = Var("Area")
    count = Var("N")
    is_fishing = StaticJoin(fishing, inputs=("Vessel",), outputs=(), name="fishing")

    rules: list[Rule] = [
        initiated(
            "stopped", (vessel,), True,
            [HappensAt(EventPattern("stop_start", (vessel,)))],
        ),
        terminated(
            "stopped", (vessel,), True,
            [HappensAt(EventPattern("stop_end", (vessel,)))],
        ),
        # Scenario 1 — suspicious(Area)
        initiated(
            "suspicious", (area,), True,
            [
                HappensAt(Start("stopped", (vessel,), True)),
                HappensAt(EventPattern(FACT_WATCH, (vessel, area))),
                HoldsAt("vesselsStoppedIn", (area,), count),
                Guard(lambda n, k=config.suspicious_other_vessels: n >= k, ("N",)),
            ],
        ),
        terminated(
            "suspicious", (area,), True,
            [
                HappensAt(End("stopped", (vessel,), True)),
                HappensAt(EventPattern(FACT_WATCH, (vessel, area))),
                HoldsAt("vesselsStoppedIn", (area,), count),
                Guard(
                    lambda n, k=config.suspicious_other_vessels: n - 1 <= k, ("N",)
                ),
            ],
        ),
        # Scenario 2 — illegalFishing(Area)
        initiated(
            "illegalFishing", (area,), True,
            [
                HappensAt(Start("stopped", (vessel,), True)),
                is_fishing,
                HappensAt(EventPattern(FACT_FORBIDDEN, (vessel, area))),
            ],
        ),
        initiated(
            "illegalFishing", (area,), True,
            [
                HappensAt(EventPattern("slowMotion", (vessel,))),
                is_fishing,
                HappensAt(EventPattern(FACT_FORBIDDEN, (vessel, area))),
            ],
        ),
        terminated(
            "illegalFishing", (area,), True,
            [
                HappensAt(End("stopped", (vessel,), True)),
                is_fishing,
                HappensAt(EventPattern(FACT_FORBIDDEN, (vessel, area))),
                HoldsAt("fishingStoppedIn", (area,), count),
                Guard(lambda n: n - 1 <= 0, ("N",)),
            ],
        ),
        terminated(
            "illegalFishing", (area,), True,
            [
                HappensAt(EventPattern("speedChange", (vessel,))),
                is_fishing,
                HappensAt(EventPattern(FACT_FORBIDDEN, (vessel, area))),
                HoldsAt("fishingStoppedIn", (area,), count),
                Guard(lambda n: n == 0, ("N",)),
            ],
        ),
        # Scenario 3 — illegalShipping
        happens_head(
            "illegalShipping", (area, vessel),
            [
                HappensAt(EventPattern("gap", (vessel,))),
                HappensAt(EventPattern(FACT_PROTECTED, (vessel, area))),
            ],
        ),
        # Scenario 4 — dangerousShipping
        happens_head(
            "dangerousShipping", (area, vessel),
            [
                HappensAt(EventPattern("slowMotion", (vessel,))),
                HappensAt(EventPattern(FACT_SHALLOW, (vessel, area))),
                StaticJoin(
                    shallow, inputs=("Area", "Vessel"), outputs=(), name="shallow"
                ),
            ],
        ),
    ]

    computed: list[ComputedFluent] = [
        VesselsStoppedIn(
            make_close_predicate(watch, config.close_threshold_meters),
            area_names=[a.name for a in watch],
            fact_functor=FACT_WATCH,
        ),
        FishingStoppedIn(
            make_close_predicate(
                world.areas_of_kind(AreaKind.FORBIDDEN_FISHING),
                config.close_threshold_meters,
            ),
            fishing=lambda mmsi: fishing(mmsi),
            area_names=[
                a.name for a in world.areas_of_kind(AreaKind.FORBIDDEN_FISHING)
            ],
            fact_functor=FACT_FORBIDDEN,
        ),
    ]
    return rules, computed
