"""Bridge from the trajectory detection component into RTEC.

"The critical Movement Events (ME) computed by the trajectory detection
component are transmitted to the Complex Event Recognition module" together
with "the coordinates (Lon, Lat) of the vessel" at the time of ME detection
(Section 4.1).  The adapter asserts each ME into the engine's working memory
under the paper's ME vocabulary — ``gap``, ``slowMotion``, ``speedChange``,
``turn``, ``stop_start``/``stop_end`` (bracketing the durative ``stopped``)
— and records the ``coord`` fluent assignment that accompanies it.

The ``arrival_time`` of an assertion is the query time of the tracking slide
that emitted the ME, so events detected late (a stop is only recognized after
m reports) reach RTEC exactly as delayed events, as in Figure 5.
"""

from repro.rtec.working_memory import WorkingMemory
from repro.tracking.types import CriticalPoint, MovementEvent, MovementEventType

#: ME vocabulary: tracker event kind -> RTEC event functor.
EVENT_FUNCTORS = {
    MovementEventType.GAP_START: "gap",
    MovementEventType.GAP_END: "gap_end",
    MovementEventType.SLOW_MOTION: "slowMotion",
    MovementEventType.SPEED_CHANGE: "speedChange",
    MovementEventType.TURN: "turn",
    MovementEventType.SMOOTH_TURN: "turn",
    MovementEventType.STOP_START: "stop_start",
    MovementEventType.STOP_END: "stop_end",
}


class MovementEventAdapter:
    """Assert critical MEs into an RTEC working memory."""

    def __init__(self, memory: WorkingMemory):
        self.memory = memory
        self.events_ingested = 0

    def ingest_events(
        self, events: list[MovementEvent], arrival_time: int | None = None
    ) -> int:
        """Assert movement events; returns how many MEs were asserted.

        Pause and off-course events are not critical MEs and are skipped.
        """
        count = 0
        for event in events:
            functor = EVENT_FUNCTORS.get(event.event_type)
            if functor is None:
                continue
            self.memory.assert_event(
                functor, (event.mmsi,), event.timestamp, arrival=arrival_time
            )
            self.memory.assert_value(
                "coord",
                (event.mmsi,),
                (event.lon, event.lat),
                event.timestamp,
                arrival=arrival_time,
            )
            count += 1
        self.events_ingested += count
        return count

    def ingest_critical_points(
        self, points: list[CriticalPoint], arrival_time: int | None = None
    ) -> int:
        """Assert the MEs carried by critical-point annotations."""
        count = 0
        for point in points:
            asserted_coord = False
            for annotation in point.annotations:
                functor = EVENT_FUNCTORS.get(annotation)
                if functor is None:
                    continue
                self.memory.assert_event(
                    functor, (point.mmsi,), point.timestamp, arrival=arrival_time
                )
                if not asserted_coord:
                    self.memory.assert_value(
                        "coord",
                        (point.mmsi,),
                        (point.lon, point.lat),
                        point.timestamp,
                        arrival=arrival_time,
                    )
                    asserted_coord = True
                count += 1
        self.events_ingested += count
        return count
