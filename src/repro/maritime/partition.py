"""Spatial partitioning for parallel CE recognition (Section 5.2).

"One processor performed CE recognition for the areas located in, and the
vessels passing through the west part of the area under surveillance.
Similarly, the other processor performed CE recognition for the areas
located in, and the vessels passing through the east part...  The input MEs
are forwarded to the appropriate processor (according to vessel location)."

:func:`partition_world` slices the monitored region into longitude bands;
:class:`PartitionedRecognizer` runs one engine per band, routes each ME by
its longitude, and reports per-partition recognition times.

Two very different "parallel" figures exist, and they must not be
conflated:

* **Simulated** — :class:`PartitionedRecognizer` runs its engines
  *sequentially* in one process; the
  :attr:`PartitionStepTiming.parallel_seconds` it reports is the maximum
  over partitions, i.e. the wall-clock an ideal deployment *would* see.
  This matches the paper's per-processor measurement but involves no
  actual concurrency.
* **Measured** — under :mod:`repro.runtime`, each band engine runs on its
  own worker process and
  :attr:`PartitionStepTiming.measured_parallel_seconds` is the true
  wall-clock of the concurrent recognition step, inter-process overheads
  included.  :class:`~repro.runtime.system.ParallelSurveillanceSystem`
  fills it in on every slide (``last_partition_timing``).
"""

from dataclasses import dataclass

from repro.maritime.config import MaritimeConfig
from repro.maritime.recognizer import Alert, MaritimeRecognizer
from repro.rtec.engine import RecognitionResult
from repro.simulator.vessel import VesselSpec
from repro.simulator.world import BoundingBox, WorldModel
from repro.tracking.types import MovementEvent


def partition_world(world: WorldModel, partitions: int) -> list[WorldModel]:
    """Slice a world into equal-width longitude bands.

    Areas are assigned to the band containing their centroid; ports are
    shared (they only matter offline).  Two bands reproduce the paper's
    east/west setup.
    """
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    if partitions == 1:
        return [world]
    width = (world.bbox.max_lon - world.bbox.min_lon) / partitions
    bands: list[WorldModel] = []
    for index in range(partitions):
        lo = world.bbox.min_lon + index * width
        hi = world.bbox.min_lon + (index + 1) * width
        bands.append(
            WorldModel(
                BoundingBox(lo, world.bbox.min_lat, hi, world.bbox.max_lat),
                ports=list(world.ports),
                areas=[
                    area
                    for area in world.areas
                    if lo <= area.polygon.centroid[0] < hi
                    or (index == partitions - 1 and area.polygon.centroid[0] == hi)
                ],
            )
        )
    return bands


@dataclass
class PartitionStepTiming:
    """Per-partition recognition cost of one query step.

    ``measured_parallel_seconds`` stays ``None`` when the partitions ran
    sequentially in-process (the :class:`PartitionedRecognizer` default);
    the process-parallel runtime sets it to the real wall-clock of the
    concurrent step, which includes routing and IPC and therefore upper-
    bounds the simulated :attr:`parallel_seconds`.
    """

    per_partition_seconds: list[float]
    measured_parallel_seconds: float | None = None

    @property
    def sequential_seconds(self) -> float:
        """Single-processor equivalent: the sum over partitions."""
        return sum(self.per_partition_seconds)

    @property
    def parallel_seconds(self) -> float:
        """*Simulated* parallel wall-clock: the slowest partition."""
        return max(self.per_partition_seconds) if self.per_partition_seconds else 0.0


class PartitionedRecognizer:
    """CE recognition over longitude-partitioned engines.

    The engines run sequentially in the calling process; the "parallel"
    figure of :meth:`step` is therefore *simulated* (max over partitions).
    For genuinely concurrent band recognition — with the measured
    wall-clock reported alongside the simulation — run the pipeline under
    :class:`repro.runtime.ParallelSurveillanceSystem`.
    """

    def __init__(
        self,
        world: WorldModel,
        specs: dict[int, VesselSpec],
        window_seconds: int,
        partitions: int = 2,
        config: MaritimeConfig | None = None,
        spatial_facts: bool = False,
    ):
        self.bands = partition_world(world, partitions)
        self.recognizers = [
            MaritimeRecognizer(
                band, specs, window_seconds, config, spatial_facts=spatial_facts
            )
            for band in self.bands
        ]

    def ingest(
        self, events: list[MovementEvent], arrival_time: int | None = None
    ) -> int:
        """Route each ME to the partition covering its longitude."""
        count = 0
        for event in events:
            recognizer = self._route(event.lon)
            count += recognizer.ingest([event], arrival_time)
        return count

    def step(
        self, query_time: int
    ) -> tuple[list[RecognitionResult], PartitionStepTiming]:
        """Run every partition's recognition; report per-partition timings."""
        results = []
        timings = []
        for recognizer in self.recognizers:
            results.append(recognizer.step(query_time))
            timings.append(recognizer.last_step_seconds)
        return results, PartitionStepTiming(timings)

    def alerts(self) -> list[Alert]:
        """Union of the partitions' alerts."""
        merged: list[Alert] = []
        for recognizer in self.recognizers:
            merged.extend(recognizer.alerts())
        merged.sort(key=lambda alert: (alert.since, alert.kind, alert.area))
        return merged

    def _route(self, lon: float) -> MaritimeRecognizer:
        for band, recognizer in zip(self.bands, self.recognizers):
            if lon < band.bbox.max_lon:
                return recognizer
        return self.recognizers[-1]
