"""The maritime event description: CE definitions of Section 4.1.

The rules below transcribe the paper's rule-sets (3)-(6) into the engine's
rule language.  Deviations, each documented inline:

* CE heads carry the vessel as an extra argument (``illegalShipping(Area,
  Vessel)`` instead of ``illegalShipping(Area)``) so that alerts are
  actionable; recognition counts are unaffected for the benchmarks.
* The paper omits the ``illegalFishing`` termination rules "to save space";
  we formalize the two conditions it names — no fishing vessels remain in
  the forbidden area, or their movement no longer allows fishing — using
  the ``fishingStoppedIn`` counter fluent.
* Counting fencepost: a fluent initiated at T holds from T+1, so at the
  instant a vessel's ``start(stopped)`` triggers rule-set (3) the counter
  does not yet include that vessel; the guard therefore asks for
  ``suspicious_other_vessels`` (default 3) *other* vessels — at least four
  stopped vessels in total, as the domain experts specified.
"""

from repro.maritime.config import MaritimeConfig
from repro.maritime.predicates import (
    FishingStoppedIn,
    VesselsStoppedIn,
    make_close_predicate,
    make_fishing_predicate,
    make_shallow_predicate,
)
from repro.rtec.engine import ComputedFluent
from repro.rtec.rules import (
    End,
    EventPattern,
    Guard,
    HappensAt,
    HoldsAt,
    Rule,
    Start,
    StaticJoin,
    Var,
    happens_head,
    initiated,
    terminated,
)
from repro.maritime.pairwise.rules import (
    PAIRWISE_OUTPUT_EVENTS,
    PAIRWISE_OUTPUT_FLUENTS,
)
from repro.simulator.vessel import VesselSpec
from repro.simulator.world import Area, AreaKind, WorldModel

#: CE fluents and events reported to the authorities.
OUTPUT_FLUENTS = ["suspicious", "illegalFishing"]
OUTPUT_EVENTS = ["illegalShipping", "dangerousShipping"]

#: Recognition scopes.  ``full`` is the paper's rule set; ``vessel``
#: keeps only the CEs whose bodies reference a single vessel — the
#: per-area counter fluents (``vesselsStoppedIn``, ``fishingStoppedIn``)
#: aggregate over *every* vessel near an area, so the ``suspicious`` and
#: ``illegalFishing`` rule-sets are not MMSI-decomposable and are gated
#: out when recognition is sharded across independent runtimes
#: (docs/GATEWAY.md).
CE_SCOPES = ("full", "vessel")

#: The full CE vocabulary, vessel-vs-area plus the pairwise layer
#: (:mod:`repro.maritime.pairwise`); the HTTP alert filter validates
#: ``?type=`` names against this.
ALL_CE_NAMES = tuple(
    OUTPUT_FLUENTS
    + OUTPUT_EVENTS
    + PAIRWISE_OUTPUT_FLUENTS
    + PAIRWISE_OUTPUT_EVENTS
)


def build_maritime_rules(
    world: WorldModel,
    specs: dict[int, VesselSpec],
    config: MaritimeConfig | None = None,
    watch_areas: list[Area] | None = None,
    scope: str = "full",
) -> tuple[list[Rule], list[ComputedFluent]]:
    """Assemble the full event description for a world and fleet.

    ``watch_areas`` restricts the ``suspicious`` CE (officials "restrict
    computation ... to these areas"); it defaults to every area of the
    world.  ``scope`` selects between the paper's full rule set and the
    MMSI-decomposable ``vessel`` subset (see :data:`CE_SCOPES`).  Returns
    the rules plus the computed counter fluents to register.
    """
    if scope not in CE_SCOPES:
        raise ValueError(f"scope must be one of {CE_SCOPES}: {scope!r}")
    config = config or MaritimeConfig()
    watch = watch_areas if watch_areas is not None else list(world.areas)
    threshold = config.close_threshold_meters

    close_watch = make_close_predicate(watch, threshold)
    close_protected = make_close_predicate(
        world.areas_of_kind(AreaKind.PROTECTED), threshold
    )
    close_forbidden = make_close_predicate(
        world.areas_of_kind(AreaKind.FORBIDDEN_FISHING), threshold
    )
    close_shallow = make_close_predicate(
        world.areas_of_kind(AreaKind.SHALLOW), threshold
    )
    fishing = make_fishing_predicate(specs)
    shallow = make_shallow_predicate(world.areas_of_kind(AreaKind.SHALLOW), specs)

    vessel = Var("Vessel")
    area = Var("Area")
    lon = Var("Lon")
    lat = Var("Lat")
    count = Var("N")

    coord_lookup = HoldsAt("coord", (vessel,), (lon, lat))
    is_fishing = StaticJoin(fishing, inputs=("Vessel",), outputs=(), name="fishing")

    rules: list[Rule] = []

    # ----- input durative ME: stopped(Vessel) --------------------------
    # The tracker brackets long-term stops with stop_start/stop_end MEs.
    rules.append(
        initiated(
            "stopped", (vessel,), True,
            [HappensAt(EventPattern("stop_start", (vessel,)))],
        )
    )
    rules.append(
        terminated(
            "stopped", (vessel,), True,
            [HappensAt(EventPattern("stop_end", (vessel,)))],
        )
    )

    if scope == "full":
        # ----- Scenario 1: suspicious(Area) — rule-set (3) --------------
        rules.append(
            initiated(
                "suspicious", (area,), True,
                [
                    HappensAt(Start("stopped", (vessel,), True)),
                    coord_lookup,
                    StaticJoin(close_watch, inputs=("Lon", "Lat"), outputs=("Area",)),
                    HoldsAt("vesselsStoppedIn", (area,), count),
                    Guard(
                        lambda n, k=config.suspicious_other_vessels: n >= k, ("N",)
                    ),
                ],
            )
        )
        rules.append(
            terminated(
                "suspicious", (area,), True,
                [
                    HappensAt(End("stopped", (vessel,), True)),
                    coord_lookup,
                    StaticJoin(close_watch, inputs=("Lon", "Lat"), outputs=("Area",)),
                    HoldsAt("vesselsStoppedIn", (area,), count),
                    # The departing vessel is still counted at its
                    # end(stopped) instant, so N - 1 vessels remain.
                    Guard(
                        lambda n, k=config.suspicious_other_vessels: n - 1 <= k,
                        ("N",),
                    ),
                ],
            )
        )

        # ----- Scenario 2: illegalFishing(Area) — rule-set (4) ----------
        rules.append(
            initiated(
                "illegalFishing", (area,), True,
                [
                    HappensAt(Start("stopped", (vessel,), True)),
                    is_fishing,
                    coord_lookup,
                    StaticJoin(close_forbidden, inputs=("Lon", "Lat"), outputs=("Area",)),
                ],
            )
        )
        rules.append(
            initiated(
                "illegalFishing", (area,), True,
                [
                    HappensAt(EventPattern("slowMotion", (vessel,))),
                    is_fishing,
                    coord_lookup,
                    StaticJoin(close_forbidden, inputs=("Lon", "Lat"), outputs=("Area",)),
                ],
            )
        )
        # Termination (the paper sketches the conditions): no fishing
        # vessels remain stopped in the area...
        rules.append(
            terminated(
                "illegalFishing", (area,), True,
                [
                    HappensAt(End("stopped", (vessel,), True)),
                    is_fishing,
                    coord_lookup,
                    StaticJoin(close_forbidden, inputs=("Lon", "Lat"), outputs=("Area",)),
                    HoldsAt("fishingStoppedIn", (area,), count),
                    Guard(lambda n: n - 1 <= 0, ("N",)),
                ],
            )
        )
        # ... or a fishing vessel speeds up (movement no longer allows
        # fishing) while no fishing vessel is stopped there.
        rules.append(
            terminated(
                "illegalFishing", (area,), True,
                [
                    HappensAt(EventPattern("speedChange", (vessel,))),
                    is_fishing,
                    coord_lookup,
                    StaticJoin(close_forbidden, inputs=("Lon", "Lat"), outputs=("Area",)),
                    HoldsAt("fishingStoppedIn", (area,), count),
                    Guard(lambda n: n == 0, ("N",)),
                ],
            )
        )

    # ----- Scenario 3: illegalShipping — rule (5) ------------------------
    rules.append(
        happens_head(
            "illegalShipping", (area, vessel),
            [
                HappensAt(EventPattern("gap", (vessel,))),
                coord_lookup,
                StaticJoin(close_protected, inputs=("Lon", "Lat"), outputs=("Area",)),
            ],
        )
    )

    # ----- Scenario 4: dangerousShipping — rule (6) ----------------------
    rules.append(
        happens_head(
            "dangerousShipping", (area, vessel),
            [
                HappensAt(EventPattern("slowMotion", (vessel,))),
                coord_lookup,
                StaticJoin(close_shallow, inputs=("Lon", "Lat"), outputs=("Area",)),
                StaticJoin(
                    shallow, inputs=("Area", "Vessel"), outputs=(), name="shallow"
                ),
            ],
        )
    )

    computed: list[ComputedFluent] = []
    if scope == "full":
        # The counter fluents only back the aggregate rule-sets above.
        computed = [
            VesselsStoppedIn(close_watch, area_names=[a.name for a in watch]),
            FishingStoppedIn(
                close_forbidden,
                fishing=lambda mmsi: fishing(mmsi),
                area_names=[
                    a.name
                    for a in world.areas_of_kind(AreaKind.FORBIDDEN_FISHING)
                ],
            ),
        ]
    return rules, computed
