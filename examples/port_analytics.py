"""Offline trajectory analytics over the Moving Objects Database.

Replays a day of traffic through the pipeline, then runs the Section 3.3
analytics against the archive: Table-4 trip statistics, the
origin-destination matrix, per-vessel travel summaries, spatiotemporal trip
clustering, and the range / nearest-neighbour query operators.

Run::

    python examples/port_analytics.py
"""

from repro import (
    FleetSimulator,
    StreamReplayer,
    SurveillanceSystem,
    SystemConfig,
    TimedArrival,
    WindowSpec,
    build_aegean_world,
    compute_od_matrix,
    compute_trip_statistics,
)
from repro.geo.polygon import BoundingBox
from repro.mod.analytics import vessel_travel_summary
from repro.mod.clustering import cluster_trips
from repro.mod.queries import nearest_neighbors, range_query


def main() -> None:
    world = build_aegean_world()
    simulator = FleetSimulator(world, seed=101, duration_seconds=24 * 3600)
    fleet = simulator.build_mixed_fleet(60)
    specs = {vessel.mmsi: vessel.spec for vessel in fleet}

    config = SystemConfig(
        window=WindowSpec.of_hours(2, 1), enable_recognition=False
    )
    system = SurveillanceSystem(world, specs, config)
    stream = simulator.positions(fleet)
    replayer = StreamReplayer(
        [TimedArrival(p.timestamp, p) for p in stream], slide_seconds=3600
    )
    for query_time, batch in replayer.batches():
        system.process_slide(batch, query_time)
    system.finalize()
    mod = system.database

    print("=== Table 4: trip statistics ===")
    print(compute_trip_statistics(mod).format_table())

    print("\n=== Origin-destination matrix: busiest itineraries ===")
    matrix = compute_od_matrix(mod)
    for (origin, destination), trips in matrix.busiest(5):
        cell = matrix.cells[(origin, destination)]
        hours = cell["average_travel_time_seconds"] / 3600.0
        km = cell["average_distance_meters"] / 1000.0
        print(
            f"  {origin or '<unknown>':>12} -> {destination:<12} "
            f"{trips} trips, avg {hours:.1f} h / {km:.0f} km"
        )

    busiest_vessel = max(
        {trip["mmsi"] for trip in mod.all_trips()},
        key=lambda mmsi: len(mod.trips_of_vessel(mmsi)),
        default=None,
    )
    if busiest_vessel is not None:
        print(f"\n=== Travel summary for vessel {busiest_vessel} ===")
        summary = vessel_travel_summary(mod, busiest_vessel)
        print(f"  trips: {summary['trips']}")
        print(f"  distance: {summary['total_distance_meters'] / 1000:.0f} km")
        print(f"  at sea: {summary['total_travel_time_seconds'] / 3600:.1f} h")
        print(f"  ports: {', '.join(summary['ports_visited'])}")

    print("\n=== Spatiotemporal trip clusters ===")
    clusters = cluster_trips(mod, epsilon_meters=10_000.0)
    for index, cluster in enumerate(clusters):
        print(f"  cluster {index}: trips {cluster}")
    if not clusters:
        print("  (no recurrent itineraries at this scale)")

    print("\n=== Spatiotemporal queries ===")
    piraeus = world.port_by_name("piraeus")
    box = BoundingBox(
        piraeus.lon - 0.3, piraeus.lat - 0.3, piraeus.lon + 0.3, piraeus.lat + 0.3
    )
    hits = range_query(mod, box, 0, 24 * 3600)
    print(f"  archived points near Piraeus (+-0.3 deg, full day): {len(hits)}")
    neighbors = nearest_neighbors(
        mod, piraeus.lon, piraeus.lat, 6 * 3600, k=3, time_tolerance=3600
    )
    for mmsi, distance in neighbors:
        print(f"  nearest t=6h: vessel {mmsi} at {distance / 1000:.1f} km")


if __name__ == "__main__":
    main()
