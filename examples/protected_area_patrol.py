"""Scenario 3 of the paper: catching transponder-silent protected-area runs.

Tankers minimizing fuel cut through marine parks with their AIS transmitters
switched off, claiming breakdowns.  The gap ME fires where the silence began
and ``illegalShipping(Area)`` is recognized when that point is close to a
protected area — this script shows the whole chain, including the raw gap
events the tracker detected.

Run::

    python examples/protected_area_patrol.py
"""

from repro import (
    FleetSimulator,
    MaritimeRecognizer,
    MobilityTracker,
    MovementEventType,
    StreamReplayer,
    TimedArrival,
    build_aegean_world,
)


def main() -> None:
    world = build_aegean_world()
    simulator = FleetSimulator(world, seed=42, duration_seconds=5 * 3600)
    offenders = simulator.build_scenario_illegal_shipping(3)
    # Honest traffic shares the sea: it must not be flagged.
    honest = simulator.build_mixed_fleet(15, deviant_fraction=0.0)
    fleet = offenders + honest
    specs = {vessel.mmsi: vessel.spec for vessel in fleet}
    print("deviant tankers:", [vessel.mmsi for vessel in offenders])

    tracker = MobilityTracker()
    recognizer = MaritimeRecognizer(world, specs, window_seconds=5 * 3600)

    stream = simulator.positions(fleet)
    replayer = StreamReplayer(
        [TimedArrival(p.timestamp, p) for p in stream], slide_seconds=1800
    )
    query_time = 0
    for query_time, batch in replayer.batches():
        events = tracker.process_batch(batch)
        for event in events:
            if event.event_type is MovementEventType.GAP_START:
                print(
                    f"t={event.timestamp:>6}s  vessel {event.mmsi} went "
                    f"silent at ({event.lon:.3f}, {event.lat:.3f}) for "
                    f"{event.duration_seconds}s"
                )
        recognizer.ingest(events, arrival_time=query_time)
        recognizer.step(query_time)

    recognizer.ingest(tracker.finalize(), arrival_time=query_time)
    result = recognizer.step(query_time)

    print("\nrecognized complex events:")
    shipping_alerts = [
        alert
        for alert in recognizer.alerts(result)
        if alert.kind == "illegalShipping"
    ]
    for alert in shipping_alerts:
        print(
            f"  illegalShipping: vessel {alert.mmsi} near protected area "
            f"{alert.area!r} at t={alert.since}s"
        )
    flagged = {alert.mmsi for alert in shipping_alerts}
    print(f"\nflagged vessels: {sorted(flagged)}")
    honest_flagged = flagged & {vessel.mmsi for vessel in honest}
    print(f"honest vessels wrongly flagged: {sorted(honest_flagged) or 'none'}")


if __name__ == "__main__":
    main()
