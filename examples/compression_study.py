"""Trajectory compression versus accuracy: the Figures 8/9 trade-off, live.

Sweeps the turn threshold Delta-theta over the paper's grid, reporting the
critical-point volume, compression ratio, and synchronized RMSE per value,
then exports the Delta-theta = 15 synopsis as KML and GeoJSON for map
display.

Run::

    python examples/compression_study.py
"""

import json
from collections import defaultdict
from pathlib import Path

from repro import (
    FleetSimulator,
    MobilityTracker,
    TrackingParameters,
    TrajectoryExporter,
    build_aegean_world,
    fleet_rmse,
)
from repro.tracking.compressor import merge_events_into_critical_points

OUTPUT_DIR = Path(__file__).parent / "out"


def compress(stream, threshold):
    """Full-history critical points per vessel at one turn threshold."""
    tracker = MobilityTracker(
        TrackingParameters(turn_threshold_degrees=threshold)
    )
    events = tracker.process_batch(stream) + tracker.finalize()
    points = merge_events_into_critical_points(events)
    synopses = defaultdict(list)
    for point in points:
        synopses[point.mmsi].append(point)
    return dict(synopses), points


def main() -> None:
    world = build_aegean_world()
    simulator = FleetSimulator(world, seed=3, duration_seconds=12 * 3600)
    fleet = simulator.build_mixed_fleet(30)
    stream = simulator.positions(fleet)
    originals = defaultdict(list)
    for position in stream:
        originals[position.mmsi].append(position)

    print(f"{len(stream)} raw positions from {len(fleet)} vessels over 12 h\n")
    print("delta_theta  critical_pts  compression  avg_rmse_m  max_rmse_m")
    keep = None
    for threshold in (5.0, 10.0, 15.0, 20.0):
        synopses, points = compress(stream, threshold)
        error = fleet_rmse(dict(originals), synopses)
        ratio = 1.0 - len(points) / len(stream)
        print(
            f"{threshold:>11.0f}  {len(points):>12}  {ratio:>10.1%}  "
            f"{error.average:>10.1f}  {error.maximum:>10.1f}"
        )
        if threshold == 15.0:
            keep = points

    OUTPUT_DIR.mkdir(exist_ok=True)
    exporter = TrajectoryExporter()
    kml_path = OUTPUT_DIR / "synopses.kml"
    kml_path.write_text(exporter.to_kml(keep))
    geojson_path = OUTPUT_DIR / "synopses.geojson"
    geojson_path.write_text(json.dumps(exporter.to_geojson(keep), indent=2))
    print(f"\nexported {kml_path} and {geojson_path}")


if __name__ == "__main__":
    main()
