"""Retrospective end-of-day review with partitioned recognition.

Section 4.2: "CE recognition may be performed retrospectively — e.g., at
the end of each day in order to evaluate the activity of a particular fleet
of vessels."  This script records a full day of movement events, replays
recognition over the whole history after the fact, and compares a
single-engine run against the east/west two-partition setup of Section 5.2
— same alerts, roughly half the per-query cost.

Run::

    python examples/daily_review.py
"""

from repro import (
    FleetSimulator,
    MobilityTracker,
    PartitionedRecognizer,
    StreamReplayer,
    TimedArrival,
    build_aegean_world,
)


def review(world, specs, batches, partitions):
    """Replay a day of ME batches; return (alerts, avg step seconds)."""
    recognizer = PartitionedRecognizer(
        world, specs, window_seconds=6 * 3600, partitions=partitions
    )
    costs = []
    for query_time, events in batches:
        recognizer.ingest(events, arrival_time=query_time)
        _, timing = recognizer.step(query_time)
        costs.append(timing.parallel_seconds)
    return recognizer.alerts(), sum(costs) / len(costs)


def main() -> None:
    world = build_aegean_world()
    simulator = FleetSimulator(world, seed=99, duration_seconds=24 * 3600)
    fleet = simulator.build_mixed_fleet(80)
    specs = {vessel.mmsi: vessel.spec for vessel in fleet}
    stream = simulator.positions(fleet)
    print(f"reviewing one day: {len(fleet)} vessels, {len(stream)} positions")

    # Phase 1 (during the day): tracking ran online; the critical MEs were
    # logged per hourly slide.
    tracker = MobilityTracker()
    batches = []
    replayer = StreamReplayer(
        [TimedArrival(p.timestamp, p) for p in stream], slide_seconds=3600
    )
    for query_time, batch in replayer.batches():
        batches.append((query_time, tracker.process_batch(batch)))
    final = tracker.finalize()
    if final:
        batches[-1] = (batches[-1][0], batches[-1][1] + final)
    total_mes = sum(len(events) for _, events in batches)
    print(f"logged movement events: {total_mes} "
          f"({len(stream) / max(1, total_mes):.0f} positions per ME)\n")

    # Phase 2 (after midnight): retrospective recognition, 1 vs 2 engines.
    single_alerts, single_cost = review(world, specs, batches, partitions=1)
    split_alerts, split_cost = review(world, specs, batches, partitions=2)

    print(f"single engine : {len(single_alerts)} alerts, "
          f"{single_cost * 1000:.1f} ms per query")
    print(f"east/west pair: {len(split_alerts)} alerts, "
          f"{split_cost * 1000:.1f} ms per query (parallel)")

    print("\nthe day's incident log:")
    for alert in single_alerts:
        until = "ongoing" if alert.until is None else f"t={alert.until}"
        vessel = f", vessel {alert.mmsi}" if alert.mmsi else ""
        print(f"  [{alert.kind}] area {alert.area}: t={alert.since} .. {until}{vessel}")
    if not single_alerts:
        print("  (a quiet day at sea)")


if __name__ == "__main__":
    main()
