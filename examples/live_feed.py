"""Feed-replay client: stream a simulated fleet to the live service.

Simulates the same deterministic fleet the server built (match the
``--vessels``/``--seed``/``--hours`` values of ``python -m repro --serve``),
encodes every position as a timestamped ``!AIVDM`` sentence, and streams
the whole thing to the service's ingest port over a pluggable transport
(``--transport tcp`` is the classic newline wire; ``--transport
websocket`` speaks RFC 6455 text frames — match the server's
``--ingest-transport``).  Optionally subscribes to the alert feed
concurrently, over the same transport, and prints each slide's alerts as
the server recognizes them.

Run (against ``python -m repro --serve --port 10110 --vessels 30 --hours 4``)::

    python examples/live_feed.py --port 10110 --vessels 30 --hours 4
    python examples/live_feed.py --port 10110 --subscribe   # also print alerts
    python examples/live_feed.py --port 10110 --rate 5000   # sentences/sec cap
    python examples/live_feed.py --port 10110 --transport websocket
    python examples/live_feed.py --port 10110 --resume      # survive restarts

The client sends a fraction of type-19 reports split into two-fragment
sentence groups, exercising the scanner's reassembly path end to end.
"""

import argparse
import asyncio
import json
import sys
import time

from repro import FleetSimulator, build_aegean_world
from repro.ais import (
    PositionReport,
    encode_position_report,
    wrap_aivdm,
    wrap_aivdm_fragments,
)
from repro.service import ResumableFeedReader, format_ingest_line
from repro.transport import create_transport


def build_sentences(
    vessels: int, hours: float, seed: int, fragment_every: int = 0
) -> list[str]:
    """Encode a deterministic fleet's stream as timestamped ingest lines.

    ``fragment_every`` > 0 turns every N-th report into a two-fragment
    type-19 sentence group (both lines share the report's timestamp).
    """
    world = build_aegean_world()
    simulator = FleetSimulator(
        world, seed=seed, duration_seconds=int(hours * 3600)
    )
    fleet = simulator.build_mixed_fleet(vessels)
    lines = []
    for index, position in enumerate(simulator.positions(fleet)):
        fragmented = fragment_every and index % fragment_every == 0
        report = PositionReport(
            message_type=19 if fragmented else 1,
            mmsi=position.mmsi,
            lon=position.lon,
            lat=position.lat,
            speed_knots=10.0,
            course_degrees=90.0,
            second_of_minute=position.timestamp % 60,
        )
        payload, fill = encode_position_report(report)
        if fragmented:
            for sentence in wrap_aivdm_fragments(
                payload, fill, message_id=index % 10
            ):
                lines.append(format_ingest_line(position.timestamp, sentence))
        else:
            lines.append(
                format_ingest_line(
                    position.timestamp, wrap_aivdm(payload, fill)
                )
            )
    return lines


async def stream_sentences(
    transport_name: str,
    host: str,
    port: int,
    lines: list[str],
    rate: float = 0.0,
) -> float:
    """Send every line over one ingest session; returns the wall seconds."""
    session = await create_transport(transport_name).connect(
        host, port, "ingest"
    )
    started = time.perf_counter()
    interval = 1.0 / rate if rate > 0 else 0.0
    try:
        for line in lines:
            await session.send(line)
            if interval:
                await asyncio.sleep(interval)
    finally:
        await session.close()
    return time.perf_counter() - started


def _print_alerts(line: str) -> int:
    """Print one slide's alerts; returns how many there were."""
    payload = json.loads(line)
    alerts = payload.get("alerts", [])
    for alert in alerts:
        vessel = f" vessel={alert['mmsi']}" if alert.get("mmsi") else ""
        print(
            f"  [t={payload['query_time']:>6}] "
            f"{alert['kind']} @ {alert['area']}{vessel}"
        )
    return len(alerts)


async def subscribe_feed(
    transport_name: str, host: str, port: int, stop: asyncio.Event
) -> int:
    """Print alerts from the subscription feed until the server closes it."""
    session = await create_transport(transport_name).connect(
        host, port, "feed"
    )
    alerts_seen = 0
    try:
        while True:
            line = await session.receive()
            if line is None:
                break
            alerts_seen += _print_alerts(line)
            if stop.is_set():
                break
    finally:
        await session.close()
    return alerts_seen


async def subscribe_feed_resumable(
    transport_name: str, host: str, port: int, stop: asyncio.Event
) -> int:
    """Like :func:`subscribe_feed`, but survives server restarts: speaks
    the ``RESUME`` handshake (docs/SERVICE.md), reconnects with seeded
    backoff, and skips already-seen sequence numbers, so the printed
    alert stream is gapless and duplicate-free across interruptions."""
    reader = ResumableFeedReader(transport_name, host, port)
    alerts_seen = 0
    try:
        async for line in reader.lines():
            alerts_seen += _print_alerts(line)
            if stop.is_set():
                break
    finally:
        reader.stop()
    if reader.reconnects:
        print(
            f"feed resumed {reader.reconnects} time(s); "
            f"last sequence {reader.last_seq}"
        )
    return alerts_seen


async def run(args: argparse.Namespace) -> int:
    lines = build_sentences(
        args.vessels, args.hours, args.seed, args.fragment_every
    )
    print(
        f"streaming {len(lines)} sentences to "
        f"{args.host}:{args.port} over {args.transport}"
        + (f" at <= {args.rate:g}/s" if args.rate else " (unpaced)")
    )
    stop = asyncio.Event()
    subscriber = None
    if args.subscribe or args.resume:
        subscribe = subscribe_feed_resumable if args.resume else subscribe_feed
        subscriber = asyncio.ensure_future(
            subscribe(args.transport, args.host, args.port + 1, stop)
        )
        await asyncio.sleep(0.1)  # subscribe before the first slide lands
    seconds = await stream_sentences(
        args.transport, args.host, args.port, lines, args.rate
    )
    print(f"sent {len(lines)} sentences in {seconds:.2f}s "
          f"({len(lines) / seconds:.0f}/s)")
    if subscriber is not None:
        # Leave the feed open briefly for in-flight slides, then detach.
        await asyncio.sleep(args.linger)
        stop.set()
        subscriber.cancel()
        try:
            alerts = await subscriber
            print(f"feed delivered {alerts} alerts")
        except asyncio.CancelledError:
            pass
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Replay a simulated fleet into the live service"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=10110,
                        help="the service's ingest port (feed is PORT+1)")
    parser.add_argument("--transport", choices=("tcp", "websocket"),
                        default="tcp",
                        help="wire protocol for both directions; MUST "
                             "match the server's --ingest-transport / "
                             "--feed-transport")
    parser.add_argument("--vessels", type=int, default=30,
                        help="fleet size; MUST match the server's")
    parser.add_argument("--hours", type=float, default=4.0,
                        help="simulated hours of traffic")
    parser.add_argument("--seed", type=int, default=7,
                        help="simulation seed; MUST match the server's")
    parser.add_argument("--rate", type=float, default=0.0,
                        help="max sentences/sec (0 = unpaced)")
    parser.add_argument("--fragment-every", type=int, default=50,
                        help="send every N-th report as a 2-fragment "
                             "type-19 group (0 = never)")
    parser.add_argument("--subscribe", action="store_true",
                        help="also subscribe to the alert feed and print "
                             "alerts as slides complete")
    parser.add_argument("--resume", action="store_true",
                        help="like --subscribe, but speak the RESUME "
                             "handshake and reconnect with backoff so the "
                             "alert stream survives server restarts "
                             "gaplessly")
    parser.add_argument("--linger", type=float, default=2.0,
                        help="seconds to keep the feed open after sending")
    return asyncio.run(run(parser.parse_args()))


if __name__ == "__main__":
    sys.exit(main())
