"""Quickstart: the full surveillance pipeline in ~40 lines.

Simulates a small mixed fleet over the Aegean-like world, replays its AIS
positions through the Figure-1 pipeline (tracker -> compressor -> RTEC ->
MOD), and prints the per-slide activity plus every alert raised.

Run::

    python examples/quickstart.py
"""

from repro import (
    FleetSimulator,
    StreamReplayer,
    SurveillanceSystem,
    SystemConfig,
    TimedArrival,
    WindowSpec,
    build_aegean_world,
    compute_trip_statistics,
)


def main() -> None:
    world = build_aegean_world()
    simulator = FleetSimulator(world, seed=7, duration_seconds=6 * 3600)
    fleet = simulator.build_mixed_fleet(40)
    specs = {vessel.mmsi: vessel.spec for vessel in fleet}

    config = SystemConfig(window=WindowSpec.of_hours(2, 0.5))
    system = SurveillanceSystem(world, specs, config)

    stream = simulator.positions(fleet)
    print(f"fleet: {len(fleet)} vessels, {len(stream)} AIS positions over 6h\n")

    replayer = StreamReplayer(
        [TimedArrival(p.timestamp, p) for p in stream],
        slide_seconds=config.window.slide_seconds,
    )
    for query_time, batch in replayer.batches():
        report = system.process_slide(batch, query_time)
        print(
            f"t={query_time:>6}s  positions={report.raw_positions:>5}  "
            f"events={report.movement_events:>4}  "
            f"critical={report.fresh_critical_points:>3}  "
            f"CEs={report.recognized_complex_events:>3}  "
            f"({report.total_seconds * 1000:.1f} ms)"
        )
        for alert in report.alerts:
            window = (
                f"[{alert.since}..{alert.until}]"
                if alert.until is not None
                else f"[{alert.since}.. ongoing]"
            )
            vessel = f" vessel={alert.mmsi}" if alert.mmsi else ""
            print(f"     ALERT {alert.kind} in {alert.area} {window}{vessel}")

    system.finalize()
    ratio = system.compressor.statistics.compression_ratio
    print(f"\ncompression ratio: {ratio:.1%} of raw positions dropped")
    print("\narchived trip statistics (Table 4 layout):")
    print(compute_trip_statistics(system.database).format_table())


if __name__ == "__main__":
    main()
