"""Scenarios 2 and 4: illegal fishing and dangerously shallow shipping.

Trawlers working forbidden-fishing grounds move "too slowly" for transit;
deep-draft ships creeping across shoals risk grounding.  Both hinge on the
slow-motion ME combined with static knowledge (fishing designation, vessel
draft versus charted depth).

Run::

    python examples/fishing_watch.py
"""

from repro import (
    FleetSimulator,
    MaritimeRecognizer,
    MobilityTracker,
    StreamReplayer,
    TimedArrival,
    build_aegean_world,
)


def main() -> None:
    world = build_aegean_world()
    simulator = FleetSimulator(world, seed=13, duration_seconds=8 * 3600)
    trawlers = simulator.build_scenario_illegal_fishing(3)
    creepers = simulator.build_scenario_dangerous_shipping(2)
    legal_fishers = []
    fleet = trawlers + creepers + legal_fishers
    specs = {vessel.mmsi: vessel.spec for vessel in fleet}

    print("fleet under watch:")
    for vessel in fleet:
        role = "fishing" if vessel.spec.is_fishing else "tanker"
        print(
            f"  vessel {vessel.mmsi}: {role}, draft {vessel.spec.draft_meters:.1f} m"
        )

    tracker = MobilityTracker()
    recognizer = MaritimeRecognizer(world, specs, window_seconds=8 * 3600)
    stream = simulator.positions(fleet)
    replayer = StreamReplayer(
        [TimedArrival(p.timestamp, p) for p in stream], slide_seconds=1800
    )
    query_time = 0
    for query_time, batch in replayer.batches():
        recognizer.ingest(tracker.process_batch(batch), arrival_time=query_time)
        recognizer.step(query_time)
    recognizer.ingest(tracker.finalize(), arrival_time=query_time)
    result = recognizer.step(query_time)

    print("\nillegal fishing episodes (maximal intervals):")
    for alert in recognizer.alerts(result):
        if alert.kind != "illegalFishing":
            continue
        until = alert.until if alert.until is not None else "ongoing"
        print(f"  area {alert.area!r}: t={alert.since} .. {until}")

    print("\ndangerous shipping occurrences:")
    for alert in recognizer.alerts(result):
        if alert.kind != "dangerousShipping":
            continue
        draft = specs[alert.mmsi].draft_meters
        depth = world.area_by_name(alert.area).depth_meters
        print(
            f"  vessel {alert.mmsi} (draft {draft:.1f} m) in {alert.area!r} "
            f"(charted {depth:.1f} m) at t={alert.since}s"
        )


if __name__ == "__main__":
    main()
