"""Tests for AIS position-report encoding and decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.ais.messages import (
    COURSE_NOT_AVAILABLE,
    POSITION_REPORT_TYPES,
    PositionReport,
    SPEED_NOT_AVAILABLE,
    decode_payload,
    encode_position_report,
)
from repro.ais.sixbit import BitWriter, bits_to_payload


def make_report(message_type=1, **overrides) -> PositionReport:
    defaults = dict(
        message_type=message_type,
        mmsi=239_123_456,
        lon=23.65432,
        lat=37.94321,
        speed_knots=12.3,
        course_degrees=187.4,
        second_of_minute=42,
    )
    defaults.update(overrides)
    return PositionReport(**defaults)


class TestRoundTrip:
    @pytest.mark.parametrize("message_type", sorted(POSITION_REPORT_TYPES))
    def test_all_supported_types(self, message_type):
        report = make_report(message_type)
        payload, fill = encode_position_report(report)
        decoded = decode_payload(payload, fill)
        assert decoded is not None
        assert decoded.message_type == message_type
        assert decoded.mmsi == report.mmsi
        assert decoded.lon == pytest.approx(report.lon, abs=2e-5)
        assert decoded.lat == pytest.approx(report.lat, abs=2e-5)
        assert decoded.speed_knots == pytest.approx(report.speed_knots, abs=0.05)
        assert decoded.course_degrees == pytest.approx(
            report.course_degrees, abs=0.05
        )
        assert decoded.second_of_minute == report.second_of_minute

    @given(
        lon=st.floats(min_value=-180.0, max_value=180.0),
        lat=st.floats(min_value=-90.0, max_value=90.0),
        speed=st.floats(min_value=0.0, max_value=102.2),
        course=st.floats(min_value=0.0, max_value=359.9),
        mmsi=st.integers(min_value=0, max_value=999_999_999),
    )
    def test_type1_round_trip_property(self, lon, lat, speed, course, mmsi):
        report = make_report(1, lon=lon, lat=lat, speed_knots=speed,
                             course_degrees=course, mmsi=mmsi)
        payload, fill = encode_position_report(report)
        decoded = decode_payload(payload, fill)
        assert decoded.mmsi == mmsi
        assert decoded.lon == pytest.approx(lon, abs=2e-5)
        assert decoded.lat == pytest.approx(lat, abs=2e-5)
        assert decoded.speed_knots == pytest.approx(speed, abs=0.06)

    def test_payload_lengths(self):
        # Types 1/2/3/18: 168 bits = 28 chars; type 19: 312 bits = 52 chars.
        payload, _ = encode_position_report(make_report(1))
        assert len(payload) == 28
        payload, _ = encode_position_report(make_report(18))
        assert len(payload) == 28
        payload, _ = encode_position_report(make_report(19))
        assert len(payload) == 52


class TestValidation:
    def test_unsupported_type_encode(self):
        with pytest.raises(ValueError, match="unsupported message type"):
            encode_position_report(make_report(5))

    def test_unsupported_type_decode_returns_none(self):
        # Message type 5 (static voyage data) starts with 000101.
        writer = BitWriter()
        writer.write_uint(5, 6)
        writer.write_uint(0, 162)
        payload, fill = bits_to_payload(writer.bits())
        assert decode_payload(payload, fill) is None

    def test_truncated_payload_raises(self):
        payload, _ = encode_position_report(make_report(1))
        with pytest.raises(ValueError):
            decode_payload(payload[:10], 0)

    def test_empty_payload_raises(self):
        with pytest.raises(ValueError, match="too short"):
            decode_payload("", 0)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError, match="negative speed"):
            encode_position_report(make_report(1, speed_knots=-1.0))

    def test_speed_saturates_at_102_2(self):
        report = make_report(1, speed_knots=500.0)
        payload, fill = encode_position_report(report)
        assert decode_payload(payload, fill).speed_knots == pytest.approx(102.2)


class TestSentinels:
    def test_valid_position_flag(self):
        assert make_report(1).has_valid_position()
        assert not make_report(1, lon=181.0).has_valid_position()
        assert not make_report(1, lat=91.0).has_valid_position()

    def test_speed_not_available_constant(self):
        assert SPEED_NOT_AVAILABLE == pytest.approx(102.3)

    def test_course_not_available_constant(self):
        assert COURSE_NOT_AVAILABLE == 360.0
