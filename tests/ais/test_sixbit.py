"""Tests for bit packing and the 6-bit ASCII armor."""

import pytest
from hypothesis import given, strategies as st

from repro.ais.sixbit import (
    BitReader,
    BitWriter,
    bits_to_payload,
    payload_to_bits,
)


class TestBitWriter:
    def test_uint_big_endian(self):
        writer = BitWriter()
        writer.write_uint(5, 4)  # 0101
        assert writer.bits() == [0, 1, 0, 1]

    def test_uint_out_of_range(self):
        writer = BitWriter()
        with pytest.raises(ValueError, match="does not fit"):
            writer.write_uint(16, 4)
        with pytest.raises(ValueError, match="does not fit"):
            writer.write_uint(-1, 4)

    def test_signed_negative(self):
        writer = BitWriter()
        writer.write_int(-1, 4)  # two's complement: 1111
        assert writer.bits() == [1, 1, 1, 1]

    def test_signed_bounds(self):
        writer = BitWriter()
        writer.write_int(-8, 4)
        writer.write_int(7, 4)
        with pytest.raises(ValueError):
            writer.write_int(8, 4)
        with pytest.raises(ValueError):
            writer.write_int(-9, 4)

    def test_length_accumulates(self):
        writer = BitWriter()
        writer.write_uint(0, 6)
        writer.write_uint(0, 2)
        assert len(writer) == 8


class TestBitReader:
    def test_round_trip_uint(self):
        writer = BitWriter()
        writer.write_uint(123456, 20)
        reader = BitReader(writer.bits())
        assert reader.read_uint(20) == 123456

    def test_round_trip_signed(self):
        writer = BitWriter()
        writer.write_int(-123456, 28)
        reader = BitReader(writer.bits())
        assert reader.read_int(28) == -123456

    def test_read_past_end_raises(self):
        reader = BitReader([1, 0])
        with pytest.raises(ValueError, match="cannot read"):
            reader.read_uint(3)

    def test_skip_advances(self):
        writer = BitWriter()
        writer.write_uint(0b1010, 4)
        writer.write_uint(3, 2)
        reader = BitReader(writer.bits())
        reader.skip(4)
        assert reader.read_uint(2) == 3
        assert reader.remaining == 0

    @given(value=st.integers(min_value=0, max_value=2**30 - 1))
    def test_uint_round_trip_property(self, value):
        writer = BitWriter()
        writer.write_uint(value, 30)
        assert BitReader(writer.bits()).read_uint(30) == value

    @given(value=st.integers(min_value=-(2**27), max_value=2**27 - 1))
    def test_int_round_trip_property(self, value):
        writer = BitWriter()
        writer.write_int(value, 28)
        assert BitReader(writer.bits()).read_int(28) == value


class TestArmor:
    def test_known_values(self):
        # 6-bit value 0 -> '0' (ASCII 48); 39 -> 'W'; 40 -> '`'; 63 -> 'w'
        payload, fill = bits_to_payload([0, 0, 0, 0, 0, 0])
        assert payload == "0"
        assert fill == 0
        payload, _ = bits_to_payload([1, 0, 0, 1, 1, 1])  # 39
        assert payload == "W"
        payload, _ = bits_to_payload([1, 0, 1, 0, 0, 0])  # 40
        assert payload == "`"
        payload, _ = bits_to_payload([1, 1, 1, 1, 1, 1])  # 63
        assert payload == "w"

    def test_fill_bits_computed(self):
        payload, fill = bits_to_payload([1, 0, 1, 0])
        assert fill == 2
        assert len(payload) == 1

    def test_invalid_character_rejected(self):
        with pytest.raises(ValueError, match="invalid 6-bit"):
            payload_to_bits("~")

    def test_fill_bits_too_large(self):
        with pytest.raises(ValueError, match="exceeds payload"):
            payload_to_bits("0", fill_bits=7)

    @given(bits=st.lists(st.integers(min_value=0, max_value=1), max_size=400))
    def test_round_trip_property(self, bits):
        payload, fill = bits_to_payload(bits)
        assert payload_to_bits(payload, fill) == bits
