"""Tests for positional stream replay and the delay model."""

import pytest
from hypothesis import given, strategies as st

from repro.ais.stream import (
    DelayModel,
    PositionalTuple,
    StreamReplayer,
    TimedArrival,
    merge_streams,
)


def make_positions(timestamps, mmsi=1):
    return [PositionalTuple(mmsi, 23.0, 37.0, t) for t in timestamps]


class TestDelayModel:
    def test_no_delay_preserves_timestamps(self):
        positions = make_positions([10, 20, 30])
        arrivals = DelayModel().apply(positions)
        assert [a.arrival for a in arrivals] == [10, 20, 30]

    def test_delays_are_bounded_and_sorted(self):
        positions = make_positions(range(0, 1000, 10))
        model = DelayModel(delay_probability=0.5, max_delay_seconds=120, seed=3)
        arrivals = model.apply(positions)
        assert all(
            0 <= a.arrival - a.position.timestamp <= 120 for a in arrivals
        )
        assert [a.arrival for a in arrivals] == sorted(a.arrival for a in arrivals)

    def test_deterministic_with_seed(self):
        positions = make_positions(range(0, 500, 7))
        first = DelayModel(0.3, 60, seed=9).apply(positions)
        second = DelayModel(0.3, 60, seed=9).apply(positions)
        assert first == second

    def test_invalid_probability(self):
        with pytest.raises(ValueError, match="delay_probability"):
            DelayModel(delay_probability=1.5)

    def test_negative_delay(self):
        with pytest.raises(ValueError, match="max_delay_seconds"):
            DelayModel(max_delay_seconds=-1)

    @given(probability=st.floats(min_value=0, max_value=1))
    def test_all_positions_preserved(self, probability):
        positions = make_positions(range(0, 100, 5))
        arrivals = DelayModel(probability, 30, seed=1).apply(positions)
        assert sorted(a.position.timestamp for a in arrivals) == list(
            range(0, 100, 5)
        )


class TestStreamReplayer:
    def test_batches_group_by_slide(self):
        arrivals = [TimedArrival(t, p) for t, p in
                    zip([5, 15, 25, 35], make_positions([5, 15, 25, 35]))]
        replayer = StreamReplayer(arrivals, slide_seconds=10)
        batches = list(replayer.batches())
        assert [q for q, _ in batches] == [10, 20, 30, 40]
        assert [len(b) for _, b in batches] == [1, 1, 1, 1]

    def test_boundary_item_belongs_to_earlier_batch(self):
        # Arrival exactly at the query time is included in that batch.
        arrivals = [TimedArrival(10, make_positions([10])[0])]
        replayer = StreamReplayer(arrivals, slide_seconds=10)
        batches = list(replayer.batches())
        assert batches[0][0] == 10
        assert len(batches[0][1]) == 1

    def test_empty_slides_are_yielded(self):
        arrivals = [TimedArrival(t, p) for t, p in
                    zip([5, 45], make_positions([5, 45]))]
        replayer = StreamReplayer(arrivals, slide_seconds=10)
        batches = list(replayer.batches())
        assert [q for q, _ in batches] == [10, 20, 30, 40, 50]
        assert [len(b) for _, b in batches] == [1, 0, 0, 0, 1]

    def test_empty_stream(self):
        assert list(StreamReplayer([], 10).batches()) == []

    def test_invalid_slide(self):
        with pytest.raises(ValueError, match="slide must be positive"):
            StreamReplayer([], 0)

    @given(
        timestamps=st.lists(
            st.integers(min_value=1, max_value=10_000), min_size=1, max_size=200
        ),
        slide=st.integers(min_value=1, max_value=500),
    )
    def test_every_item_appears_exactly_once(self, timestamps, slide):
        positions = make_positions(sorted(timestamps))
        arrivals = [TimedArrival(p.timestamp, p) for p in positions]
        replayer = StreamReplayer(arrivals, slide)
        seen = [p for _, batch in replayer.batches() for p in batch]
        assert sorted(p.timestamp for p in seen) == sorted(timestamps)

    @given(
        timestamps=st.lists(
            st.integers(min_value=1, max_value=10_000), min_size=1, max_size=200
        ),
        slide=st.integers(min_value=1, max_value=500),
    )
    def test_batch_items_arrive_within_their_slide(self, timestamps, slide):
        positions = make_positions(sorted(timestamps))
        arrivals = [TimedArrival(p.timestamp, p) for p in positions]
        for query_time, batch in StreamReplayer(arrivals, slide).batches():
            for position in batch:
                assert query_time - slide < position.timestamp <= query_time


class TestResumeCursor:
    """``batches(start_after)`` — the checkpoint-resume cursor contract:
    skipped slides are exactly those at or before the cursor, and the
    surviving slides are bit-identical to the uninterrupted replay's."""

    def _replayer(self, timestamps, slide=10):
        positions = make_positions(sorted(timestamps))
        arrivals = [TimedArrival(p.timestamp, p) for p in positions]
        return StreamReplayer(arrivals, slide)

    def test_cursor_on_exact_boundary_excludes_that_slide(self):
        replayer = self._replayer([5, 15, 25, 35])
        resumed = list(replayer.batches(start_after=20))
        assert [q for q, _ in resumed] == [30, 40]

    def test_cursor_between_boundaries_rounds_down(self):
        replayer = self._replayer([5, 15, 25, 35])
        # 24 is mid-slide: slide 20 is covered, slide 30 is not.
        resumed = list(replayer.batches(start_after=24))
        assert [q for q, _ in resumed] == [30, 40]

    def test_cursor_before_first_boundary_resumes_everything(self):
        replayer = self._replayer([15, 25])
        full = list(replayer.batches())
        assert list(replayer.batches(start_after=0)) == full
        assert list(replayer.batches(start_after=19)) == full

    def test_cursor_at_or_past_last_boundary_yields_nothing(self):
        replayer = self._replayer([5, 15])
        assert list(replayer.batches(start_after=20)) == []
        assert list(replayer.batches(start_after=10_000)) == []

    def test_resumed_batches_equal_the_suffix_of_a_full_replay(self):
        replayer = self._replayer(range(3, 200, 7), slide=25)
        full = list(replayer.batches())
        for cursor in [0, 25, 26, 49, 50, 99, 175, 200, 300]:
            resumed = list(replayer.batches(start_after=cursor))
            expected = [(q, b) for q, b in full if q > cursor]
            assert resumed == expected, f"cursor={cursor}"

    def test_skipped_and_resumed_slides_partition_the_stream(self):
        replayer = self._replayer(range(1, 100, 3), slide=10)
        full = list(replayer.batches())
        cursor = 40
        resumed = list(replayer.batches(start_after=cursor))
        skipped = [(q, b) for q, b in full if q <= cursor]
        assert skipped + resumed == full

    def test_empty_slides_survive_resumption(self):
        replayer = self._replayer([5, 95])
        resumed = list(replayer.batches(start_after=30))
        assert [q for q, _ in resumed] == [40, 50, 60, 70, 80, 90, 100]
        assert [len(b) for _, b in resumed] == [0, 0, 0, 0, 0, 0, 1]

    @given(
        timestamps=st.lists(
            st.integers(min_value=1, max_value=5_000), min_size=1,
            max_size=100,
        ),
        slide=st.integers(min_value=1, max_value=300),
        cursor=st.integers(min_value=0, max_value=6_000),
    )
    def test_resume_is_always_a_clean_suffix(self, timestamps, slide, cursor):
        positions = make_positions(sorted(timestamps))
        arrivals = [TimedArrival(p.timestamp, p) for p in positions]
        replayer = StreamReplayer(arrivals, slide)
        full = list(replayer.batches())
        resumed = list(replayer.batches(start_after=cursor))
        assert resumed == [(q, b) for q, b in full if q > cursor]


class TestMergeStreams:
    def test_merges_by_timestamp(self):
        stream_a = make_positions([10, 30], mmsi=1)
        stream_b = make_positions([20, 40], mmsi=2)
        merged = merge_streams([stream_a, stream_b])
        assert [p.timestamp for p in merged] == [10, 20, 30, 40]

    def test_empty_inputs(self):
        assert merge_streams([]) == []
        assert merge_streams([[], []]) == []

    def test_preserves_per_vessel_order(self):
        stream_a = make_positions([10, 20, 30], mmsi=1)
        stream_b = make_positions([15, 25], mmsi=2)
        merged = merge_streams([stream_a, stream_b])
        per_vessel = [p.timestamp for p in merged if p.mmsi == 1]
        assert per_vessel == [10, 20, 30]
