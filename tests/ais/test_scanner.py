"""Tests for the Data Scanner: decode + clean."""

import pytest

from repro.ais.messages import PositionReport, encode_position_report
from repro.ais.nmea import nmea_checksum, wrap_aivdm
from repro.ais.scanner import DataScanner


def make_sentence(message_type=1, lon=23.6, lat=37.9, mmsi=239_000_001):
    report = PositionReport(message_type, mmsi, lon, lat, 10.0, 90.0, 0)
    payload, fill = encode_position_report(report)
    return wrap_aivdm(payload, fill)


class TestAccept:
    def test_valid_sentence_yields_tuple(self):
        scanner = DataScanner()
        result = scanner.scan(1234, make_sentence())
        assert result is not None
        assert result.mmsi == 239_000_001
        assert result.timestamp == 1234
        assert result.lon == pytest.approx(23.6, abs=1e-4)
        assert result.lat == pytest.approx(37.9, abs=1e-4)
        assert scanner.statistics.accepted == 1
        assert scanner.statistics.rejected == 0

    @pytest.mark.parametrize("message_type", [1, 2, 3, 18, 19])
    def test_all_position_types_accepted(self, message_type):
        scanner = DataScanner()
        assert scanner.scan(0, make_sentence(message_type)) is not None

    def test_scan_many_filters(self):
        scanner = DataScanner()
        good = make_sentence()
        bad = good[:-2] + "00"
        tuples = scanner.scan_many([(0, good), (1, bad), (2, good)])
        assert len(tuples) == 2
        assert scanner.statistics.total == 3


class TestReject:
    def test_bad_checksum(self):
        scanner = DataScanner()
        sentence = make_sentence()
        corrupted = sentence[:-2] + ("00" if sentence[-2:] != "00" else "11")
        assert scanner.scan(0, corrupted) is None
        assert scanner.statistics.bad_checksum == 1

    def test_bad_format(self):
        scanner = DataScanner()
        assert scanner.scan(0, "garbage") is None
        assert scanner.statistics.bad_format == 1

    def test_bad_payload(self):
        scanner = DataScanner()
        # Valid framing/checksum, truncated type-1 payload.
        body = "AIVDM,1,1,,A,13u,0"
        sentence = f"!{body}*{nmea_checksum(body)}"
        assert scanner.scan(0, sentence) is None
        assert scanner.statistics.bad_payload == 1

    def test_unsupported_type(self):
        scanner = DataScanner()
        # Type 4 (base station report) begins with '4'.
        body = "AIVDM,1,1,,A,4000000000000000000000000000,0"
        sentence = f"!{body}*{nmea_checksum(body)}"
        assert scanner.scan(0, sentence) is None
        assert scanner.statistics.unsupported_type == 1

    def test_invalid_position_sentinel(self):
        scanner = DataScanner()
        # lon=181 is the AIS "not available" sentinel.
        assert scanner.scan(0, make_sentence(lon=181.0)) is None
        assert scanner.statistics.invalid_position == 1

    def test_statistics_totals(self):
        scanner = DataScanner()
        scanner.scan(0, make_sentence())
        scanner.scan(1, "junk")
        stats = scanner.statistics
        assert stats.total == 2
        assert stats.accepted == 1
        assert stats.rejected == 1
