"""Fuzz tests: hostile bytes must never crash the AIS stack."""

from hypothesis import given, strategies as st

from repro.ais.nmea import ChecksumError, NmeaFormatError, unwrap_aivdm
from repro.ais.scanner import DataScanner


class TestScannerFuzz:
    @given(line=st.text(max_size=120))
    def test_arbitrary_text_never_crashes(self, line):
        scanner = DataScanner()
        result = scanner.scan(0, line)
        # Arbitrary text is (at best) rejected; it can never crash, and it
        # is always accounted for in the statistics.
        assert result is None or result.mmsi >= 0
        assert scanner.statistics.total == 1

    @given(line=st.binary(max_size=80).map(lambda b: b.decode("latin-1")))
    def test_arbitrary_bytes_never_crash(self, line):
        scanner = DataScanner()
        scanner.scan(0, line)
        assert scanner.statistics.total == 1

    @given(
        payload=st.text(
            alphabet=[chr(c) for c in range(48, 88)]
            + [chr(c) for c in range(96, 120)],
            max_size=60,
        ),
        fill=st.integers(min_value=0, max_value=5),
    )
    def test_valid_framing_invalid_payload_rejected_cleanly(self, payload, fill):
        # Random (but well-armored) payloads: the scanner either decodes a
        # position report or rejects; never raises.
        from repro.ais.nmea import wrap_aivdm

        scanner = DataScanner()
        scanner.scan(0, wrap_aivdm(payload, fill))
        assert scanner.statistics.total == 1


class TestUnwrapFuzz:
    @given(line=st.text(max_size=120))
    def test_unwrap_raises_only_documented_errors(self, line):
        try:
            unwrap_aivdm(line)
        except (NmeaFormatError, ChecksumError):
            pass
