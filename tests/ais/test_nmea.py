"""Tests for NMEA AIVDM framing and checksums."""

import pytest
from hypothesis import given, strategies as st

from repro.ais.nmea import (
    ChecksumError,
    NmeaFormatError,
    nmea_checksum,
    unwrap_aivdm,
    wrap_aivdm,
)

payload_chars = st.text(
    alphabet=[chr(c) for c in range(48, 88)] + [chr(c) for c in range(96, 120)],
    min_size=1,
    max_size=60,
)


class TestChecksum:
    def test_known_checksum(self):
        # XOR of the characters of "AIVDM" = 0x41^0x49^0x56^0x44^0x4D.
        expected = 0x41 ^ 0x49 ^ 0x56 ^ 0x44 ^ 0x4D
        assert nmea_checksum("AIVDM") == f"{expected:02X}"

    def test_empty_body(self):
        assert nmea_checksum("") == "00"


class TestWrapUnwrap:
    def test_round_trip(self):
        sentence = wrap_aivdm("13u?etPv2;0n:dDPwUM1U1Cb069D", 0)
        parsed = unwrap_aivdm(sentence)
        assert parsed.payload == "13u?etPv2;0n:dDPwUM1U1Cb069D"
        assert parsed.fill_bits == 0
        assert parsed.channel == "A"

    def test_channel_preserved(self):
        parsed = unwrap_aivdm(wrap_aivdm("0000", 2, channel="B"))
        assert parsed.channel == "B"
        assert parsed.fill_bits == 2

    @given(payload=payload_chars, fill=st.integers(min_value=0, max_value=5))
    def test_round_trip_property(self, payload, fill):
        parsed = unwrap_aivdm(wrap_aivdm(payload, fill))
        assert parsed.payload == payload
        assert parsed.fill_bits == fill

    def test_whitespace_tolerated(self):
        sentence = wrap_aivdm("0000", 0)
        assert unwrap_aivdm(f"  {sentence}\r\n").payload == "0000"


class TestRejection:
    def test_corrupted_payload_fails_checksum(self):
        sentence = wrap_aivdm("13u?etPv2;0n:dDPwUM1U1Cb069D", 0)
        corrupted = sentence.replace("etPv", "etPw", 1)
        with pytest.raises(ChecksumError, match="checksum mismatch"):
            unwrap_aivdm(corrupted)

    def test_wrong_declared_checksum(self):
        sentence = wrap_aivdm("0000", 0)
        body, _, _ = sentence.rpartition("*")
        with pytest.raises(ChecksumError):
            unwrap_aivdm(body + "*FF")

    def test_missing_bang(self):
        with pytest.raises(NmeaFormatError, match="start with"):
            unwrap_aivdm("AIVDM,1,1,,A,0000,0*00")

    def test_missing_checksum_suffix(self):
        with pytest.raises(NmeaFormatError, match="checksum suffix"):
            unwrap_aivdm("!AIVDM,1,1,,A,0000,0")

    def test_wrong_talker(self):
        body = "GPGGA,1,1,,A,0000,0"
        with pytest.raises(NmeaFormatError, match="not an AIVDM"):
            unwrap_aivdm(f"!{body}*{nmea_checksum(body)}")

    def test_wrong_field_count(self):
        body = "AIVDM,1,1,,A,0000"
        with pytest.raises(NmeaFormatError):
            unwrap_aivdm(f"!{body}*{nmea_checksum(body)}")

    def test_multi_fragment_parses_framing(self):
        body = "AIVDM,2,1,5,A,0000,0"
        parsed = unwrap_aivdm(f"!{body}*{nmea_checksum(body)}")
        assert parsed.is_fragmented
        assert parsed.fragment_count == 2
        assert parsed.fragment_number == 1
        assert parsed.message_id == "5"

    def test_inconsistent_fragment_framing_rejected(self):
        body = "AIVDM,2,3,5,A,0000,0"
        with pytest.raises(NmeaFormatError, match="inconsistent fragment"):
            unwrap_aivdm(f"!{body}*{nmea_checksum(body)}")

    def test_non_numeric_framing(self):
        body = "AIVDM,x,1,,A,0000,0"
        with pytest.raises(NmeaFormatError, match="non-numeric"):
            unwrap_aivdm(f"!{body}*{nmea_checksum(body)}")

    def test_empty_payload(self):
        body = "AIVDM,1,1,,A,,0"
        with pytest.raises(NmeaFormatError, match="empty payload"):
            unwrap_aivdm(f"!{body}*{nmea_checksum(body)}")
