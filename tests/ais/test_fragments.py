"""Multi-fragment AIVDM reassembly: framing, scanner round trips, loss accounting."""

import pytest

from repro.ais import (
    DataScanner,
    PositionReport,
    encode_position_report,
    unwrap_aivdm,
    wrap_aivdm,
    wrap_aivdm_fragments,
)
from repro.ais.scanner import FragmentAssembler


def type19_report(mmsi: int = 237_001_000) -> PositionReport:
    return PositionReport(
        message_type=19,
        mmsi=mmsi,
        lon=24.1234,
        lat=37.5678,
        speed_knots=11.5,
        course_degrees=42.0,
        second_of_minute=30,
    )


class TestWrapAivdmFragments:
    def test_two_fragments_carry_shared_framing(self):
        payload, fill = encode_position_report(type19_report())
        first, second = wrap_aivdm_fragments(payload, fill, message_id=3)
        one = unwrap_aivdm(first)
        two = unwrap_aivdm(second)
        assert (one.fragment_count, one.fragment_number) == (2, 1)
        assert (two.fragment_count, two.fragment_number) == (2, 2)
        assert one.message_id == two.message_id == "3"
        assert one.payload + two.payload == payload
        assert one.fill_bits == 0 and two.fill_bits == fill

    def test_rejects_empty_fragments(self):
        with pytest.raises(ValueError, match="non-empty"):
            wrap_aivdm_fragments("abc", 0, fragments=4)


class TestScannerReassembly:
    def test_round_trip_matches_single_fragment_scan(self):
        payload, fill = encode_position_report(type19_report())
        single = DataScanner().scan(100, wrap_aivdm(payload, fill))
        scanner = DataScanner()
        first, second = wrap_aivdm_fragments(payload, fill)
        assert scanner.scan(99, first) is None
        recovered = scanner.scan(100, second)
        assert recovered == single
        assert scanner.statistics.reassembled == 1
        assert scanner.statistics.accepted == 1
        assert scanner.statistics.fragmented_dropped == 0

    def test_out_of_order_fragments_reassemble(self):
        payload, fill = encode_position_report(type19_report())
        first, second = wrap_aivdm_fragments(payload, fill)
        scanner = DataScanner()
        assert scanner.scan(99, second) is None
        assert scanner.scan(100, first) is not None

    def test_interleaved_groups_keyed_by_message_id(self):
        pay_a, fill_a = encode_position_report(type19_report(237_000_111))
        pay_b, fill_b = encode_position_report(type19_report(237_000_222))
        a1, a2 = wrap_aivdm_fragments(pay_a, fill_a, message_id=1)
        b1, b2 = wrap_aivdm_fragments(pay_b, fill_b, message_id=2)
        scanner = DataScanner()
        assert scanner.scan(1, a1) is None
        assert scanner.scan(2, b1) is None
        position_b = scanner.scan(3, b2)
        position_a = scanner.scan(4, a2)
        assert position_a.mmsi == 237_000_111
        assert position_b.mmsi == 237_000_222
        assert scanner.statistics.reassembled == 2

    def test_orphan_fragment_counted_on_flush(self):
        payload, fill = encode_position_report(type19_report())
        first, _ = wrap_aivdm_fragments(payload, fill)
        scanner = DataScanner()
        assert scanner.scan(1, first) is None
        assert scanner.flush() == 1
        assert scanner.statistics.fragmented_dropped == 1
        assert scanner.statistics.rejected == 1

    def test_superseded_group_counted_as_dropped(self):
        payload, fill = encode_position_report(type19_report())
        first, second = wrap_aivdm_fragments(payload, fill, message_id=7)
        scanner = DataScanner()
        assert scanner.scan(1, first) is None
        # The same (channel, id, count, number) arrives again: the stale
        # group is dropped, the new fragment starts a fresh one.
        assert scanner.scan(2, first) is None
        assert scanner.statistics.fragmented_dropped == 1
        assert scanner.scan(3, second) is not None
        assert scanner.statistics.reassembled == 1

    def test_pending_overflow_evicts_oldest(self):
        assembler = FragmentAssembler(max_pending=2)
        payload, fill = encode_position_report(type19_report())
        for message_id in range(4):
            first, _ = wrap_aivdm_fragments(
                payload, fill, message_id=message_id
            )
            assert assembler.add(unwrap_aivdm(first)) is None
        assert assembler.dropped_sentences == 2

    def test_fragment_drops_reach_the_obs_registry(self):
        """Dropped fragment groups are not just a local attribute: every
        drop path (supersession, overflow eviction, flush) increments
        ``ais.fragments.dropped`` so operators see loss without polling
        scanner internals."""
        from repro import obs

        with obs.activate(obs.MetricsRegistry()) as registry:
            assembler = FragmentAssembler(max_pending=2)
            payload, fill = encode_position_report(type19_report())
            for message_id in range(4):  # overflow: evicts 2 groups
                first, _ = wrap_aivdm_fragments(
                    payload, fill, message_id=message_id
                )
                assembler.add(unwrap_aivdm(first))
            first, _ = wrap_aivdm_fragments(payload, fill, message_id=3)
            assembler.add(unwrap_aivdm(first))  # supersedes: drops 1 group
            flushed = assembler.flush()  # drops the 2 still pending
            counted = registry.counter("ais.fragments.dropped").value
        assert flushed == 2
        assert counted == assembler.dropped_sentences == 5

    def test_corrupt_fragment_checksum_still_counted(self):
        payload, fill = encode_position_report(type19_report())
        first, second = wrap_aivdm_fragments(payload, fill)
        scanner = DataScanner()
        assert scanner.scan(1, first[:-2] + "ZZ") is None
        assert scanner.statistics.bad_checksum == 1
        assert scanner.scan(2, second) is None
        assert scanner.flush() == 1  # the lone valid fragment never completed


class TestAdversarialInterleavings:
    """Eviction and supersession under hostile fragment orderings.

    Real AIS feeds interleave many vessels' fragment groups, repeat
    message ids (they are only a few bits on the wire), and lose halves
    of groups routinely — the assembler must stay bounded and never
    credit a stale group's fragments to a fresh one.
    """

    def _fragments(self, mmsi, message_id):
        payload, fill = encode_position_report(type19_report(mmsi))
        return wrap_aivdm_fragments(payload, fill, message_id=message_id)

    def test_duplicate_fragment_number_supersedes_not_completes(self):
        first, second = self._fragments(237_000_111, 5)
        assembler = FragmentAssembler()
        assert assembler.add(unwrap_aivdm(first)) is None
        assert assembler.add(unwrap_aivdm(first)) is None  # same fragment 1
        assert assembler.dropped_sentences == 1  # stale group of one died
        # Completion pairs the *new* fragment 1 with fragment 2.
        assert assembler.add(unwrap_aivdm(second)) is not None

    def test_stale_group_id_reused_after_eviction(self):
        """A group evicted by overflow must not resurrect when its id
        reappears later — the new arrival starts a fresh group."""
        assembler = FragmentAssembler(max_pending=2)
        orphans = [self._fragments(237_000_200 + i, i)[0] for i in range(3)]
        for orphan in orphans:
            assert assembler.add(unwrap_aivdm(orphan)) is None
        assert assembler.dropped_sentences == 1  # id 0 evicted, oldest
        # Id 0's *second* fragment arrives after the eviction: no pair
        # exists any more, so it pends instead of completing with stale
        # data from the evicted group.
        _, second_of_evicted = self._fragments(237_000_200, 0)
        assert assembler.add(unwrap_aivdm(second_of_evicted)) is None

    def test_eviction_is_strictly_oldest_first(self):
        assembler = FragmentAssembler(max_pending=2)
        a1, _ = self._fragments(237_000_301, 1)
        b1, _ = self._fragments(237_000_302, 2)
        c1, _ = self._fragments(237_000_303, 3)
        assembler.add(unwrap_aivdm(a1))
        assembler.add(unwrap_aivdm(b1))
        assembler.add(unwrap_aivdm(c1))  # evicts the 'a' group
        # 'b' and 'c' are still completable; 'a' is gone.
        _, b2 = self._fragments(237_000_302, 2)
        _, c2 = self._fragments(237_000_303, 3)
        assert assembler.add(unwrap_aivdm(b2)) is not None
        assert assembler.add(unwrap_aivdm(c2)) is not None
        _, a2 = self._fragments(237_000_301, 1)
        assert assembler.add(unwrap_aivdm(a2)) is None  # pends, half-group

    def test_out_of_order_interleaved_burst_reassembles_everything(self):
        """Second fragments first, many groups at once, shuffled — every
        group still completes exactly once with the right vessel."""
        groups = {
            mmsi: self._fragments(mmsi, message_id)
            for message_id, mmsi in enumerate(
                range(237_000_400, 237_000_406)
            )
        }
        scanner = DataScanner()
        arrivals = []
        # Deterministic adversarial order: all second fragments (reverse
        # order), then all first fragments (forward order).
        arrivals.extend(pair[1] for pair in reversed(groups.values()))
        arrivals.extend(pair[0] for pair in groups.values())
        recovered = []
        for t, sentence in enumerate(arrivals):
            position = scanner.scan(t, sentence)
            if position is not None:
                recovered.append(position.mmsi)
        assert sorted(recovered) == sorted(groups)
        assert scanner.statistics.reassembled == len(groups)
        assert scanner.statistics.fragmented_dropped == 0
        assert scanner.flush() == 0

    def test_orphan_flood_stays_bounded(self):
        assembler = FragmentAssembler(max_pending=8)
        for i in range(200):
            first, _ = self._fragments(237_100_000 + i, i % 10)
            assembler.add(unwrap_aivdm(first))
        assert len(assembler._pending) <= 8
        assert assembler.dropped_sentences >= 192 - 8
