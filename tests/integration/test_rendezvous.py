"""End-to-end pairwise recognition on the rendezvous fixture.

Two simulated vessels meet offshore, loiter together (one silencing its
transponder mid-stay), then part.  The full pipeline must recognize the
``encounter``/``rendezvous`` intervals and the ``darkShip`` event — and
the sharded runtime must reproduce the single-process alert transcript
byte for byte, because pair facts are routed by episode anchor.
"""

import pytest

from repro.ais.stream import StreamReplayer, TimedArrival
from repro.pipeline import SurveillanceSystem, SystemConfig
from repro.runtime import ParallelSurveillanceSystem
from repro.simulator.fleet import FleetSimulator
from repro.tracking import WindowSpec

SLIDE_SECONDS = 1800


def _config():
    return SystemConfig(window=WindowSpec.of_hours(2, 0.5), pairwise=True)


@pytest.fixture(scope="module")
def rendezvous_fleet(world):
    simulator = FleetSimulator(world, seed=11, duration_seconds=6 * 3600)
    fleet = simulator.build_scenario_rendezvous()
    return {
        "fleet": fleet,
        "specs": {vessel.mmsi: vessel.spec for vessel in fleet},
        "stream": simulator.positions(fleet),
        "mmsis": tuple(vessel.mmsi for vessel in fleet),
    }


def _replay(system, stream):
    """Per-slide alert transcript plus the deduplicated union.

    ``system.alerts()`` only covers the latest window, which by finalize
    has slid past the meeting — the union over slides is what an operator
    following the feed would have seen.
    """
    arrivals = [TimedArrival(p.timestamp, p) for p in stream]
    slides = []
    seen: dict[str, object] = {}
    for query_time, batch in StreamReplayer(arrivals, SLIDE_SECONDS).batches():
        report = system.process_slide(batch, query_time)
        slides.append((query_time, [repr(a) for a in report.alerts]))
        seen.update((repr(a), a) for a in report.alerts)
    final = system.finalize()
    slides.append(("finalize", [repr(a) for a in final.alerts]))
    seen.update((repr(a), a) for a in final.alerts)
    return {"slides": slides, "alerts": [seen[key] for key in sorted(seen)]}


@pytest.fixture(scope="module")
def single_process(world, rendezvous_fleet):
    system = SurveillanceSystem(world, rendezvous_fleet["specs"], _config())
    return _replay(system, rendezvous_fleet["stream"])


class TestRendezvousRecognition:
    def test_fixture_produces_the_expected_pairwise_events(
        self, rendezvous_fleet, single_process
    ):
        first, second = rendezvous_fleet["mmsis"]
        alerts = single_process["alerts"]
        by_kind = {}
        for alert in alerts:
            by_kind.setdefault(alert.kind, []).append(alert)

        # The pair comes within range and stays there: an encounter
        # interval for (first, second).
        assert any(
            (a.mmsi, a.mmsi2) == (first, second)
            for a in by_kind.get("encounter", [])
        )
        # They loiter together offshore: a rendezvous over the same pair,
        # terminated when they speed apart (so the interval is closed).
        rendezvous = [
            a
            for a in by_kind.get("rendezvous", [])
            if (a.mmsi, a.mmsi2) == (first, second)
        ]
        assert rendezvous
        assert any(a.until is not None for a in rendezvous)
        # The second vessel silences its transponder mid-loiter, far from
        # any port: a darkShip event naming it — and only it.
        dark = by_kind.get("darkShip", [])
        assert dark
        assert {a.mmsi for a in dark} == {second}
        assert all(a.mmsi2 is None and a.area == "" for a in dark)

    def test_rendezvous_sits_inside_the_encounter(self, single_process):
        alerts = single_process["alerts"]
        meet = min(a.since for a in alerts if a.kind == "rendezvous")
        first_close = min(a.since for a in alerts if a.kind == "encounter")
        assert first_close <= meet

    @pytest.mark.parametrize("shards", [1, 2])
    def test_sharded_transcript_is_byte_identical(
        self, world, rendezvous_fleet, shards, single_process
    ):
        with ParallelSurveillanceSystem(
            world, rendezvous_fleet["specs"], _config(), shards=shards
        ) as system:
            transcript = _replay(system, rendezvous_fleet["stream"])
        assert transcript["slides"] == single_process["slides"]
        assert [repr(a) for a in transcript["alerts"]] == [
            repr(a) for a in single_process["alerts"]
        ]

    def test_pairwise_off_by_default_emits_no_pair_alerts(
        self, world, rendezvous_fleet
    ):
        system = SurveillanceSystem(
            world,
            rendezvous_fleet["specs"],
            SystemConfig(window=WindowSpec.of_hours(2, 0.5)),
        )
        transcript = _replay(system, rendezvous_fleet["stream"])
        pair_kinds = {"encounter", "rendezvous", "cpaRisk", "darkShip"}
        assert all(
            alert.kind not in pair_kinds for alert in transcript["alerts"]
        )
