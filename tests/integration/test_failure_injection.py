"""Failure injection: the pipeline must survive hostile input."""

from repro.ais import DataScanner
from repro.ais.stream import (
    DelayModel,
    PositionalTuple,
    StreamReplayer,
    TimedArrival,
)
from repro.maritime import MaritimeRecognizer
from repro.pipeline import SurveillanceSystem, SystemConfig
from repro.simulator import FleetSimulator
from repro.tracking import MobilityTracker, WindowSpec


class TestCorruptSentences:
    def test_garbage_lines_never_crash(self):
        scanner = DataScanner()
        hostile = [
            "",
            "!",
            "!AIVDM",
            "!AIVDM,1,1,,A,,0*00",
            "!AIVDM,1,1,,A,\x00\x01,0*00",
            "$GPGGA,123519,4807.038,N*47",
            "!AIVDM,9,9,,Z,xxxx,9*FF",
            "!" + "A" * 500,
        ]
        for index, line in enumerate(hostile):
            assert scanner.scan(index, line) is None
        assert scanner.statistics.rejected == len(hostile)


class TestDegenerateStreams:
    def test_single_report_vessels(self, world):
        # Vessels that report exactly once (the paper notes many cargo
        # ships were tracked for hours only) must flow through harmlessly.
        tracker = MobilityTracker()
        positions = [
            PositionalTuple(mmsi, 23.0 + mmsi * 0.01, 38.0, 100)
            for mmsi in range(1, 50)
        ]
        events = tracker.process_batch(positions)
        assert events == []
        assert tracker.finalize() == []

    def test_empty_slides(self, world, small_fleet):
        system = SurveillanceSystem(
            world, small_fleet["specs"],
            SystemConfig(window=WindowSpec.of_minutes(30, 5)),
        )
        # Slides with no arrivals at all.
        for query_time in range(300, 3600, 300):
            report = system.process_slide([], query_time)
            assert report.raw_positions == 0

    def test_duplicated_stream(self, world, small_fleet):
        # Every tuple delivered twice: duplicates are dropped as stale.
        tracker = MobilityTracker()
        stream = small_fleet["stream"][:500]
        doubled = [p for position in stream for p in (position, position)]
        tracker.process_batch(doubled)
        assert tracker.statistics.positions_out_of_sequence >= len(stream) / 2

    def test_reversed_stream(self, small_fleet):
        tracker = MobilityTracker()
        events = tracker.process_batch(list(reversed(small_fleet["stream"][:500])))
        # Only each vessel's first-seen (latest) report contributes state;
        # everything else is out of sequence.  No crash, no bogus events.
        assert tracker.statistics.positions_out_of_sequence > 0
        assert isinstance(events, list)


class TestDelayedStreams:
    def test_recognition_with_heavy_delays(self, world):
        simulator = FleetSimulator(world, seed=41, duration_seconds=4 * 3600)
        fleet = simulator.build_scenario_illegal_shipping(2)
        specs = {vessel.mmsi: vessel.spec for vessel in fleet}
        stream = simulator.positions(fleet)
        delayed = DelayModel(
            delay_probability=0.3, max_delay_seconds=900, seed=5
        ).apply(stream)

        tracker = MobilityTracker()
        recognizer = MaritimeRecognizer(world, specs, window_seconds=4 * 3600)
        query_time = 0
        for query_time, batch in StreamReplayer(delayed, 1800).batches():
            recognizer.ingest(tracker.process_batch(batch), arrival_time=query_time)
            recognizer.step(query_time)
        recognizer.ingest(tracker.finalize(), arrival_time=query_time)
        result = recognizer.step(query_time)
        kinds = {a.kind for a in recognizer.alerts(result)}
        # The deliberate transponder gap is still recognized despite the
        # random transmission delays.
        assert "illegalShipping" in kinds


class TestWorkerCrashRecovery:
    """Kill a runtime worker mid-slide; the supervisor must restore it
    from its last checkpoint with no lost and no duplicated output."""

    @staticmethod
    def _replay(system, small_fleet, poison_slides=()):
        arrivals = [
            TimedArrival(p.timestamp, p) for p in small_fleet["stream"]
        ]
        transcript = []
        for index, (query_time, batch) in enumerate(
            StreamReplayer(arrivals, 1800).batches()
        ):
            if index in poison_slides:
                system.supervisor.inject_failure(index % system.shards)
            report = system.process_slide(batch, query_time)
            transcript.append(
                (
                    report.query_time,
                    report.movement_events,
                    report.fresh_critical_points,
                    report.expired_critical_points,
                    [repr(a) for a in report.alerts],
                )
            )
        final = system.finalize()
        transcript.append(
            (
                final.query_time,
                final.movement_events,
                final.fresh_critical_points,
                final.expired_critical_points,
                [repr(a) for a in final.alerts],
            )
        )
        return transcript

    def test_restart_recovers_without_losing_output(self, world, small_fleet):
        from repro.runtime import ParallelSurveillanceSystem

        config = SystemConfig(window=WindowSpec.of_hours(2, 0.5))
        with ParallelSurveillanceSystem(
            world, small_fleet["specs"], config, shards=2, checkpoint_every=2
        ) as system:
            clean = self._replay(system, small_fleet)
            assert system.restart_count() == 0
        with ParallelSurveillanceSystem(
            world, small_fleet["specs"], config, shards=2, checkpoint_every=2
        ) as system:
            # Kill a worker twice, mid-run, between checkpoints.
            crashed = self._replay(system, small_fleet, poison_slides=(2, 5))
            assert system.restart_count() == 2
        assert crashed == clean

    def test_unrecoverable_after_restart_budget(self, world, small_fleet):
        import pytest

        from repro.runtime import ParallelSurveillanceSystem, WorkerUnrecoverable

        config = SystemConfig(window=WindowSpec.of_hours(2, 0.5))
        with ParallelSurveillanceSystem(
            world, small_fleet["specs"], config, shards=2
        ) as system:
            system.supervisor.max_restarts = 0
            system.supervisor.inject_failure(0)
            arrivals = [
                TimedArrival(p.timestamp, p) for p in small_fleet["stream"]
            ]
            query_time, batch = next(iter(StreamReplayer(arrivals, 1800).batches()))
            with pytest.raises(WorkerUnrecoverable):
                system.process_slide(batch, query_time)


class TestRecognizerRobustness:
    def test_events_for_unknown_vessels(self, world):
        # MEs for vessels missing from the static database must not crash
        # the fishing/shallow predicates.
        from repro.tracking.types import MovementEvent, MovementEventType

        recognizer = MaritimeRecognizer(world, specs={}, window_seconds=3600)
        area = world.areas[0]
        lon, lat = area.polygon.centroid
        recognizer.ingest(
            [
                MovementEvent(MovementEventType.SLOW_MOTION, 999, lon, lat, 100),
                MovementEvent(MovementEventType.GAP_START, 998, lon, lat, 200),
            ],
            arrival_time=1000,
        )
        result = recognizer.step(1000)
        assert result.occurrences("dangerousShipping") == []
