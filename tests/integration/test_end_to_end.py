"""Full Figure-1 pipeline integration: AIS sentences in, archives out."""

from repro.ais import DataScanner, PositionReport, encode_position_report, wrap_aivdm
from repro.ais.stream import StreamReplayer, TimedArrival
from repro.mod import compute_od_matrix, compute_trip_statistics
from repro.pipeline import SurveillanceSystem, SystemConfig
from repro.simulator import FleetSimulator
from repro.tracking import WindowSpec


def to_sentences(positions):
    """Encode positional tuples as raw AIVDM sentences."""
    sentences = []
    for position in positions:
        report = PositionReport(
            1, position.mmsi, position.lon, position.lat, 10.0, 90.0,
            position.timestamp % 60,
        )
        payload, fill = encode_position_report(report)
        sentences.append((position.timestamp, wrap_aivdm(payload, fill)))
    return sentences


class TestFromRawAis:
    def test_scanner_to_archive(self, world):
        simulator = FleetSimulator(world, seed=31, duration_seconds=4 * 3600)
        fleet = simulator.build_mixed_fleet(8)
        specs = {vessel.mmsi: vessel.spec for vessel in fleet}
        stream = simulator.positions(fleet)

        # Encode to NMEA, corrupt a slice, and scan back.
        sentences = to_sentences(stream)
        corrupted = [
            (t, s[:-2] + "ZZ") if i % 37 == 0 else (t, s)
            for i, (t, s) in enumerate(sentences)
        ]
        scanner = DataScanner()
        recovered = scanner.scan_many(corrupted)
        assert scanner.statistics.bad_checksum > 0
        # Positions decode within AIS precision of the originals.
        assert len(recovered) == len(stream) - scanner.statistics.rejected

        system = SurveillanceSystem(
            world, specs, SystemConfig(window=WindowSpec.of_hours(1, 0.5))
        )
        arrivals = [TimedArrival(p.timestamp, p) for p in recovered]
        for query_time, batch in StreamReplayer(arrivals, 1800).batches():
            system.process_slide(batch, query_time)
        system.finalize()

        # The archive holds the whole fleet's critical points.
        stats = compute_trip_statistics(system.database)
        total_points = (
            stats.critical_points_in_trips + stats.critical_points_in_staging
        )
        assert total_points > 0
        matrix = compute_od_matrix(system.database)
        assert isinstance(matrix.cells, dict)

    def test_precision_loss_is_bounded(self, world):
        # AIS quantizes coordinates to 1/10000 arc-minute; the scanner's
        # output deviates from the simulator's floats by < 2 m.
        from repro.geo.haversine import haversine_meters

        simulator = FleetSimulator(world, seed=32, duration_seconds=1800)
        fleet = simulator.build_mixed_fleet(2)
        stream = simulator.positions(fleet)[:50]
        scanner = DataScanner()
        recovered = scanner.scan_many(to_sentences(stream))
        for original, decoded in zip(stream, recovered):
            assert decoded.mmsi == original.mmsi
            assert (
                haversine_meters(
                    original.lon, original.lat, decoded.lon, decoded.lat
                )
                < 2.0
            )


class TestConsistencyInvariants:
    def test_critical_points_never_exceed_raw(self, world, small_fleet):
        system = SurveillanceSystem(
            world, small_fleet["specs"],
            SystemConfig(window=WindowSpec.of_hours(1, 0.25)),
        )
        arrivals = [
            TimedArrival(p.timestamp, p) for p in small_fleet["stream"]
        ]
        for query_time, batch in StreamReplayer(arrivals, 900).batches():
            report = system.process_slide(batch, query_time)
            assert report.fresh_critical_points <= max(
                1, report.raw_positions + report.movement_events
            )
        stats = system.compressor.statistics
        assert stats.critical_points <= stats.raw_positions

    def test_window_lag_invariant(self, world, small_fleet):
        # Archived data always lags the live window by omega: no archived
        # point may be newer than query_time - range.
        config = SystemConfig(window=WindowSpec.of_hours(1, 0.25))
        system = SurveillanceSystem(world, small_fleet["specs"], config)
        arrivals = [
            TimedArrival(p.timestamp, p) for p in small_fleet["stream"]
        ]
        last_query = 0
        for query_time, batch in StreamReplayer(arrivals, 900).batches():
            system.process_slide(batch, query_time)
            last_query = query_time
        horizon = last_query - config.window.range_seconds
        cursor = system.database.connection.execute(
            "SELECT MAX(timestamp) FROM staging"
        )
        newest_staged = cursor.fetchone()[0]
        if newest_staged is not None:
            assert newest_staged <= horizon
