"""End-to-end scenario tests: simulated behaviours must yield their CEs.

Each scenario drives the full pipeline — simulator -> tracker -> compressor
-> RTEC — and asserts both that the targeted complex event is recognized and
that unrelated CEs stay quiet.
"""

import pytest

from repro.ais.stream import StreamReplayer, TimedArrival
from repro.maritime import MaritimeRecognizer
from repro.simulator import FleetSimulator
from repro.tracking import MobilityTracker

DURATION = 6 * 3600
SLIDE = 1800


def run_pipeline(world, fleet, spatial_facts=False):
    specs = {vessel.mmsi: vessel.spec for vessel in fleet}
    simulator_stream = []
    for vessel in fleet:
        simulator_stream.extend(vessel.positions)
    simulator_stream.sort(key=lambda p: p.timestamp)
    tracker = MobilityTracker()
    recognizer = MaritimeRecognizer(
        world, specs, window_seconds=DURATION, spatial_facts=spatial_facts
    )
    arrivals = [TimedArrival(p.timestamp, p) for p in simulator_stream]
    query_time = 0
    for query_time, batch in StreamReplayer(arrivals, SLIDE).batches():
        recognizer.ingest(tracker.process_batch(batch), arrival_time=query_time)
        recognizer.step(query_time)
    recognizer.ingest(tracker.finalize(), arrival_time=query_time)
    result = recognizer.step(query_time)
    return recognizer, result


@pytest.fixture(params=[False, True], ids=["spatial-reasoning", "spatial-facts"])
def spatial_facts(request):
    return request.param


class TestSuspiciousScenario:
    def test_rendezvous_recognized(self, world, spatial_facts):
        simulator = FleetSimulator(world, seed=21, duration_seconds=DURATION)
        fleet = simulator.build_scenario_suspicious(5)
        recognizer, result = run_pipeline(world, fleet, spatial_facts)
        alerts = [a for a in recognizer.alerts(result) if a.kind == "suspicious"]
        assert alerts, "five loiterers at one rendezvous must be suspicious"

    def test_two_vessels_not_suspicious(self, world):
        simulator = FleetSimulator(world, seed=21, duration_seconds=DURATION)
        fleet = simulator.build_scenario_suspicious(2)
        recognizer, result = run_pipeline(world, fleet)
        assert [a for a in recognizer.alerts(result) if a.kind == "suspicious"] == []


class TestIllegalShippingScenario:
    def test_transponder_silence_in_protected_area(self, world, spatial_facts):
        simulator = FleetSimulator(world, seed=22, duration_seconds=DURATION)
        fleet = simulator.build_scenario_illegal_shipping(2)
        recognizer, result = run_pipeline(world, fleet, spatial_facts)
        alerts = [
            a for a in recognizer.alerts(result) if a.kind == "illegalShipping"
        ]
        assert len(alerts) >= 1
        assert all(a.mmsi is not None for a in alerts)


class TestIllegalFishingScenario:
    def test_trawling_in_forbidden_area(self, world, spatial_facts):
        simulator = FleetSimulator(world, seed=23, duration_seconds=DURATION)
        fleet = simulator.build_scenario_illegal_fishing(2)
        recognizer, result = run_pipeline(world, fleet, spatial_facts)
        alerts = [
            a for a in recognizer.alerts(result) if a.kind == "illegalFishing"
        ]
        assert alerts


class TestDangerousShippingScenario:
    def test_deep_draft_in_shallow_water(self, world, spatial_facts):
        simulator = FleetSimulator(world, seed=24, duration_seconds=DURATION)
        fleet = simulator.build_scenario_dangerous_shipping(2)
        recognizer, result = run_pipeline(world, fleet, spatial_facts)
        alerts = [
            a for a in recognizer.alerts(result) if a.kind == "dangerousShipping"
        ]
        assert alerts


class TestQuietFleet:
    def test_compliant_traffic_raises_no_critical_alert_kinds(self, world):
        # Ferries and cargo pass-throughs: no illegal shipping or dangerous
        # shipping should be flagged (their transponders stay on, and they
        # do not creep through shallows).
        simulator = FleetSimulator(world, seed=25, duration_seconds=DURATION)
        fleet = simulator.build_mixed_fleet(10, deviant_fraction=0.0)
        # Only ferries/cargo: drop fishing vessels to keep the fleet benign.
        benign = [v for v in fleet if not v.spec.is_fishing]
        recognizer, result = run_pipeline(world, benign)
        kinds = {a.kind for a in recognizer.alerts(result)}
        assert "illegalShipping" not in kinds
        assert "dangerousShipping" not in kinds
        assert "illegalFishing" not in kinds
