"""Smoke tests: the example scripts must run and produce their output.

Only the quicker examples run here (the analytics ones simulate a full day
and belong to manual runs); each is executed in-process with stdout
captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    sys.argv = [name]
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        output = run_example("quickstart.py", capsys)
        assert "compression ratio" in output
        assert "Number of trips between ports" in output

    def test_protected_area_patrol(self, capsys):
        output = run_example("protected_area_patrol.py", capsys)
        assert "illegalShipping" in output
        assert "honest vessels wrongly flagged: none" in output
