"""Unit and property tests for polygonal areas."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo.haversine import destination_point
from repro.geo.polygon import (
    BoundingBox,
    GeoPolygon,
    nearest_area,
    point_distance_meters,
)


# Shared immutable polygon: hypothesis-driven tests reuse it directly since
# a function-scoped fixture would not reset between generated inputs.
SQUARE = GeoPolygon.rectangle("square", 23.6, 37.9, 2000.0, 2000.0)


@pytest.fixture()
def square():
    """A ~2 km x 2 km square around (23.6, 37.9)."""
    return SQUARE


class TestConstruction:
    def test_requires_three_vertices(self):
        with pytest.raises(ValueError, match="at least 3 vertices"):
            GeoPolygon("bad", [(0.0, 0.0), (1.0, 1.0)])

    def test_repr_mentions_name(self, square):
        assert "square" in repr(square)

    def test_bbox_encloses_vertices(self, square):
        for lon, lat in square.vertices:
            assert square.bbox.contains(lon, lat)


class TestContains:
    def test_center_inside(self, square):
        assert square.contains(23.6, 37.9)

    def test_far_point_outside(self, square):
        assert not square.contains(24.6, 37.9)

    def test_just_outside_bbox_shortcut(self, square):
        assert not square.contains(square.bbox.max_lon + 0.001, 37.9)

    def test_concave_polygon(self):
        # A "C" shape: the notch is outside even though the bbox covers it.
        c_shape = GeoPolygon(
            "c",
            [(0, 0), (4, 0), (4, 1), (1, 1), (1, 3), (4, 3), (4, 4), (0, 4)],
        )
        assert c_shape.contains(0.5, 2.0)
        assert not c_shape.contains(3.0, 2.0)  # inside the notch

    @given(
        bearing=st.floats(min_value=0, max_value=360, exclude_max=True),
        distance=st.floats(min_value=3000.0, max_value=50_000.0),
    )
    def test_points_beyond_halfwidth_are_outside(self, bearing, distance):
        lon, lat = destination_point(23.6, 37.9, bearing, distance)
        assert not SQUARE.contains(lon, lat)


class TestDistance:
    def test_inside_is_zero(self, square):
        assert square.distance_meters(23.6, 37.9) == 0.0

    def test_outside_distance_matches_offset(self, square):
        # 5 km east of the center -> ~4 km from the 1 km-half-width edge.
        lon, lat = destination_point(23.6, 37.9, 90.0, 5000.0)
        distance = square.distance_meters(lon, lat)
        assert distance == pytest.approx(4000.0, rel=0.02)

    def test_is_close_threshold(self, square):
        lon, lat = destination_point(23.6, 37.9, 0.0, 2500.0)  # 1.5 km from edge
        assert square.is_close(lon, lat, 2000.0)
        assert not square.is_close(lon, lat, 1000.0)

    def test_is_close_inside(self, square):
        assert square.is_close(23.6, 37.9, 1.0)

    @given(
        bearing=st.floats(min_value=0, max_value=360, exclude_max=True),
        distance=st.floats(min_value=0.0, max_value=20_000.0),
    )
    def test_distance_never_negative(self, bearing, distance):
        lon, lat = destination_point(23.6, 37.9, bearing, distance)
        assert SQUARE.distance_meters(lon, lat) >= 0.0


class TestCentroidAndArea:
    def test_rectangle_centroid_is_center(self, square):
        lon, lat = square.centroid
        assert lon == pytest.approx(23.6, abs=1e-9)
        assert lat == pytest.approx(37.9, abs=1e-9)

    def test_rectangle_area(self, square):
        assert square.area_square_meters() == pytest.approx(4_000_000, rel=0.01)

    def test_degenerate_ring_falls_back_to_vertex_mean(self):
        # All vertices on a line: zero signed area.
        line = GeoPolygon("line", [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)])
        lon, lat = line.centroid
        assert lon == pytest.approx(1.0)
        assert lat == pytest.approx(0.0)


class TestBoundingBox:
    def test_contains_boundary(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains(0.0, 0.0)
        assert box.contains(1.0, 1.0)
        assert not box.contains(1.0001, 0.5)

    def test_expanded_is_superset(self):
        box = BoundingBox(23.0, 37.0, 24.0, 38.0)
        grown = box.expanded(10_000.0)
        assert grown.min_lon < box.min_lon
        assert grown.max_lat > box.max_lat

    def test_center(self):
        box = BoundingBox(22.0, 36.0, 24.0, 38.0)
        assert box.center == (23.0, 37.0)


class TestHelpers:
    def test_nearest_area_picks_closest(self):
        near = GeoPolygon.rectangle("near", 23.6, 37.9, 1000, 1000)
        far = GeoPolygon.rectangle("far", 25.0, 37.9, 1000, 1000)
        best, distance = nearest_area([far, near], 23.62, 37.9)
        assert best is near
        assert distance < 10_000

    def test_nearest_area_empty_list(self):
        best, distance = nearest_area([], 23.6, 37.9)
        assert best is None
        assert distance == math.inf

    def test_point_distance_tuples(self):
        assert point_distance_meters((23.0, 37.0), (23.0, 37.0)) == 0.0
