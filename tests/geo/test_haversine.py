"""Unit and property tests for great-circle geometry."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo.haversine import (
    EARTH_RADIUS_METERS,
    destination_point,
    haversine_meters,
    heading_difference_degrees,
    initial_bearing_degrees,
    signed_heading_change_degrees,
)

# Strategies over the Aegean-ish working region to avoid polar degeneracies.
lons = st.floats(min_value=-179.0, max_value=179.0)
lats = st.floats(min_value=-85.0, max_value=85.0)
headings = st.floats(min_value=0.0, max_value=360.0, exclude_max=True)


class TestHaversine:
    def test_zero_distance_for_identical_points(self):
        assert haversine_meters(23.6, 37.9, 23.6, 37.9) == 0.0

    def test_one_degree_of_latitude(self):
        # One degree of latitude is ~111.2 km on the mean sphere.
        distance = haversine_meters(23.0, 37.0, 23.0, 38.0)
        assert distance == pytest.approx(111_195, rel=1e-3)

    def test_longitude_distance_shrinks_with_latitude(self):
        at_equator = haversine_meters(23.0, 0.0, 24.0, 0.0)
        at_38_north = haversine_meters(23.0, 38.0, 24.0, 38.0)
        assert at_38_north < at_equator
        assert at_38_north == pytest.approx(
            at_equator * math.cos(math.radians(38.0)), rel=1e-2
        )

    def test_antipodal_distance_is_half_circumference(self):
        distance = haversine_meters(0.0, 0.0, 180.0, 0.0)
        assert distance == pytest.approx(math.pi * EARTH_RADIUS_METERS, rel=1e-9)

    @given(lon1=lons, lat1=lats, lon2=lons, lat2=lats)
    def test_symmetry(self, lon1, lat1, lon2, lat2):
        forward = haversine_meters(lon1, lat1, lon2, lat2)
        backward = haversine_meters(lon2, lat2, lon1, lat1)
        assert forward == pytest.approx(backward, abs=1e-6)

    @given(lon1=lons, lat1=lats, lon2=lons, lat2=lats)
    def test_non_negative_and_bounded(self, lon1, lat1, lon2, lat2):
        distance = haversine_meters(lon1, lat1, lon2, lat2)
        assert 0.0 <= distance <= math.pi * EARTH_RADIUS_METERS + 1.0

    @given(lon=lons, lat=lats, lon2=lons, lat2=lats, lon3=lons, lat3=lats)
    def test_triangle_inequality(self, lon, lat, lon2, lat2, lon3, lat3):
        direct = haversine_meters(lon, lat, lon3, lat3)
        via = haversine_meters(lon, lat, lon2, lat2) + haversine_meters(
            lon2, lat2, lon3, lat3
        )
        assert direct <= via + 1e-6


class TestBearing:
    def test_due_north(self):
        assert initial_bearing_degrees(23.0, 37.0, 23.0, 38.0) == pytest.approx(0.0)

    def test_due_east(self):
        bearing = initial_bearing_degrees(23.0, 0.0, 24.0, 0.0)
        assert bearing == pytest.approx(90.0, abs=0.01)

    def test_due_south(self):
        bearing = initial_bearing_degrees(23.0, 38.0, 23.0, 37.0)
        assert bearing == pytest.approx(180.0)

    def test_identical_points_convention(self):
        assert initial_bearing_degrees(23.0, 37.0, 23.0, 37.0) == 0.0

    @given(lon1=lons, lat1=lats, lon2=lons, lat2=lats)
    def test_range(self, lon1, lat1, lon2, lat2):
        bearing = initial_bearing_degrees(lon1, lat1, lon2, lat2)
        assert 0.0 <= bearing < 360.0


class TestHeadingDifference:
    @pytest.mark.parametrize(
        "h1, h2, expected",
        [
            (0.0, 0.0, 0.0),
            (0.0, 180.0, 180.0),
            (350.0, 10.0, 20.0),
            (10.0, 350.0, 20.0),
            (90.0, 270.0, 180.0),
            (359.0, 1.0, 2.0),
        ],
    )
    def test_wraparound(self, h1, h2, expected):
        assert heading_difference_degrees(h1, h2) == pytest.approx(expected)

    @given(h1=headings, h2=headings)
    def test_symmetric_and_bounded(self, h1, h2):
        diff = heading_difference_degrees(h1, h2)
        assert 0.0 <= diff <= 180.0
        assert diff == pytest.approx(heading_difference_degrees(h2, h1))


class TestSignedHeadingChange:
    def test_clockwise_positive(self):
        assert signed_heading_change_degrees(10.0, 30.0) == pytest.approx(20.0)

    def test_counterclockwise_negative(self):
        assert signed_heading_change_degrees(30.0, 10.0) == pytest.approx(-20.0)

    def test_wrap_through_north(self):
        assert signed_heading_change_degrees(350.0, 10.0) == pytest.approx(20.0)
        assert signed_heading_change_degrees(10.0, 350.0) == pytest.approx(-20.0)

    @given(h1=headings, h2=headings)
    def test_magnitude_matches_unsigned(self, h1, h2):
        signed = signed_heading_change_degrees(h1, h2)
        unsigned = heading_difference_degrees(h1, h2)
        assert abs(signed) == pytest.approx(unsigned, abs=1e-9)


class TestDestinationPoint:
    @given(lon=st.floats(min_value=-170, max_value=170),
           lat=st.floats(min_value=-70, max_value=70),
           bearing=headings,
           distance=st.floats(min_value=0.0, max_value=100_000.0))
    def test_round_trip_distance(self, lon, lat, bearing, distance):
        lon2, lat2 = destination_point(lon, lat, bearing, distance)
        measured = haversine_meters(lon, lat, lon2, lat2)
        assert measured == pytest.approx(distance, abs=0.5)

    def test_zero_distance_is_identity(self):
        lon2, lat2 = destination_point(23.5, 37.5, 123.0, 0.0)
        assert (lon2, lat2) == pytest.approx((23.5, 37.5))

    def test_longitude_normalized(self):
        lon2, _ = destination_point(179.9, 0.0, 90.0, 50_000.0)
        assert -180.0 < lon2 <= 180.0
