"""Tests for track interpolation and synchronization."""

import pytest
from hypothesis import given, strategies as st

from repro.geo.interpolate import interpolate_position, synchronize_track


class TestInterpolatePosition:
    def test_midpoint(self):
        lon, lat = interpolate_position((0.0, 0.0, 0), (1.0, 2.0, 100), 50)
        assert (lon, lat) == pytest.approx((0.5, 1.0))

    def test_clamps_before_start(self):
        lon, lat = interpolate_position((0.0, 0.0, 10), (1.0, 1.0, 20), 5)
        assert (lon, lat) == (0.0, 0.0)

    def test_clamps_after_end(self):
        lon, lat = interpolate_position((0.0, 0.0, 10), (1.0, 1.0, 20), 25)
        assert (lon, lat) == (1.0, 1.0)

    def test_degenerate_zero_duration(self):
        lon, lat = interpolate_position((0.0, 0.0, 10), (1.0, 1.0, 10), 10)
        assert (lon, lat) == (0.0, 0.0)

    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_stays_on_segment(self, fraction):
        timestamp = int(fraction * 1000)
        lon, lat = interpolate_position((0.0, 0.0, 0), (1.0, 1.0, 1000), timestamp)
        assert 0.0 <= lon <= 1.0
        assert lat == pytest.approx(lon, abs=1e-9)


class TestSynchronizeTrack:
    def test_exact_vertex_timestamps(self):
        track = [(0.0, 0.0, 0), (1.0, 0.0, 100), (1.0, 1.0, 200)]
        result = synchronize_track([0, 100, 200], track)
        assert result == [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]

    def test_interpolated_timestamps(self):
        track = [(0.0, 0.0, 0), (2.0, 0.0, 200)]
        result = synchronize_track([50, 150], track)
        assert result[0] == pytest.approx((0.5, 0.0))
        assert result[1] == pytest.approx((1.5, 0.0))

    def test_clamps_outside_span(self):
        track = [(1.0, 1.0, 100), (2.0, 2.0, 200)]
        result = synchronize_track([0, 300], track)
        assert result == [(1.0, 1.0), (2.0, 2.0)]

    def test_empty_compressed_track_raises(self):
        with pytest.raises(ValueError, match="empty compressed track"):
            synchronize_track([0], [])

    def test_non_monotone_track_raises(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            synchronize_track([0], [(0.0, 0.0, 10), (1.0, 1.0, 10)])

    def test_single_point_track(self):
        result = synchronize_track([0, 50, 100], [(3.0, 4.0, 42)])
        assert result == [(3.0, 4.0)] * 3

    @given(
        timestamps=st.lists(
            st.integers(min_value=0, max_value=1000), min_size=1, max_size=30
        )
    )
    def test_output_length_matches_input(self, timestamps):
        track = [(0.0, 0.0, 0), (1.0, 1.0, 500), (2.0, 0.0, 1000)]
        assert len(synchronize_track(timestamps, track)) == len(timestamps)
