"""Tests for unit conversions."""

import pytest
from hypothesis import given, strategies as st

from repro.geo.units import KNOT_IN_METERS_PER_SECOND, knots_to_mps, mps_to_knots


def test_one_knot_definition():
    assert KNOT_IN_METERS_PER_SECOND == pytest.approx(0.514444, rel=1e-5)


def test_knots_to_mps():
    assert knots_to_mps(10.0) == pytest.approx(5.14444, rel=1e-5)


def test_mps_to_knots():
    assert mps_to_knots(5.14444) == pytest.approx(10.0, rel=1e-4)


@given(speed=st.floats(min_value=0.0, max_value=1000.0))
def test_round_trip(speed):
    assert mps_to_knots(knots_to_mps(speed)) == pytest.approx(speed, abs=1e-9)
