"""Tests for the ``python -m repro`` CLI demo."""

from repro.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.vessels == 50
        assert args.hours == 6.0
        assert not args.spatial_facts

    def test_custom_arguments(self):
        args = build_parser().parse_args(
            ["--vessels", "10", "--hours", "2", "--spatial-facts"]
        )
        assert args.vessels == 10
        assert args.hours == 2.0
        assert args.spatial_facts


class TestMain:
    def test_small_run(self, capsys, tmp_path):
        kml_path = tmp_path / "out.kml"
        exit_code = main(
            [
                "--vessels", "6",
                "--hours", "1",
                "--slide-minutes", "15",
                "--window-hours", "1",
                "--kml", str(kml_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "compression:" in output
        assert "Number of trips between ports" in output
        assert kml_path.exists()
        assert "<kml" in kml_path.read_text()

    def test_metrics_json_run(self, capsys, tmp_path):
        import json

        from repro import obs

        metrics_path = tmp_path / "metrics.json"
        exit_code = main(
            [
                "--vessels", "6",
                "--hours", "1",
                "--slide-minutes", "15",
                "--window-hours", "1",
                "--metrics-json", str(metrics_path),
            ]
        )
        assert exit_code == 0
        assert "metrics report written" in capsys.readouterr().out
        report = json.loads(metrics_path.read_text())
        assert report["schema"] == "repro.obs/pipeline-v1"
        assert report["config"]["vessels"] == 6
        assert "tracking" in report["phases"]
        assert report["throughput"]["events_per_sec"] > 0
        # The scoped registry must not leak into the global one.
        assert not obs.is_enabled()
