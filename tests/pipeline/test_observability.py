"""Observability wiring of the assembled pipeline.

Covers the contract the obs layer must not break: ``SlideReport.timings``
keys still match :data:`~repro.pipeline.metrics.PHASES`, and an enabled
registry sees per-phase histograms whose counts equal the slides run.
"""

import pytest

from repro import obs
from repro.ais.stream import StreamReplayer, TimedArrival
from repro.obs import MetricsRegistry
from repro.obs.report import build_pipeline_report
from repro.pipeline import SurveillanceSystem, SystemConfig
from repro.pipeline.metrics import PHASES
from repro.tracking import WindowSpec


@pytest.fixture()
def system(world, small_fleet):
    config = SystemConfig(window=WindowSpec.of_hours(1, 0.25))
    return SurveillanceSystem(world, small_fleet["specs"], config)


def run_stream(system, stream, slide=900):
    arrivals = [TimedArrival(p.timestamp, p) for p in stream]
    reports = []
    for query_time, batch in StreamReplayer(arrivals, slide).batches():
        reports.append(system.process_slide(batch, query_time))
    return reports


class TestSlideReportRegression:
    def test_timings_keys_match_phases(self, system, small_fleet):
        """Every timing key a slide reports must be a declared phase."""
        reports = run_stream(system, small_fleet["stream"])
        assert reports
        for report in reports:
            assert set(report.timings) <= set(PHASES)
            # The always-on phases are present on every slide.
            assert {"tracking", "staging", "recognition"} <= set(report.timings)

    def test_phase_timings_unaffected_by_enabled_metrics(
        self, world, small_fleet
    ):
        config = SystemConfig(window=WindowSpec.of_hours(1, 0.25))
        with obs.activate(MetricsRegistry()):
            system = SurveillanceSystem(world, small_fleet["specs"], config)
            run_stream(system, small_fleet["stream"])
        assert system.timings.slides > 0
        assert system.timings.average("tracking") > 0.0


class TestRegistryCollection:
    def test_phase_histograms_count_slides(self, world, small_fleet):
        config = SystemConfig(window=WindowSpec.of_hours(1, 0.25))
        with obs.activate(MetricsRegistry()) as registry:
            system = SurveillanceSystem(world, small_fleet["specs"], config)
            reports = run_stream(system, small_fleet["stream"])
        slides = len(reports)
        for phase in PHASES:
            histogram = registry.histogram(f"pipeline.phase.{phase}")
            assert histogram.count == slides, phase
        assert registry.counter("pipeline.slides").value == slides
        assert registry.counter("pipeline.raw_positions").value == sum(
            r.raw_positions for r in reports
        )
        assert registry.counter("pipeline.movement_events").value == sum(
            r.movement_events for r in reports
        )

    def test_span_tree_covers_components(self, world, small_fleet):
        config = SystemConfig(window=WindowSpec.of_hours(1, 0.25))
        with obs.activate(MetricsRegistry()) as registry:
            system = SurveillanceSystem(world, small_fleet["specs"], config)
            run_stream(system, small_fleet["stream"])
        paths = registry.span_paths()
        assert "pipeline.slide" in paths
        assert "pipeline.slide/tracking/tracking.process_batch" in paths
        assert "pipeline.slide/tracking/tracking.compressor.slide" in paths
        assert (
            "pipeline.slide/recognition/recognition.step/rtec.step" in paths
        )

    def test_disabled_registry_records_nothing(self, system, small_fleet):
        assert not obs.is_enabled()
        run_stream(system, small_fleet["stream"])
        snapshot = obs.get_registry().snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["spans"] == {}


class TestPipelineReport:
    def test_report_structure(self, world, small_fleet):
        config = SystemConfig(window=WindowSpec.of_hours(1, 0.25))
        with obs.activate(MetricsRegistry()) as registry:
            system = SurveillanceSystem(world, small_fleet["specs"], config)
            reports = run_stream(system, small_fleet["stream"])
            report = build_pipeline_report(
                system, registry, config={"vessels": 12}
            )
        assert report["schema"] == "repro.obs/pipeline-v1"
        assert report["config"] == {"vessels": 12}
        assert report["slides"] == len(reports)
        assert set(report["phases"]) == set(PHASES)
        for stats in report["phases"].values():
            assert stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]
            assert stats["slides"] == len(reports)
        throughput = report["throughput"]
        assert throughput["raw_positions"] == sum(
            r.raw_positions for r in reports
        )
        assert throughput["positions_per_sec"] > 0
        assert throughput["events_per_sec"] > 0
        assert 0.0 <= report["compression_ratio"] <= 1.0
        assert "spans" in report["metrics"]

    def test_report_json_serializable(self, world, small_fleet):
        import json

        config = SystemConfig(window=WindowSpec.of_hours(1, 0.25))
        with obs.activate(MetricsRegistry()) as registry:
            system = SurveillanceSystem(world, small_fleet["specs"], config)
            run_stream(system, small_fleet["stream"])
            report = build_pipeline_report(system, registry)
        parsed = json.loads(json.dumps(report))
        assert parsed["slides"] == report["slides"]
