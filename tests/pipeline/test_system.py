"""Tests for the assembled surveillance system."""

import pytest

from repro.ais.stream import StreamReplayer, TimedArrival
from repro.pipeline import SurveillanceSystem, SystemConfig
from repro.tracking import WindowSpec


@pytest.fixture()
def system(world, small_fleet):
    config = SystemConfig(window=WindowSpec.of_hours(1, 0.25))
    return SurveillanceSystem(world, small_fleet["specs"], config)


def run_stream(system, stream, slide=900):
    arrivals = [TimedArrival(p.timestamp, p) for p in stream]
    reports = []
    for query_time, batch in StreamReplayer(arrivals, slide).batches():
        reports.append(system.process_slide(batch, query_time))
    return reports


class TestProcessing:
    def test_slide_reports_accumulate(self, system, small_fleet):
        reports = run_stream(system, small_fleet["stream"])
        assert len(reports) > 4
        assert sum(r.raw_positions for r in reports) == len(small_fleet["stream"])
        assert all(set(r.timings) >= {"tracking", "staging", "recognition"}
                   for r in reports)

    def test_compression_achieved(self, system, small_fleet):
        run_stream(system, small_fleet["stream"])
        ratio = system.compressor.statistics.compression_ratio
        assert ratio > 0.8

    def test_phase_timings_recorded(self, system, small_fleet):
        run_stream(system, small_fleet["stream"])
        averages = system.timings.averages()
        assert averages["tracking"] > 0.0
        assert system.timings.slides > 0

    def test_database_receives_expired_points(self, system, small_fleet):
        reports = run_stream(system, small_fleet["stream"])
        expired_total = sum(r.expired_critical_points for r in reports)
        if expired_total:
            archived = system.database.staged_count() + sum(
                t["point_count"] for t in system.database.all_trips()
            )
            assert archived > 0

    def test_finalize_flushes_synopsis(self, system, small_fleet):
        run_stream(system, small_fleet["stream"])
        in_window = len(system.current_synopsis())
        final = system.finalize()
        assert final is not None
        # Everything left the window into the archive.
        archived = system.database.staged_count() + sum(
            t["point_count"] for t in system.database.all_trips()
        )
        assert archived >= in_window

    def test_finalize_without_stream_is_noop(self, world, small_fleet):
        system = SurveillanceSystem(world, small_fleet["specs"])
        assert system.finalize() is None


class TestOutputs:
    def test_kml_export(self, system, small_fleet):
        import xml.etree.ElementTree as ET

        run_stream(system, small_fleet["stream"])
        document = system.export_kml()
        assert ET.fromstring(document).tag.endswith("kml")

    def test_geojson_export(self, system, small_fleet):
        run_stream(system, small_fleet["stream"])
        collection = system.export_geojson()
        assert collection["type"] == "FeatureCollection"

    def test_alerts_accessible(self, system, small_fleet):
        run_stream(system, small_fleet["stream"])
        assert isinstance(system.alerts(), list)
