"""Tests for the system configuration."""

from repro.pipeline import SystemConfig
from repro.tracking import WindowSpec


class TestSystemConfig:
    def test_defaults(self):
        config = SystemConfig()
        assert config.window.range_seconds == 3600
        assert config.window.slide_seconds == 600
        assert not config.spatial_facts
        assert config.reconstruct_each_slide
        assert config.database_path == ":memory:"

    def test_recognition_window_defaults_to_tracking_range(self):
        config = SystemConfig(window=WindowSpec.of_hours(2, 1))
        assert config.effective_recognition_window == 7200

    def test_recognition_window_override(self):
        config = SystemConfig(
            window=WindowSpec.of_hours(2, 1), recognition_window_seconds=9 * 3600
        )
        assert config.effective_recognition_window == 9 * 3600
