"""Pipeline operation modes: spatial facts, recognition off, disk-backed MOD."""

from repro.ais.stream import StreamReplayer, TimedArrival
from repro.pipeline import SurveillanceSystem, SystemConfig
from repro.tracking import WindowSpec


def run_stream(system, stream, slide=900):
    arrivals = [TimedArrival(p.timestamp, p) for p in stream]
    reports = []
    for query_time, batch in StreamReplayer(arrivals, slide).batches():
        reports.append(system.process_slide(batch, query_time))
    return reports


class TestSpatialFactsMode:
    def test_pipeline_recognizes_in_both_modes(self, world, small_fleet):
        def alerts_with(spatial_facts):
            config = SystemConfig(
                window=WindowSpec.of_hours(4, 0.5), spatial_facts=spatial_facts
            )
            system = SurveillanceSystem(world, small_fleet["specs"], config)
            run_stream(system, small_fleet["stream"], slide=1800)
            return {
                (a.kind, a.area, a.since) for a in system.alerts()
            }

        assert alerts_with(True) == alerts_with(False)


class TestRecognitionDisabled:
    def test_no_recognition_phase(self, world, small_fleet):
        config = SystemConfig(
            window=WindowSpec.of_hours(1, 0.25), enable_recognition=False
        )
        system = SurveillanceSystem(world, small_fleet["specs"], config)
        reports = run_stream(system, small_fleet["stream"])
        assert all("recognition" not in r.timings for r in reports)
        assert all(r.recognized_complex_events == 0 for r in reports)
        assert all(r.alerts == () for r in reports)


class TestDiskBackedDatabase:
    def test_archive_persists_to_file(self, world, small_fleet, tmp_path):
        path = tmp_path / "archive.sqlite"
        config = SystemConfig(
            window=WindowSpec.of_hours(1, 0.25),
            database_path=str(path),
            enable_recognition=False,
        )
        system = SurveillanceSystem(world, small_fleet["specs"], config)
        run_stream(system, small_fleet["stream"])
        system.finalize()
        system.database.close()
        assert path.exists()
        assert path.stat().st_size > 0

        # Reopen read-only and confirm the data survived the process.
        import sqlite3

        connection = sqlite3.connect(path)
        (staged,) = connection.execute(
            "SELECT COUNT(*) FROM staging"
        ).fetchone()
        (trips,) = connection.execute("SELECT COUNT(*) FROM trips").fetchone()
        connection.close()
        assert staged + trips > 0
