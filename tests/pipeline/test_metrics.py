"""Tests for the per-slide instrumentation."""

import pytest

from repro.pipeline.metrics import PHASES, PhaseTimings, SlideReport


class TestPhaseTimings:
    def test_accumulate_and_average(self):
        timings = PhaseTimings()
        timings.record({"tracking": 0.2, "staging": 0.1})
        timings.record({"tracking": 0.4, "staging": 0.1})
        assert timings.slides == 2
        assert timings.average("tracking") == pytest.approx(0.3)
        assert timings.average("staging") == pytest.approx(0.1)

    def test_average_before_any_slide(self):
        assert PhaseTimings().average("tracking") == 0.0

    def test_missing_phase_zero(self):
        timings = PhaseTimings()
        timings.record({"tracking": 0.2})
        assert timings.average("recognition") == 0.0

    def test_averages_dict(self):
        timings = PhaseTimings()
        timings.record({"tracking": 0.5, "recognition": 0.1})
        averages = timings.averages()
        assert set(averages) == {"tracking", "recognition"}

    def test_phase_order_constant(self):
        assert PHASES == (
            "tracking", "staging", "reconstruction", "loading", "recognition"
        )


class TestSlideReport:
    def test_total_seconds(self):
        report = SlideReport(
            query_time=100,
            raw_positions=10,
            movement_events=3,
            fresh_critical_points=2,
            expired_critical_points=1,
            recognized_complex_events=0,
            alerts=(),
            timings={"tracking": 0.2, "recognition": 0.3},
        )
        assert report.total_seconds == pytest.approx(0.5)
