"""The pairwise layer: monitor fact emission and CE rules.

Monitor tests use a one-port world so offshore-vs-near-port positions
are unambiguous; rule tests drive a pairwise-enabled recognizer with
hand-built fact streams and read the resulting alerts.
"""

import random

import pytest

from repro.geo.polygon import BoundingBox, GeoPolygon
from repro.geo.units import knots_to_mps
from repro.maritime.pairwise import (
    PairFact,
    PairwiseConfig,
    PairwiseMonitor,
)
from repro.maritime.recognizer import MaritimeRecognizer
from repro.simulator.world import Port, WorldModel
from repro.tracking.types import MovementEvent, MovementEventType

PORT_LON, PORT_LAT = 23.0, 37.0
#: ~88 km east of the only port: decisively offshore.
OFFSHORE_LON = 24.0
#: ~1.8 km from the port anchor: decisively inshore.
INSHORE_LON = 23.02


@pytest.fixture()
def tiny_world():
    square = GeoPolygon(
        "port_sq",
        [(22.99, 36.99), (23.01, 36.99), (23.01, 37.01), (22.99, 37.01)],
    )
    return WorldModel(
        bbox=BoundingBox(20.0, 35.0, 28.0, 40.0),
        ports=[Port("port", PORT_LON, PORT_LAT, square)],
    )


def me(
    mmsi,
    lon,
    lat,
    timestamp,
    speed_knots=8.0,
    heading=90.0,
    kind=MovementEventType.SPEED_CHANGE,
):
    return MovementEvent(
        event_type=kind,
        mmsi=mmsi,
        lon=lon,
        lat=lat,
        timestamp=timestamp,
        speed_mps=knots_to_mps(speed_knots),
        heading_degrees=heading,
    )


def functors(facts):
    return [(f.functor, f.args, f.timestamp) for f in facts]


class TestPairwiseMonitor:
    def test_close_pair_emits_pair_close(self, tiny_world):
        monitor = PairwiseMonitor(tiny_world)
        facts = monitor.observe(
            [
                me(1, OFFSHORE_LON, 37.0, 100),
                me(2, OFFSHORE_LON + 0.01, 37.0, 110),
            ],
            query_time=1800,
        )
        assert ("pair_close", (1, 2), 110) in functors(facts)
        # Far pair on the same slide: no fact for it.
        facts = monitor.observe([me(3, 26.0, 39.0, 120)], query_time=1800)
        assert all(fact.args != (1, 3) for fact in facts)

    def test_slow_offshore_pair_gets_rendezvous_preconditions(self, tiny_world):
        monitor = PairwiseMonitor(tiny_world)
        facts = monitor.observe(
            [
                me(1, OFFSHORE_LON, 37.0, 100, speed_knots=2.0),
                me(2, OFFSHORE_LON + 0.005, 37.0, 100, speed_knots=2.0),
            ],
            query_time=1800,
        )
        kinds = {f.functor for f in facts}
        assert {"pair_close", "pair_slow", "pair_offshore"} <= kinds

    def test_slow_near_port_is_not_offshore(self, tiny_world):
        monitor = PairwiseMonitor(tiny_world)
        facts = monitor.observe(
            [
                me(1, INSHORE_LON, 37.0, 100, speed_knots=2.0),
                me(2, INSHORE_LON + 0.005, 37.0, 100, speed_knots=2.0),
            ],
            query_time=1800,
        )
        kinds = {f.functor for f in facts}
        assert "pair_slow" in kinds
        assert "pair_offshore" not in kinds

    def test_speedup_edge_and_separation(self, tiny_world):
        monitor = PairwiseMonitor(tiny_world)
        monitor.observe(
            [
                me(1, OFFSHORE_LON, 37.0, 100, speed_knots=2.0),
                me(2, OFFSHORE_LON + 0.005, 37.0, 100, speed_knots=2.0),
            ],
            query_time=150,
        )
        # Both speed up while still close: one pair_speedup, once.
        facts = monitor.observe(
            [
                me(1, OFFSHORE_LON, 37.0, 200, speed_knots=12.0),
                me(2, OFFSHORE_LON + 0.005, 37.0, 200, speed_knots=12.0),
            ],
            query_time=250,
        )
        assert ("pair_speedup", (1, 2), 200) in functors(facts)
        # Then they separate: pair_far at the latest member timestamp
        # (not via staleness — both tracks are still fresh here).
        facts = monitor.observe(
            [me(2, OFFSHORE_LON + 1.0, 37.0, 300, speed_knots=12.0)],
            query_time=350,
        )
        assert ("pair_far", (1, 2), 300) in functors(facts)
        # The episode is closed; a further update emits nothing for it.
        facts = monitor.observe(
            [me(2, OFFSHORE_LON + 1.1, 37.0, 400)], query_time=450
        )
        assert all(fact.args != (1, 2) for fact in facts)

    def test_cpa_risk_rising_edge_only(self, tiny_world):
        monitor = PairwiseMonitor(tiny_world)
        head_on = [
            me(1, OFFSHORE_LON, 37.0, 100, speed_knots=10.0, heading=0.0),
            me(2, OFFSHORE_LON, 37.02, 100, speed_knots=10.0, heading=180.0),
        ]
        facts = monitor.observe(head_on, query_time=1800)
        assert ("pair_cpa_risk", (1, 2), 100) in functors(facts)
        # Still converging next slide: the flag is level, no repeat fact.
        still_head_on = [
            me(1, OFFSHORE_LON, 37.005, 200, speed_knots=10.0, heading=0.0),
            me(2, OFFSHORE_LON, 37.015, 200, speed_knots=10.0, heading=180.0),
        ]
        facts = monitor.observe(still_head_on, query_time=3600)
        assert "pair_cpa_risk" not in {f.functor for f in facts}

    def test_parallel_pair_is_not_risky(self, tiny_world):
        monitor = PairwiseMonitor(tiny_world)
        facts = monitor.observe(
            [
                me(1, OFFSHORE_LON, 37.0, 100, speed_knots=10.0, heading=90.0),
                me(2, OFFSHORE_LON, 37.02, 100, speed_knots=10.0, heading=90.0),
            ],
            query_time=1800,
        )
        assert "pair_cpa_risk" not in {f.functor for f in facts}

    def test_dark_gap_requires_offshore_at_both_ends(self, tiny_world):
        monitor = PairwiseMonitor(tiny_world)
        offshore_gap = [
            me(5, OFFSHORE_LON, 37.0, 100, kind=MovementEventType.GAP_START),
            me(5, OFFSHORE_LON + 0.05, 37.0, 900, kind=MovementEventType.GAP_END),
        ]
        facts = monitor.observe(offshore_gap, query_time=1800)
        assert ("dark_gap", (5,), 900) in functors(facts)

        # Gap starting at the port: routine docking, not a dark ship.
        monitor = PairwiseMonitor(tiny_world)
        docked = [
            me(6, INSHORE_LON, 37.0, 100, kind=MovementEventType.GAP_START),
            me(6, OFFSHORE_LON, 37.0, 900, kind=MovementEventType.GAP_END),
        ]
        assert "dark_gap" not in {
            f.functor for f in monitor.observe(docked, query_time=1800)
        }

        # Gap ending at the port: arrival, equally innocent.
        monitor = PairwiseMonitor(tiny_world)
        arriving = [
            me(7, OFFSHORE_LON, 37.0, 100, kind=MovementEventType.GAP_START),
            me(7, INSHORE_LON, 37.0, 900, kind=MovementEventType.GAP_END),
        ]
        assert "dark_gap" not in {
            f.functor for f in monitor.observe(arriving, query_time=1800)
        }

    def test_stale_track_expiry_closes_episode(self, tiny_world):
        config = PairwiseConfig(stale_seconds=600)
        monitor = PairwiseMonitor(tiny_world, config)
        monitor.observe(
            [
                me(1, OFFSHORE_LON, 37.0, 100),
                me(2, OFFSHORE_LON + 0.005, 37.0, 100),
            ],
            query_time=200,
        )
        # Vessel 2 goes silent; when its track ages out, the episode is
        # force-closed at the query time.
        facts = monitor.observe([], query_time=100 + 600 + 1)
        assert ("pair_far", (1, 2), 701) in functors(facts)

    def test_anchor_is_stable_across_the_episode(self, tiny_world):
        monitor = PairwiseMonitor(tiny_world)
        first = monitor.observe(
            [
                me(1, OFFSHORE_LON, 37.0, 100),
                me(2, OFFSHORE_LON + 0.01, 37.0, 100),
            ],
            query_time=1800,
        )
        # The pair drifts east together; the anchor must not move.
        second = monitor.observe(
            [
                me(1, OFFSHORE_LON + 0.2, 37.0, 200),
                me(2, OFFSHORE_LON + 0.21, 37.0, 200),
            ],
            query_time=3600,
        )
        anchors = {
            f.anchor_lon for f in first + second if f.args == (1, 2)
        }
        assert len(anchors) == 1

    def test_output_is_a_pure_function_of_the_event_multiset(self, tiny_world):
        events = [
            me(1, OFFSHORE_LON, 37.0, 100, speed_knots=2.0),
            me(2, OFFSHORE_LON + 0.005, 37.0, 100, speed_knots=2.0),
            me(3, OFFSHORE_LON + 0.006, 37.0, 150, speed_knots=2.0),
            me(2, OFFSHORE_LON + 0.004, 37.0, 150, speed_knots=11.0),
            me(4, 26.5, 39.0, 120),
        ]
        baseline = PairwiseMonitor(tiny_world).observe(list(events), 1800)
        rng = random.Random(5)
        for _ in range(10):
            shuffled = list(events)
            rng.shuffle(shuffled)
            assert PairwiseMonitor(tiny_world).observe(shuffled, 1800) == baseline


class TestPairwiseRules:
    """The CE definitions, exercised through a pairwise recognizer."""

    WINDOW = 3600

    def recognize(self, tiny_world, facts, query_time):
        recognizer = MaritimeRecognizer(
            tiny_world, specs={}, window_seconds=self.WINDOW, pairwise=True
        )
        recognizer.ingest_facts(facts, arrival_time=query_time)
        result = recognizer.step(query_time)
        return recognizer.alerts(result)

    def fact(self, functor, args, timestamp):
        return PairFact(functor, args, timestamp, anchor_lon=24.0)

    def test_encounter_opens_and_closes(self, tiny_world):
        alerts = self.recognize(
            tiny_world,
            [
                self.fact("pair_close", (1, 2), 100),
                self.fact("pair_far", (1, 2), 500),
            ],
            query_time=1000,
        )
        encounters = [a for a in alerts if a.kind == "encounter"]
        assert len(encounters) == 1
        alert = encounters[0]
        assert (alert.since, alert.until) == (100, 500)
        assert (alert.mmsi, alert.mmsi2) == (1, 2)
        assert alert.area == ""

    def test_encounter_still_open_at_query_time(self, tiny_world):
        alerts = self.recognize(
            tiny_world,
            [self.fact("pair_close", (1, 2), 100)],
            query_time=1000,
        )
        [alert] = [a for a in alerts if a.kind == "encounter"]
        assert alert.until is None and alert.is_ongoing

    def test_rendezvous_needs_all_three_preconditions(self, tiny_world):
        complete = [
            self.fact("pair_close", (1, 2), 100),
            self.fact("pair_slow", (1, 2), 100),
            self.fact("pair_offshore", (1, 2), 100),
        ]
        alerts = self.recognize(tiny_world, complete, query_time=1000)
        assert any(a.kind == "rendezvous" for a in alerts)

        # Drop any one precondition and the rendezvous disappears.
        for missing in range(3):
            partial = [f for i, f in enumerate(complete) if i != missing]
            alerts = self.recognize(tiny_world, partial, query_time=1000)
            assert not any(a.kind == "rendezvous" for a in alerts)

    def test_rendezvous_terminated_by_speedup(self, tiny_world):
        alerts = self.recognize(
            tiny_world,
            [
                self.fact("pair_close", (1, 2), 100),
                self.fact("pair_slow", (1, 2), 100),
                self.fact("pair_offshore", (1, 2), 100),
                self.fact("pair_speedup", (1, 2), 600),
            ],
            query_time=1000,
        )
        [alert] = [a for a in alerts if a.kind == "rendezvous"]
        assert (alert.since, alert.until) == (100, 600)
        # The plain encounter survives the speedup.
        [encounter] = [a for a in alerts if a.kind == "encounter"]
        assert encounter.until is None

    def test_cpa_risk_and_dark_ship_events(self, tiny_world):
        alerts = self.recognize(
            tiny_world,
            [
                self.fact("pair_cpa_risk", (3, 4), 250),
                self.fact("dark_gap", (9,), 400),
            ],
            query_time=1000,
        )
        [risk] = [a for a in alerts if a.kind == "cpaRisk"]
        assert (risk.since, risk.mmsi, risk.mmsi2) == (250, 3, 4)
        [dark] = [a for a in alerts if a.kind == "darkShip"]
        assert (dark.since, dark.mmsi, dark.mmsi2) == (400, 9, None)


class TestPairwiseConfig:
    def test_defaults_validate(self):
        config = PairwiseConfig()
        assert config.low_speed_mps == pytest.approx(knots_to_mps(5.0))

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            PairwiseConfig(proximity_radius_meters=0.0)
        with pytest.raises(ValueError):
            PairwiseConfig(stale_seconds=-1)
