"""Tests for the atemporal predicates and counter fluents."""

from repro.geo.polygon import GeoPolygon
from repro.maritime.predicates import (
    _count_step_function,
    make_close_predicate,
    make_fishing_predicate,
    make_shallow_predicate,
)
from repro.rtec.intervals import OPEN
from repro.simulator.vessel import VesselSpec, VesselType
from repro.simulator.world import Area, AreaKind


def make_area(name, lon, lat, kind=AreaKind.PROTECTED, depth=0.0, size=2000.0):
    return Area(name, kind, GeoPolygon.rectangle(name, lon, lat, size, size), depth)


class TestClosePredicate:
    def test_enumerates_nearby_areas(self):
        areas = [
            make_area("a", 24.0, 38.0),
            make_area("b", 24.02, 38.0),
            make_area("c", 26.0, 38.0),
        ]
        close = make_close_predicate(areas, 3000.0)
        names = {name for (name,) in close(24.0, 38.0)}
        assert names == {"a", "b"}

    def test_point_inside_area_is_close(self):
        close = make_close_predicate([make_area("a", 24.0, 38.0)], 1.0)
        assert close(24.0, 38.0) == [("a",)]

    def test_empty_area_list(self):
        close = make_close_predicate([], 3000.0)
        assert close(24.0, 38.0) == []

    def test_restriction_acts_as_declarations(self):
        # Only the areas given at construction are ever enumerated.
        watch = [make_area("watched", 24.0, 38.0)]
        close = make_close_predicate(watch, 1e7)
        names = {name for (name,) in close(24.0, 38.0)}
        assert names == {"watched"}


class TestShallowPredicate:
    def test_draft_exceeding_depth(self):
        areas = [make_area("sh", 24.0, 38.0, AreaKind.SHALLOW, depth=6.0)]
        specs = {
            1: VesselSpec(1, VesselType.TANKER, 9.0, False),
            2: VesselSpec(2, VesselType.FISHING, 3.0, True),
        }
        shallow = make_shallow_predicate(areas, specs)
        assert shallow("sh", 1)
        assert not shallow("sh", 2)

    def test_unknown_vessel_or_area_safe(self):
        areas = [make_area("sh", 24.0, 38.0, AreaKind.SHALLOW, depth=6.0)]
        shallow = make_shallow_predicate(areas, {})
        assert not shallow("sh", 999)
        assert not shallow("nope", 1)


class TestFishingPredicate:
    def test_designation(self):
        specs = {
            1: VesselSpec(1, VesselType.FISHING, 3.0, True),
            2: VesselSpec(2, VesselType.CARGO, 8.0, False),
        }
        fishing = make_fishing_predicate(specs)
        assert fishing(1)
        assert not fishing(2)
        assert not fishing(404)


class TestCountStepFunction:
    def test_single_vessel(self):
        intervals = _count_step_function([(10, +1), (30, -1)], leading_edge=0)
        assert intervals[0] == [(0, 10), (30, OPEN)]
        assert intervals[1] == [(10, 30)]

    def test_overlapping_vessels(self):
        changes = [(10, +1), (20, +1), (30, -1), (40, -1)]
        intervals = _count_step_function(changes, leading_edge=0)
        assert intervals[1] == [(10, 20), (30, 40)]
        assert intervals[2] == [(20, 30)]

    def test_simultaneous_changes_merge(self):
        # Two vessels stopping at the same second: the count jumps by 2.
        changes = [(10, +1), (10, +1), (50, -1)]
        intervals = _count_step_function(changes, leading_edge=0)
        assert 1 not in intervals or (10, 10) not in intervals.get(1, [])
        assert intervals[2] == [(10, 50)]

    def test_empty_changes_all_zero(self):
        intervals = _count_step_function([], leading_edge=100)
        assert intervals == {0: [(100, OPEN)]}

    def test_counts_never_negative(self):
        changes = [(10, +1), (20, -1), (30, -1)]  # pathological extra -1
        intervals = _count_step_function(changes, leading_edge=0)
        assert all(count >= -1 for count in intervals)

    def test_values_partition_time(self):
        from repro.rtec.intervals import holds_at

        changes = [(10, +1), (25, +1), (40, -1), (60, -1)]
        intervals = _count_step_function(changes, leading_edge=0)
        for probe in range(1, 80, 3):
            holding = [
                count
                for count, ivs in intervals.items()
                if holds_at(ivs, probe)
            ]
            assert len(holding) == 1
