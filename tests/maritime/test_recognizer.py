"""Tests for the assembled MaritimeRecognizer facade."""

import pytest

from repro.geo.polygon import GeoPolygon
from repro.maritime import MaritimeConfig, MaritimeRecognizer
from repro.simulator.vessel import VesselSpec, VesselType
from repro.simulator.world import Area, AreaKind, BoundingBox, Port, WorldModel
from repro.tracking.types import MovementEvent, MovementEventType

CENTER = (24.0, 38.0)


def tiny_world():
    return WorldModel(
        BoundingBox(22.0, 36.0, 26.0, 40.0),
        ports=[Port("p", 23.0, 39.0, GeoPolygon.rectangle("p", 23.0, 39.0, 2000, 2000))],
        areas=[
            Area(
                "park",
                AreaKind.PROTECTED,
                GeoPolygon.rectangle("park", *CENTER, 4000, 4000),
            )
        ],
    )


SPECS = {7: VesselSpec(7, VesselType.TANKER, 10.0, False)}


@pytest.fixture()
def recognizer():
    return MaritimeRecognizer(tiny_world(), SPECS, window_seconds=10_000)


class TestFacade:
    def test_step_records_wall_clock(self, recognizer):
        recognizer.step(100)
        assert recognizer.last_step_seconds > 0.0

    def test_alerts_empty_before_any_step(self):
        fresh = MaritimeRecognizer(tiny_world(), SPECS, window_seconds=100)
        assert fresh.alerts() == []

    def test_alerts_default_to_last_result(self, recognizer):
        recognizer.ingest(
            [MovementEvent(MovementEventType.GAP_START, 7, *CENTER, 50)],
            arrival_time=100,
        )
        recognizer.step(100)
        alerts = recognizer.alerts()  # no explicit result passed
        assert [a.kind for a in alerts] == ["illegalShipping"]

    def test_alerts_sorted_by_time(self, recognizer):
        recognizer.ingest(
            [
                MovementEvent(MovementEventType.GAP_START, 7, *CENTER, 300),
                MovementEvent(MovementEventType.GAP_START, 7, *CENTER, 100),
            ],
            arrival_time=1000,
        )
        result = recognizer.step(1000)
        alerts = recognizer.alerts(result)
        assert [a.since for a in alerts] == [100, 300]

    def test_ongoing_flag(self, recognizer):
        from repro.maritime.recognizer import Alert

        assert Alert("suspicious", "park", 10).is_ongoing
        assert not Alert("suspicious", "park", 10, until=20).is_ongoing

    def test_ingest_returns_me_count(self, recognizer):
        count = recognizer.ingest(
            [
                MovementEvent(MovementEventType.TURN, 7, *CENTER, 10),
                MovementEvent(MovementEventType.PAUSE, 7, *CENTER, 20),
            ],
            arrival_time=100,
        )
        assert count == 1  # pauses are not critical MEs

    def test_spatial_facts_count_includes_facts(self):
        recognizer = MaritimeRecognizer(
            tiny_world(), SPECS, window_seconds=1000, spatial_facts=True
        )
        count = recognizer.ingest(
            [MovementEvent(MovementEventType.TURN, 7, *CENTER, 10)],
            arrival_time=100,
        )
        # One ME plus at least the watch + protected facts for the area.
        assert count >= 3

    def test_custom_watch_areas_restrict_suspicious(self):
        world = tiny_world()
        recognizer = MaritimeRecognizer(
            world,
            {i: VesselSpec(i, VesselType.CARGO, 8.0, False) for i in range(1, 6)},
            window_seconds=10_000,
            config=MaritimeConfig(),
            watch_areas=[],  # officials watch nothing
        )
        events = [
            MovementEvent(MovementEventType.STOP_START, i, *CENTER, 100 + i)
            for i in range(1, 6)
        ]
        recognizer.ingest(events, arrival_time=1000)
        result = recognizer.step(1000)
        assert result.fluents.get("suspicious", {}) == {}
