"""Tests for spatial partitioning of CE recognition."""

import pytest

from repro.maritime.partition import (
    PartitionStepTiming,
    PartitionedRecognizer,
    partition_world,
)
from repro.simulator.world import AreaKind, build_aegean_world
from repro.simulator.vessel import VesselSpec, VesselType
from repro.tracking.types import MovementEvent, MovementEventType


class TestPartitionWorld:
    def test_single_partition_is_identity(self, world):
        assert partition_world(world, 1) == [world]

    def test_two_partitions_split_areas(self, world):
        west, east = partition_world(world, 2)
        assert len(west.areas) + len(east.areas) == len(world.areas)
        mid = (world.bbox.min_lon + world.bbox.max_lon) / 2
        assert all(a.polygon.centroid[0] < mid for a in west.areas)
        assert all(a.polygon.centroid[0] >= mid for a in east.areas)

    def test_ports_shared(self, world):
        west, east = partition_world(world, 2)
        assert west.ports == world.ports
        assert east.ports == world.ports

    def test_four_partitions(self, world):
        bands = partition_world(world, 4)
        assert len(bands) == 4
        assert sum(len(b.areas) for b in bands) == len(world.areas)

    def test_invalid_count(self, world):
        with pytest.raises(ValueError, match="partitions"):
            partition_world(world, 0)


class TestPartitionedRecognizer:
    def make(self, world, partitions=2):
        specs = {1: VesselSpec(1, VesselType.TANKER, 10.0, False)}
        return PartitionedRecognizer(world, specs, 10_000, partitions=partitions)

    def test_events_routed_by_longitude(self):
        world = build_aegean_world()
        recognizer = self.make(world)
        west_event = MovementEvent(
            MovementEventType.TURN, 1, world.bbox.min_lon + 0.1, 38.0, 100
        )
        east_event = MovementEvent(
            MovementEventType.TURN, 1, world.bbox.max_lon - 0.1, 38.0, 200
        )
        recognizer.ingest([west_event, east_event], arrival_time=500)
        west_memory = recognizer.recognizers[0].engine.working_memory
        east_memory = recognizer.recognizers[1].engine.working_memory
        assert len(west_memory.events_in_window("turn", 0, 1000)) == 1
        assert len(east_memory.events_in_window("turn", 0, 1000)) == 1

    def test_recognition_equivalent_to_single_engine(self):
        # A gap inside a protected area is recognized regardless of the
        # partition count.
        world = build_aegean_world()
        protected = world.areas_of_kind(AreaKind.PROTECTED)[0]
        center = protected.polygon.centroid
        gap = MovementEvent(MovementEventType.GAP_START, 1, center[0], center[1], 100)
        single = self.make(world, partitions=1)
        double = self.make(world, partitions=2)
        for recognizer in (single, double):
            recognizer.ingest([gap], arrival_time=500)
            recognizer.step(500)
        assert [a.kind for a in single.alerts()] == ["illegalShipping"]
        assert [a.kind for a in double.alerts()] == ["illegalShipping"]

    def test_step_reports_timings(self):
        world = build_aegean_world()
        recognizer = self.make(world)
        results, timing = recognizer.step(100)
        assert len(results) == 2
        assert len(timing.per_partition_seconds) == 2
        assert timing.parallel_seconds <= timing.sequential_seconds


class TestTimingArithmetic:
    def test_parallel_is_max(self):
        timing = PartitionStepTiming([0.2, 0.5, 0.1])
        assert timing.parallel_seconds == 0.5
        assert timing.sequential_seconds == pytest.approx(0.8)

    def test_empty(self):
        assert PartitionStepTiming([]).parallel_seconds == 0.0
