"""CE-definition tests over hand-built movement events.

Each scenario of Section 4.1 is exercised with a minimal synthetic world so
that the expected recognitions (and non-recognitions) are unambiguous.
"""

import pytest

from repro.geo.polygon import GeoPolygon
from repro.maritime import MaritimeConfig, MaritimeRecognizer
from repro.simulator.vessel import VesselSpec, VesselType
from repro.simulator.world import Area, AreaKind, BoundingBox, Port, WorldModel
from repro.tracking.types import MovementEvent, MovementEventType

PROTECTED_CENTER = (24.0, 38.0)
FORBIDDEN_CENTER = (25.0, 38.0)
SHALLOW_CENTER = (26.0, 38.0)
OPEN_SEA = (23.0, 36.5)


def make_world():
    areas = [
        Area(
            "park",
            AreaKind.PROTECTED,
            GeoPolygon.rectangle("park", *PROTECTED_CENTER, 4000, 4000),
        ),
        Area(
            "nofish",
            AreaKind.FORBIDDEN_FISHING,
            GeoPolygon.rectangle("nofish", *FORBIDDEN_CENTER, 4000, 4000),
        ),
        Area(
            "shoal",
            AreaKind.SHALLOW,
            GeoPolygon.rectangle("shoal", *SHALLOW_CENTER, 4000, 4000),
            depth_meters=6.0,
        ),
    ]
    port = Port("port", 23.0, 38.5, GeoPolygon.rectangle("p", 23.0, 38.5, 3000, 3000))
    return WorldModel(BoundingBox(22.0, 36.0, 27.0, 39.5), [port], areas)


SPECS = {
    1: VesselSpec(1, VesselType.CARGO, 8.0, False),
    2: VesselSpec(2, VesselType.CARGO, 8.0, False),
    3: VesselSpec(3, VesselType.CARGO, 8.0, False),
    4: VesselSpec(4, VesselType.CARGO, 8.0, False),
    5: VesselSpec(5, VesselType.CARGO, 8.0, False),
    10: VesselSpec(10, VesselType.FISHING, 3.0, True),
    11: VesselSpec(11, VesselType.TANKER, 10.0, False),  # deeper than shoal
    12: VesselSpec(12, VesselType.FISHING, 3.0, True),
}


def event(kind, mmsi, timestamp, where):
    return MovementEvent(kind, mmsi, where[0], where[1], timestamp)


@pytest.fixture(params=[False, True], ids=["spatial-reasoning", "spatial-facts"])
def recognizer(request):
    """Both operation modes must recognize the same CEs (Figure 11)."""
    return MaritimeRecognizer(
        make_world(),
        SPECS,
        window_seconds=10_000,
        config=MaritimeConfig(close_threshold_meters=3000.0),
        spatial_facts=request.param,
    )


class TestSuspicious:
    def test_four_stopped_vessels_make_area_suspicious(self, recognizer):
        events = []
        for index, mmsi in enumerate([1, 2, 3, 4]):
            events.append(
                event(MovementEventType.STOP_START, mmsi, 100 + index * 50,
                      PROTECTED_CENTER)
            )
        recognizer.ingest(events, arrival_time=1000)
        result = recognizer.step(1000)
        intervals = result.intervals("suspicious", ("park",))
        assert len(intervals) == 1
        # Initiated at the fourth vessel's stop start.
        assert intervals[0][0] == 250

    def test_three_vessels_are_not_enough(self, recognizer):
        events = [
            event(MovementEventType.STOP_START, mmsi, 100 + i * 50, PROTECTED_CENTER)
            for i, mmsi in enumerate([1, 2, 3])
        ]
        recognizer.ingest(events, arrival_time=1000)
        result = recognizer.step(1000)
        assert result.intervals("suspicious", ("park",)) == []

    def test_terminated_when_vessels_leave(self, recognizer):
        events = [
            event(MovementEventType.STOP_START, mmsi, 100 + i * 50, PROTECTED_CENTER)
            for i, mmsi in enumerate([1, 2, 3, 4])
        ]
        # Two vessels depart: 3 remain at t=500 -> suspicious ends there.
        events.append(event(MovementEventType.STOP_END, 1, 500, PROTECTED_CENTER))
        recognizer.ingest(events, arrival_time=1000)
        result = recognizer.step(1000)
        assert result.intervals("suspicious", ("park",)) == [(250, 500)]

    def test_stops_far_from_any_area_ignored(self, recognizer):
        events = [
            event(MovementEventType.STOP_START, mmsi, 100 + i * 50, OPEN_SEA)
            for i, mmsi in enumerate([1, 2, 3, 4, 5])
        ]
        recognizer.ingest(events, arrival_time=1000)
        result = recognizer.step(1000)
        assert result.fluents.get("suspicious", {}) == {}


class TestIllegalFishing:
    def test_fishing_vessel_slow_motion_in_forbidden_area(self, recognizer):
        recognizer.ingest(
            [event(MovementEventType.SLOW_MOTION, 10, 200, FORBIDDEN_CENTER)],
            arrival_time=1000,
        )
        result = recognizer.step(1000)
        intervals = result.intervals("illegalFishing", ("nofish",))
        assert len(intervals) == 1
        assert intervals[0][0] == 200

    def test_fishing_vessel_stopping_in_forbidden_area(self, recognizer):
        recognizer.ingest(
            [event(MovementEventType.STOP_START, 10, 200, FORBIDDEN_CENTER)],
            arrival_time=1000,
        )
        result = recognizer.step(1000)
        assert len(result.intervals("illegalFishing", ("nofish",))) == 1

    def test_non_fishing_vessel_does_not_trigger(self, recognizer):
        recognizer.ingest(
            [event(MovementEventType.SLOW_MOTION, 1, 200, FORBIDDEN_CENTER)],
            arrival_time=1000,
        )
        result = recognizer.step(1000)
        assert result.intervals("illegalFishing", ("nofish",)) == []

    def test_fishing_outside_forbidden_area_allowed(self, recognizer):
        recognizer.ingest(
            [event(MovementEventType.SLOW_MOTION, 10, 200, OPEN_SEA)],
            arrival_time=1000,
        )
        result = recognizer.step(1000)
        assert result.fluents.get("illegalFishing", {}) == {}

    def test_terminated_when_last_fisher_leaves(self, recognizer):
        events = [
            event(MovementEventType.STOP_START, 10, 200, FORBIDDEN_CENTER),
            event(MovementEventType.STOP_END, 10, 600, FORBIDDEN_CENTER),
        ]
        recognizer.ingest(events, arrival_time=1000)
        result = recognizer.step(1000)
        assert result.intervals("illegalFishing", ("nofish",)) == [(200, 600)]

    def test_speedup_terminates_when_no_fisher_stopped(self, recognizer):
        events = [
            event(MovementEventType.SLOW_MOTION, 10, 200, FORBIDDEN_CENTER),
            event(MovementEventType.SPEED_CHANGE, 10, 500, FORBIDDEN_CENTER),
        ]
        recognizer.ingest(events, arrival_time=1000)
        result = recognizer.step(1000)
        assert result.intervals("illegalFishing", ("nofish",)) == [(200, 500)]


class TestIllegalShipping:
    def test_gap_near_protected_area(self, recognizer):
        recognizer.ingest(
            [event(MovementEventType.GAP_START, 11, 300, PROTECTED_CENTER)],
            arrival_time=1000,
        )
        result = recognizer.step(1000)
        assert result.occurrences("illegalShipping") == [(("park", 11), 300)]

    def test_gap_in_open_sea_ignored(self, recognizer):
        recognizer.ingest(
            [event(MovementEventType.GAP_START, 11, 300, OPEN_SEA)],
            arrival_time=1000,
        )
        result = recognizer.step(1000)
        assert result.occurrences("illegalShipping") == []

    def test_gap_near_forbidden_fishing_area_is_not_illegal_shipping(
        self, recognizer
    ):
        # Rule (5) is restricted to protected areas.
        recognizer.ingest(
            [event(MovementEventType.GAP_START, 11, 300, FORBIDDEN_CENTER)],
            arrival_time=1000,
        )
        result = recognizer.step(1000)
        assert result.occurrences("illegalShipping") == []


class TestDangerousShipping:
    def test_deep_draft_slow_in_shallow_water(self, recognizer):
        recognizer.ingest(
            [event(MovementEventType.SLOW_MOTION, 11, 400, SHALLOW_CENTER)],
            arrival_time=1000,
        )
        result = recognizer.step(1000)
        assert result.occurrences("dangerousShipping") == [(("shoal", 11), 400)]

    def test_shallow_draft_vessel_is_safe(self, recognizer):
        # Vessel 12 draws 3 m over a 6 m shoal: not dangerous.
        recognizer.ingest(
            [event(MovementEventType.SLOW_MOTION, 12, 400, SHALLOW_CENTER)],
            arrival_time=1000,
        )
        result = recognizer.step(1000)
        assert result.occurrences("dangerousShipping") == []

    def test_slow_motion_outside_shallow_area_safe(self, recognizer):
        recognizer.ingest(
            [event(MovementEventType.SLOW_MOTION, 11, 400, OPEN_SEA)],
            arrival_time=1000,
        )
        result = recognizer.step(1000)
        assert result.occurrences("dangerousShipping") == []


class TestAlerts:
    def test_alert_records(self, recognizer):
        recognizer.ingest(
            [
                event(MovementEventType.GAP_START, 11, 300, PROTECTED_CENTER),
                event(MovementEventType.SLOW_MOTION, 10, 200, FORBIDDEN_CENTER),
            ],
            arrival_time=1000,
        )
        result = recognizer.step(1000)
        alerts = recognizer.alerts(result)
        kinds = {alert.kind for alert in alerts}
        assert kinds == {"illegalShipping", "illegalFishing"}
        shipping = next(a for a in alerts if a.kind == "illegalShipping")
        assert shipping.mmsi == 11
        assert shipping.area == "park"
        fishing = next(a for a in alerts if a.kind == "illegalFishing")
        assert fishing.is_ongoing
