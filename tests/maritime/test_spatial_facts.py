"""Tests for the spatial-facts augmentation (Figure 11(b))."""

from repro.maritime.config import MaritimeConfig
from repro.maritime.spatial_facts import (
    FACT_FORBIDDEN,
    FACT_PROTECTED,
    FACT_SHALLOW,
    FACT_WATCH,
    assert_spatial_facts,
    spatial_facts_for,
)
from repro.rtec.working_memory import WorkingMemory
from repro.simulator.world import AreaKind
from repro.tracking.types import MovementEvent, MovementEventType


def make_event(world, kind=MovementEventType.TURN, area_index=0, timestamp=100):
    area = world.areas[area_index]
    lon, lat = area.polygon.centroid
    return MovementEvent(kind, 1, lon, lat, timestamp)


class TestSpatialFactsFor:
    def test_fact_per_category_and_area(self, world):
        protected = world.areas_of_kind(AreaKind.PROTECTED)[0]
        index = world.areas.index(protected)
        event = make_event(world, area_index=index)
        facts = spatial_facts_for(event, world, 3000.0)
        functors = {functor for functor, _, _ in facts}
        # The point is inside a protected area: watch + protected facts.
        assert FACT_WATCH in functors
        assert FACT_PROTECTED in functors
        assert FACT_FORBIDDEN not in functors
        assert FACT_SHALLOW not in functors

    def test_fact_carries_vessel_area_and_timestamp(self, world):
        event = make_event(world, timestamp=123)
        facts = spatial_facts_for(event, world, 3000.0)
        for _functor, args, timestamp in facts:
            assert args[0] == 1
            assert isinstance(args[1], str)
            assert timestamp == 123

    def test_open_sea_event_produces_no_facts(self, world):
        event = MovementEvent(MovementEventType.TURN, 1, 23.05, 36.1, 100)
        assert spatial_facts_for(event, world, 1000.0) == []


class TestAssertSpatialFacts:
    def test_facts_asserted_into_memory(self, world):
        memory = WorkingMemory()
        event = make_event(world)
        count = assert_spatial_facts(memory, [event], world, 3000.0)
        assert count >= 2  # watch + the area's own category
        assert len(memory.events_in_window(FACT_WATCH, 0, 1000)) >= 1

    def test_non_critical_events_skipped(self, world):
        memory = WorkingMemory()
        event = make_event(world, kind=MovementEventType.PAUSE)
        count = assert_spatial_facts(memory, [event], world, 3000.0)
        assert count == 0

    def test_fact_count_grows_stream_size(self, world):
        # The Figure 11(b) setting: the input stream grows by roughly one
        # spatial fact per ME near an area.
        memory = WorkingMemory()
        events = [make_event(world, area_index=i) for i in range(10)]
        count = assert_spatial_facts(memory, events, world, 3000.0)
        assert count >= 10


class TestConfigDefaults:
    def test_maritime_config_defaults(self):
        config = MaritimeConfig()
        assert config.close_threshold_meters == 3000.0
        assert config.suspicious_other_vessels == 3
