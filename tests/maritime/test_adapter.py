"""Tests for the ME -> RTEC adapter."""

from repro.maritime.adapter import EVENT_FUNCTORS, MovementEventAdapter
from repro.rtec.working_memory import WorkingMemory
from repro.tracking.types import CriticalPoint, MovementEvent, MovementEventType


def make_event(kind, mmsi=1, timestamp=100, lon=24.0, lat=38.0):
    return MovementEvent(kind, mmsi, lon, lat, timestamp)


class TestIngestEvents:
    def test_critical_me_asserted_with_coord(self):
        memory = WorkingMemory()
        adapter = MovementEventAdapter(memory)
        count = adapter.ingest_events([make_event(MovementEventType.GAP_START)])
        assert count == 1
        occurrences = memory.events_in_window("gap", 0, 1000)
        assert [(o.args, o.time) for o in occurrences] == [((1,), 100)]
        assert memory.value_at("coord", (1,), 100, 1000) == (24.0, 38.0)

    def test_pause_and_off_course_skipped(self):
        memory = WorkingMemory()
        adapter = MovementEventAdapter(memory)
        count = adapter.ingest_events(
            [
                make_event(MovementEventType.PAUSE),
                make_event(MovementEventType.OFF_COURSE),
            ]
        )
        assert count == 0
        assert memory.event_count() == 0

    def test_smooth_turn_maps_to_turn(self):
        memory = WorkingMemory()
        MovementEventAdapter(memory).ingest_events(
            [make_event(MovementEventType.SMOOTH_TURN)]
        )
        assert len(memory.events_in_window("turn", 0, 1000)) == 1

    def test_arrival_time_applied(self):
        memory = WorkingMemory()
        MovementEventAdapter(memory).ingest_events(
            [make_event(MovementEventType.TURN, timestamp=100)], arrival_time=500
        )
        # Invisible before arrival, visible after.
        assert memory.events_in_window("turn", 0, 400) == []
        assert len(memory.events_in_window("turn", 0, 500)) == 1

    def test_vocabulary_covers_critical_types(self):
        critical = {
            MovementEventType.GAP_START,
            MovementEventType.GAP_END,
            MovementEventType.SLOW_MOTION,
            MovementEventType.SPEED_CHANGE,
            MovementEventType.TURN,
            MovementEventType.SMOOTH_TURN,
            MovementEventType.STOP_START,
            MovementEventType.STOP_END,
        }
        assert set(EVENT_FUNCTORS) == critical

    def test_ingested_counter(self):
        adapter = MovementEventAdapter(WorkingMemory())
        adapter.ingest_events([make_event(MovementEventType.TURN)])
        adapter.ingest_events([make_event(MovementEventType.GAP_START)])
        assert adapter.events_ingested == 2


class TestIngestCriticalPoints:
    def test_annotations_expand_to_events(self):
        memory = WorkingMemory()
        adapter = MovementEventAdapter(memory)
        point = CriticalPoint(
            mmsi=1,
            lon=24.0,
            lat=38.0,
            timestamp=100,
            annotations=frozenset(
                {MovementEventType.TURN, MovementEventType.SPEED_CHANGE}
            ),
        )
        count = adapter.ingest_critical_points([point])
        assert count == 2
        assert len(memory.events_in_window("turn", 0, 1000)) == 1
        assert len(memory.events_in_window("speedChange", 0, 1000)) == 1
        # Coord asserted once per point, not per annotation.
        assert memory.value_at("coord", (1,), 100, 1000) == (24.0, 38.0)
